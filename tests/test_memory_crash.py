"""Unit tests for crash-state enumeration."""

from repro.memory import (
    AddressSpace,
    CacheModel,
    CrashExplorer,
    PersistentImage,
    line_of,
)


def build(n_pending_lines: int):
    space = AddressSpace()
    image = PersistentImage(space)
    cache = CacheModel(space, image)
    base = space.alloc_pm(64 * max(1, n_pending_lines), align=64)
    for i in range(n_pending_lines):
        addr = base + 64 * i
        space.write_int(addr, 8, i + 1)
        cache.on_store(addr, 8, seq=i + 1)
    return space, image, cache, base


def test_exhaustive_state_count():
    _, image, cache, _ = build(3)
    explorer = CrashExplorer(cache, image)
    states = list(explorer.states())
    assert len(states) == 2 ** 3

    # first state is the adversarial all-lost one
    assert states[0].surviving_lines == ()


def test_states_read_values():
    space, image, cache, base = build(2)
    explorer = CrashExplorer(cache, image)
    full = [s for s in explorer.states() if len(s.surviving_lines) == 2][0]
    assert full.read_int(base, 8) == 1
    assert full.read_int(base + 64, 8) == 2
    empty = [s for s in explorer.states() if not s.surviving_lines][0]
    assert empty.read_int(base, 8) == 0


def test_find_violation_detects_inconsistency():
    space, image, cache, base = build(2)
    explorer = CrashExplorer(cache, image)
    # Consistency predicate: both fields persist together or not at all.
    def consistent(state):
        a, b = state.read_int(base, 8), state.read_int(base + 64, 8)
        return (a == 0) == (b == 0)

    violation = explorer.find_violation(consistent)
    assert violation is not None
    assert len(violation.surviving_lines) == 1


def test_all_consistent_after_writeback():
    space, image, cache, base = build(2)
    cache.on_flush(base, "clwb")
    cache.on_flush(base + 64, "clwb")
    cache.on_fence("sfence")
    explorer = CrashExplorer(cache, image)
    assert explorer.pending_lines() == []
    assert explorer.all_consistent(
        lambda s: s.read_int(base, 8) == 1 and s.read_int(base + 64, 8) == 2
    )


def test_sampling_for_large_pending_sets():
    _, image, cache, _ = build(CrashExplorer.EXHAUSTIVE_LIMIT + 4)
    explorer = CrashExplorer(cache, image, seed=1)
    states = list(explorer.states(max_states=32))
    assert len(states) == 32
    # extremes always included
    assert states[0].surviving_lines == ()
    assert len(states[1].surviving_lines) == CrashExplorer.EXHAUSTIVE_LIMIT + 4


def test_max_states_caps_exhaustive():
    _, image, cache, _ = build(4)
    explorer = CrashExplorer(cache, image)
    assert len(list(explorer.states(max_states=5))) == 5
