"""Synthesizing a post-fix trace from the baseline trace.

Flush and fence insertions are *observationally linear*: they change no
register value, no branch decision, no load result, and no store — so
the fixed module's execution visits exactly the baseline's instruction
sequence, plus the inserted instructions immediately after each dynamic
execution of their anchor.  The post-fix trace is therefore a pure
function of the baseline trace:

1. after every PM store event of a store anchor, splice the fix's
   flush events (and fence, for flush&fence fixes);
2. after every PM flush event of a flush anchor, splice the fence;
3. anchors can also execute against *volatile* targets (a shared helper
   like ``memcpy``): those executions record no store/flush event, but
   an inserted **fence still executes and records**.  The recording
   run's volatile-op side channel (:class:`VolAnchorOp` entries noted
   by the recording trace recorder) pins where those fences land;
4. renumber sequence ids densely (every recorded event consumes one
   ``seq``, exactly as a live recorder would);
5. recompute every flush event's ``had_work`` bit by replaying the
   cache-line durability state machine over the synthesized stream —
   an inserted flush can turn a later baseline flush redundant, and the
   redundant-flush *performance* reports key on that bit.

Field fidelity: events that exist in the baseline keep their recorded
stacks; synthesized flush/fence events derive theirs from the anchor
event (same caller frames, innermost frame swapped for the inserted
instruction).  Fences synthesized for *volatile* anchor executions have
no anchor event to borrow a stack from and get a single-frame stack —
the detector never reads fence stacks, so detection results (and every
canonical record derived from them) are still byte-identical to a real
re-execution; only that one stack field is approximate.

The returned ``changed_from`` index is the synthesized-stream position
of the first inserted event: every event before it is the identical
baseline object, which lets the engine resume the checker from a
memoized fork instead of re-feeding the prefix.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..memory.layout import line_of, lines_covering
from ..trace.events import (
    FenceEvent,
    FlushEvent,
    StackFrame,
    StoreEvent,
    TraceEvent,
)
from ..trace.trace import PMTrace
from .witness import InsertionSpec, SynthFence, SynthFlush


class SynthesisResult:
    """A synthesized post-fix trace plus what it disturbed."""

    def __init__(
        self,
        trace: PMTrace,
        affected_lines: Set[int],
        changed_from: int,
        inserted_events: int,
    ):
        self.trace = trace
        #: cache lines (chains) whose durability history the insertions
        #: touch: the lines inserted flushes cover, plus every line with
        #: pending (dirty or queued) state at each inserted fence.  Bug
        #: verdicts outside these chains cannot change.
        self.affected_lines = affected_lines
        #: first synthesized-stream index that differs from the
        #: baseline (== len(trace) when nothing was inserted)
        self.changed_from = changed_from
        self.inserted_events = inserted_events


def synthesize_fixed_trace(
    baseline: PMTrace,
    vol_ops: Iterable,  # Iterable[VolAnchorOp]
    specs: Iterable[InsertionSpec],
) -> SynthesisResult:
    """Build the trace the fixed module's re-execution would record."""
    store_plans: Dict[int, List[InsertionSpec]] = {}
    flush_plans: Dict[int, List[InsertionSpec]] = {}
    for spec in specs:
        plans = store_plans if spec.anchor_kind == "store" else flush_plans
        plans.setdefault(spec.anchor_iid, []).append(spec)

    events = baseline.events
    out: List[TraceEvent] = []
    affected: Set[int] = set()
    changed_from: Optional[int] = None
    inserted_events = 0
    #: line address -> [dirty, flushing] (mirrors CacheModel semantics;
    #: the checker only needs the booleans, never the store-seq sets)
    lines: Dict[int, List[bool]] = {}
    seq = 0

    def sim_flush(line_addr: int, kind: str) -> bool:
        """Apply one flush to the simulation; return its had_work bit."""
        state = lines.get(line_addr)
        if state is None:
            return False
        dirty, flushing = state
        if dirty:
            if kind == "clflush":
                state[0] = state[1] = False
            else:
                state[0] = False
                state[1] = True
        # A clean line is redundant (no work) unless already queued
        # (coalesced); either way the state does not change.
        return dirty or flushing

    def pending_lines() -> List[int]:
        return [addr for addr, st in lines.items() if st[0] or st[1]]

    def emit_base(event: TraceEvent) -> None:
        nonlocal seq
        seq += 1
        if isinstance(event, StoreEvent):
            if event.space == "pm":
                which = 1 if event.nontemporal else 0
                for line_addr in lines_covering(event.addr, event.size):
                    lines.setdefault(line_addr, [False, False])[which] = True
        elif isinstance(event, FlushEvent):
            had_work = sim_flush(event.line_addr, event.flush_kind)
            if event.seq != seq or event.had_work != had_work:
                event = replace(event, seq=seq, had_work=had_work)
            out.append(event)
            return
        elif isinstance(event, FenceEvent):
            for state in lines.values():
                state[1] = False
        if event.seq != seq:
            event = replace(event, seq=seq)
        out.append(event)

    def emit_synth(spec: InsertionSpec, anchor_event: Optional[TraceEvent]) -> None:
        """Splice one fix's inserted events after an anchor execution.

        ``anchor_event`` is None for a volatile-target execution: the
        inserted flushes then flush volatile lines (no event, no PM
        effect) and only the fences record.
        """
        nonlocal seq, changed_from, inserted_events
        for op in spec.ops:
            if isinstance(op, SynthFlush):
                if anchor_event is None:
                    continue
                if changed_from is None:
                    changed_from = len(out)
                addr = anchor_event.addr + op.offset
                line_addr = line_of(addr)
                affected.add(line_addr)
                had_work = sim_flush(line_addr, op.flush_kind)
                seq += 1
                inserted_events += 1
                out.append(
                    FlushEvent(
                        seq=seq,
                        iid=op.iid,
                        loc=op.loc,
                        function=anchor_event.function,
                        stack=anchor_event.stack[:-1]
                        + (StackFrame(anchor_event.function, op.iid, op.loc),),
                        addr=addr,
                        line_addr=line_addr,
                        flush_kind=op.flush_kind,
                        had_work=had_work,
                    )
                )
            else:
                assert isinstance(op, SynthFence)
                if changed_from is None:
                    changed_from = len(out)
                affected.update(pending_lines())
                for state in lines.values():
                    state[1] = False
                seq += 1
                inserted_events += 1
                if anchor_event is not None:
                    function = anchor_event.function
                    stack = anchor_event.stack[:-1] + (
                        StackFrame(function, op.iid, op.loc),
                    )
                else:
                    function = spec.function
                    stack = (StackFrame(function, op.iid, op.loc),)
                out.append(
                    FenceEvent(
                        seq=seq,
                        iid=op.iid,
                        loc=op.loc,
                        function=function,
                        stack=stack,
                        fence_kind=op.fence_kind,
                    )
                )

    def emit_vol_anchor(op) -> None:
        plans = store_plans if op.kind == "store" else flush_plans
        for spec in plans.get(op.iid, ()):
            emit_synth(spec, None)

    pending_vol = sorted(vol_ops, key=lambda op: op.pos)
    vol_index = 0
    for position, event in enumerate(events):
        while vol_index < len(pending_vol) and pending_vol[vol_index].pos <= position:
            emit_vol_anchor(pending_vol[vol_index])
            vol_index += 1
        emit_base(event)
        if isinstance(event, StoreEvent) and event.iid in store_plans:
            for spec in store_plans[event.iid]:
                emit_synth(spec, event if event.space == "pm" else None)
        elif isinstance(event, FlushEvent) and event.iid in flush_plans:
            for spec in flush_plans[event.iid]:
                emit_synth(spec, event)
    while vol_index < len(pending_vol):
        emit_vol_anchor(pending_vol[vol_index])
        vol_index += 1

    return SynthesisResult(
        trace=PMTrace(out),
        affected_lines=affected,
        changed_from=changed_from if changed_from is not None else len(out),
        inserted_events=inserted_events,
    )
