#!/usr/bin/env python3
"""Repairing a research prototype: P-CLHT from RECIPE (paper §6.1).

The paper found 2 previously-undocumented durability bugs in RECIPE's
persistent cache-line hash table.  This example reproduces that result:
it drives the seeded index under the detector, shows the two reports
(one missing-flush&fence, one missing-fence), repairs them, and proves
both that the detector comes back clean and that behavior is unchanged
("do no harm").

It also demonstrates the PMTest front-end: the same bugs surface
through developer-written persistence assertions.

Run:  python examples/pclht_repair.py
"""

from repro.apps import PCLHT, build_pclht
from repro.core import Hippocrates, do_no_harm
from repro.detect import check_trace, pmemcheck_run


def drive(interp):
    index = PCLHT(interp.module, interp)
    index.create(16)
    for key in range(1, 120):
        index.put(key, key * 1000)
    index.put(7, 7777)      # update path
    index.delete(13)        # delete path
    for key in (1, 7, 60, 119):
        interp.output.append(index.get(key))


def main():
    module = build_pclht()  # ships with the 2 study bugs seeded

    detection, trace, interp = pmemcheck_run(module, drive)
    print("=== detection on P-CLHT ===")
    print(detection.summary())
    assert detection.bug_count == 2

    fixer = Hippocrates(module, trace, interp.machine)
    plan = fixer.compute_fixes()
    print("\n=== fix plan ===")
    print(plan.describe())
    report = fixer.apply(plan)
    print(report.summary())

    after, _, _ = pmemcheck_run(module, drive)
    print("\n=== revalidation ===")
    print(after.summary())
    assert after.bug_count == 0

    # "Do no harm": identical observable behavior before and after.
    before_out, after_out = do_no_harm(build_pclht(), module, drive)
    print("\nobservable outputs match:", before_out == after_out)
    assert before_out == after_out == [1000, 7777, 60000, 119000]
    print("P-CLHT repair OK: 2/2 bugs fixed, behavior preserved")


if __name__ == "__main__":
    main()
