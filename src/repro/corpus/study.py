"""The durability-bug study dataset (paper §3, Fig. 1).

Records the 26 PMDK issues analyzed in the paper: issue numbers,
category (core library/tool vs API misuse), and fix effort (commits to
a passing build, days from open to close).  Fig. 1 publishes group
*aggregates*; per-issue values here are synthesized to match every
published aggregate exactly (group averages, maxima, and the overall
13-commit / 28-day / 66-day-max row), so the regenerated table equals
the paper's.

The 11 issues the paper could reproduce and fix (and which our corpus
reproduces as executable bug cases) are flagged ``reproduced``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

CORE_LIBRARY = "Core library/tool bug"
API_MISUSE = "API Misuse"

#: Issues the paper reproduced against pmemcheck and fixed (§6.1).
REPRODUCED_ISSUES = (447, 452, 458, 459, 460, 461, 585, 940, 942, 943, 945)


@dataclass(frozen=True)
class StudyRecord:
    """One row of the study: a PMDK issue and its fix effort."""

    issue: int
    category: str
    #: commits until a passing build (None when the issue tracker did
    #: not record enough history — Fig. 1's "-" rows)
    commits: Optional[int]
    #: days from open to close
    days: Optional[int]

    @property
    def reproduced(self) -> bool:
        return self.issue in REPRODUCED_ISSUES


def _core(issue: int, commits: Optional[int], days: Optional[int]) -> StudyRecord:
    return StudyRecord(issue, CORE_LIBRARY, commits, days)


def _misuse(issue: int, commits: Optional[int], days: Optional[int]) -> StudyRecord:
    return StudyRecord(issue, API_MISUSE, commits, days)


#: The 26 studied bugs.  The first core-library group (440/441/444) and
#: the first misuse group (940/942/943/945) have no recorded effort
#: stats, exactly as in Fig. 1.
STUDY: List[StudyRecord] = [
    _core(440, None, None),
    _core(441, None, None),
    _core(444, None, None),
    _core(442, 8, 12),
    _core(446, 10, 15),
    _core(447, 12, 18),
    _core(448, 13, 21),
    _core(449, 14, 24),
    _core(450, 15, 27),
    _core(452, 16, 30),
    _core(458, 17, 33),
    _core(459, 18, 36),
    _core(460, 20, 40),
    _core(461, 22, 44),
    _core(463, 24, 50),
    _core(465, 26, 66),
    _core(466, 23, 46),
    _misuse(940, None, None),
    _misuse(942, None, None),
    _misuse(943, None, None),
    _misuse(945, None, None),
    _misuse(535, 1, 5),
    _misuse(585, 2, 8),
    _misuse(949, 2, 11),
    _misuse(1103, 2, 13),
    _misuse(1118, 3, 38),
]


def records_with_stats(category: Optional[str] = None) -> List[StudyRecord]:
    return [
        r
        for r in STUDY
        if r.commits is not None and (category is None or r.category == category)
    ]


def group_stats(category: str) -> dict:
    """Average commits / average days / max days for one category."""
    rows = records_with_stats(category)
    return {
        "count": len(rows),
        "avg_commits": round(sum(r.commits for r in rows) / len(rows)),
        "avg_days": round(sum(r.days for r in rows) / len(rows)),
        "max_days": max(r.days for r in rows),
    }


def overall_stats() -> dict:
    """The Fig. 1 "Average" row (13 commits, 28 days, 66 max)."""
    rows = records_with_stats()
    return {
        "count": len(rows),
        "avg_commits": round(sum(r.commits for r in rows) / len(rows)),
        "avg_days": round(sum(r.days for r in rows) / len(rows)),
        "max_days": max(r.days for r in rows),
    }


def fig1_table() -> str:
    """Render Fig. 1 as text."""
    core = group_stats(CORE_LIBRARY)
    misuse = group_stats(API_MISUSE)
    overall = overall_stats()
    lines = [
        "Fig. 1 — The 26 PMDK bugs analyzed (commits / days to fix)",
        "-" * 68,
        f"{'Issues':38s} {'Commits':>8s} {'AvgDays':>8s} {'MaxDays':>8s}",
        f"{'440,441,444 (core, no stats)':38s} {'-':>8s} {'-':>8s} {'-':>8s}",
        f"{'442-466 core library/tool (14)':38s} "
        f"{core['avg_commits']:8d} {core['avg_days']:8d} {core['max_days']:8d}",
        f"{'940-945 API misuse (no stats)':38s} {'-':>8s} {'-':>8s} {'-':>8s}",
        f"{'535-1118 API misuse (5)':38s} "
        f"{misuse['avg_commits']:8d} {misuse['avg_days']:8d} {misuse['max_days']:8d}",
        f"{'Average':38s} "
        f"{overall['avg_commits']:8d} {overall['avg_days']:8d} {overall['max_days']:8d}",
    ]
    return "\n".join(lines)
