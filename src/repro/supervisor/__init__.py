"""Crash-safe batch repair: supervised workers + write-ahead journal.

The process-level resilience layer above :mod:`repro.core`: a
:class:`BatchSupervisor` runs repair tasks through watchdogged worker
subprocesses (with in-process serial fallback), records every state
transition in a CRC-guarded, fsync'd :class:`CheckpointJournal`, and
can resume after a hard kill to a byte-identical aggregate report.
"""

from .journal import (
    CheckpointJournal,
    JournalError,
    RecoveredJournal,
    decode_record,
    encode_record,
)
from .report import BatchReport, TaskOutcome
from .supervisor import (
    BatchSupervisor,
    SupervisorConfig,
    SupervisorError,
    SupervisorKilled,
    backoff_delay,
    run_batch,
)
from .tasks import (
    CaseOutcome,
    RepairTask,
    TaskError,
    TaskResult,
    corpus_tasks,
    execute_task,
    run_case,
)

__all__ = [
    "backoff_delay",
    "BatchReport",
    "BatchSupervisor",
    "CaseOutcome",
    "CheckpointJournal",
    "corpus_tasks",
    "decode_record",
    "encode_record",
    "execute_task",
    "JournalError",
    "RecoveredJournal",
    "RepairTask",
    "run_batch",
    "run_case",
    "SupervisorConfig",
    "SupervisorError",
    "SupervisorKilled",
    "TaskError",
    "TaskOutcome",
    "TaskResult",
]
