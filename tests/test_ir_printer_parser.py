"""Round-trip and error tests for the textual IR form."""

import pytest

from repro.errors import IRParseError
from repro.ir import (
    I8,
    I64,
    ModuleBuilder,
    PTR,
    format_module,
    parse_module,
    verify_module,
)


def sample_module():
    mb = ModuleBuilder("sample")
    mb.global_("table", 64, "pm")
    mb.global_("buf", 32, "vol", b"abc")
    b = mb.function("helper", [("p", PTR), ("n", I64)], I64, source_file="s.c")
    v = b.load(b.function.args[0], I64)
    total = b.add(v, b.function.args[1])
    b.store(total, b.function.args[0])
    b.flush(b.function.args[0], "clwb")
    b.fence("sfence")
    b.ret(total)
    b = mb.function("main", [], I64, source_file="s.c")
    p = b.call("pm_alloc", [64], PTR)
    b.store(5, p, I8)
    loop = b.new_block("loop")
    done = b.new_block("done")
    cond = b.icmp("ult", b.load(p, I8), 10)
    b.br(cond, loop, done)
    b.position_at_end(loop)
    result = b.call("helper", [p, 3], I64, name="r")
    sel = b.select(b.icmp("eq", result, 8), 1, 0)
    addr = b.cast("ptrtoint", p, I64)
    back = b.cast("inttoptr", addr, PTR)
    b.store(sel, back)
    b.jmp(done)
    b.position_at_end(done)
    b.ret(0)
    return mb.module


def test_roundtrip_reaches_fixpoint():
    module = sample_module()
    text1 = format_module(module)
    reparsed = parse_module(text1)
    verify_module(reparsed)
    text2 = format_module(reparsed)
    assert format_module(parse_module(text2)) == text2


def test_roundtrip_preserves_structure():
    module = sample_module()
    reparsed = parse_module(format_module(module))
    assert sorted(reparsed.functions) == sorted(module.functions)
    assert sorted(reparsed.globals) == sorted(module.globals)
    for name, fn in module.functions.items():
        clone = reparsed.get_function(name)
        assert clone.instruction_count() == fn.instruction_count()
        assert [a.type for a in clone.args] == [a.type for a in fn.args]


def test_roundtrip_preserves_debug_locs():
    module = sample_module()
    reparsed = parse_module(format_module(module))
    original_locs = [i.loc for i in module.get_function("helper").instructions()]
    reparsed_locs = [i.loc for i in reparsed.get_function("helper").instructions()]
    assert original_locs == reparsed_locs


def test_roundtrip_preserves_global_initializer():
    module = sample_module()
    reparsed = parse_module(format_module(module))
    assert reparsed.get_global("buf").initializer == b"abc"
    assert reparsed.get_global("table").space == "pm"


def test_parse_simple_function():
    module = parse_module(
        """
module "tiny"

func @id(%x: i64) -> i64 {
entry:
  ret i64 %x
}
"""
    )
    fn = module.get_function("id")
    assert fn.return_type is I64
    assert len(fn.blocks) == 1


def test_parse_forward_block_reference():
    module = parse_module(
        """
module "fwd"

func @f(%c: i1) -> i64 {
entry:
  br %c, %yes, %no
yes:
  ret i64 1
no:
  ret i64 0
}
"""
    )
    verify_module(module)


@pytest.mark.parametrize(
    "text",
    [
        "func @f() -> i64 {\nentry:\n  ret i64 %missing\n}",
        "func @f() -> i64 {\nentry:\n  %x = bogus 1\n  ret i64 %x\n}",
        "func @f() -> i64 {\nentry:\n  ret i64 0\n",  # missing }
        "wibble",
        "func @f() -> i64 {\n  ret i64 0\n}",  # instr outside block
    ],
)
def test_parse_errors(text):
    with pytest.raises(IRParseError):
        parse_module(text)


def test_parse_redefinition_rejected():
    with pytest.raises(IRParseError):
        parse_module(
            """
func @f() -> i64 {
entry:
  %x = add i64 1, 2
  %x = add i64 3, 4
  ret i64 %x
}
"""
        )


def test_declaration_roundtrip():
    module = parse_module('module "d"\n\nfunc @ext(%p: ptr) -> void\n')
    assert module.get_function("ext").is_declaration
