"""PMTest-style assertion checking.

PMTest (Liu et al., ASPLOS 2019) lets developers annotate their code
with persistence assertions; the runtime validates them against a trace
of PM operations.  Our IR programs make the same annotations by calling
the ``pmtest_assert_persisted(addr, size)`` intrinsic, which records a
tagged durability boundary; this module's checker validates each
assertion against the cache-line state machine.

The paper notes Hippocrates "currently supports pmemcheck and PMTest"
as front-ends; both our checkers emit the same
:class:`~repro.detect.reports.BugReport` structures, so Hippocrates is
oblivious to which tool found the bug.
"""

from __future__ import annotations

from typing import List, Tuple

from ..trace.trace import PMTrace
from .durability import (
    ChainIndex,
    _pmtest_policy,
    check_trace_pmtest,
    check_trace_with_dependencies,
)
from .reports import DetectionResult


def check_assertions(trace: PMTrace) -> DetectionResult:
    """Validate every ``pmtest_assert_persisted`` assertion in a trace."""
    return check_trace_pmtest(trace)


def check_assertions_with_dependencies(
    trace: PMTrace,
) -> Tuple[DetectionResult, ChainIndex]:
    """Assertion checking plus the chain dependency index (the PMTest
    front-end's feed into incremental revalidation)."""
    return check_trace_with_dependencies(trace, _pmtest_policy)


def assertion_labels(trace: PMTrace) -> List[str]:
    """The labels of all PMTest assertions present in a trace."""
    return [
        b.label for b in trace.boundaries() if b.label.startswith("pmtest:")
    ]
