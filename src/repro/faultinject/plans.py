"""Deterministic, seeded fault plans.

A :class:`FaultPlan` names one component of the pipeline and one way it
fails.  Plans are pure data — the :mod:`~repro.faultinject.injector`
interprets them — so a campaign's fault matrix is reproducible from the
plan list alone, and a failing combination can be replayed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError

#: components a plan may target
TARGETS = ("parser", "locator", "classifier", "transformer", "budget")

#: failure shapes
MODES = ("raise-at-nth", "corrupt-trace-line", "budget-exhaustion")


class InjectedFault(ReproError):
    """The exception raised by raise-at-Nth-call fault plans.

    A :class:`ReproError` subclass so it flows through the same
    quarantine/degrade paths a real subsystem failure would take.
    """


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault to inject into one pipeline component.

    :param target: which component fails (see :data:`TARGETS`).
    :param mode: how it fails (see :data:`MODES`).
    :param nth: for ``raise-at-nth``: the 1-based call index that
        raises; calls before it behave normally.
    :param seed: for ``corrupt-trace-line``: the RNG seed choosing
        which lines are corrupted and how.
    :param corrupt_lines: for ``corrupt-trace-line``: how many event
        lines to damage.
    :param budget_items: for ``budget-exhaustion``: the analysis work
        budget (0 exhausts immediately).
    """

    target: str
    mode: str = "raise-at-nth"
    nth: int = 1
    seed: int = 0
    corrupt_lines: int = 1
    budget_items: int = 0

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(f"unknown fault target {self.target!r}; use {TARGETS}")
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; use {MODES}")

    @property
    def name(self) -> str:
        if self.mode == "raise-at-nth":
            return f"{self.target}:raise@{self.nth}"
        if self.mode == "corrupt-trace-line":
            return f"parser:corrupt x{self.corrupt_lines} seed={self.seed}"
        return f"budget:items={self.budget_items}"

    def exception(self) -> InjectedFault:
        """The exception a raise-at-Nth plan injects."""
        return InjectedFault(
            f"injected fault: {self.target} failure at call {self.nth}"
        )
