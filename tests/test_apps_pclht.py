"""Unit tests for the P-CLHT persistent index."""

import pytest

from repro.apps import PCLHT, PCLHT_SEEDS, build_pclht
from repro.detect import BugKind, check_trace
from repro.ir import verify_module


def fresh(seeds=frozenset()):
    module = build_pclht(seeds=seeds)
    verify_module(module)
    index = PCLHT(module)
    index.create(16)
    return index


class TestFunctional:
    def test_put_get(self):
        index = fresh()
        index.put(10, 100)
        index.put(20, 200)
        assert index.get(10) == 100
        assert index.get(20) == 200

    def test_miss_returns_zero(self):
        assert fresh().get(999) == 0

    def test_update(self):
        index = fresh()
        assert index.put(5, 50) == 0  # insert
        assert index.put(5, 55) == 1  # update
        assert index.get(5) == 55

    def test_overflow_chains(self):
        """16 buckets x 3 slots = 48 in-table slots; 200 keys force
        overflow bucket allocation."""
        index = fresh()
        for key in range(1, 201):
            index.put(key, key * 7)
        for key in range(1, 201):
            assert index.get(key) == key * 7

    def test_delete_and_reinsert(self):
        index = fresh()
        index.put(3, 33)
        assert index.delete(3) == 1
        assert index.get(3) == 0
        assert index.delete(3) == 0
        index.put(3, 34)
        assert index.get(3) == 34

    def test_zero_value_distinct_from_missing(self):
        index = fresh()
        index.put(7, 0)
        # key present with value 0 is indistinguishable from a miss in
        # CLHT's own API (0 is the sentinel) — document that behavior.
        assert index.get(7) == 0


class TestSeededBugs:
    def test_clean_build_has_no_bugs(self):
        index = fresh()
        for key in range(1, 120):
            index.put(key, key)
        index.put(5, 55)
        index.delete(9)
        assert check_trace(index.finish()).bug_count == 0

    def test_default_seeds_give_two_bugs(self):
        index = fresh(seeds=PCLHT_SEEDS)
        for key in range(1, 120):  # enough to hit inserts and overflow
            index.put(key, key)
        result = check_trace(index.finish())
        assert result.bug_count == 2
        assert set(b.kind for b in result.bugs) == {
            BugKind.MISSING_FLUSH_FENCE,
            BugKind.MISSING_FENCE,
        }

    def test_single_seed_isolated(self):
        index = fresh(seeds=frozenset({"pclht-1"}))
        for key in range(1, 40):
            index.put(key, key)
        result = check_trace(index.finish())
        assert result.bug_count == 1
        assert result.bugs[0].kind is BugKind.MISSING_FLUSH_FENCE

    def test_unknown_seed_rejected(self):
        with pytest.raises(ValueError):
            build_pclht(seeds=frozenset({"bogus"}))
