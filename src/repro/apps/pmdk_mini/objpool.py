"""mini-libpmemobj: a persistent object pool, in IR.

Models the PMDK object-store layer that the paper's bug study targets:
a pool with a persistent header, a bump allocator over an arena, a redo
log, and OID helpers.  The layout (all offsets from the pool root):

======  ======  ==============================================
offset  size    field
======  ======  ==============================================
0       8       magic
8       8       heap_top (bump-allocation watermark)
16      8       log_head (append offset into the redo log)
24      8       root-object pointer
32      8       arena base pointer
40      8       redo-log base pointer
64      16      layout name (written with ``memcpy``; its own
                cache line, so allocator flushes never mask a
                missing layout persist)
======  ======  ==============================================

``seeds`` reintroduces the study's *core library* durability bugs: each
seed id corresponds to a PMDK issue and omits exactly the persistence
call whose absence caused it (see :mod:`repro.corpus.bugs` for the
catalog and the developer fixes).
"""

from __future__ import annotations

from typing import FrozenSet

from ...ir.builder import IRBuilder, ModuleBuilder
from ...ir.types import I64, PTR

OBJPOOL_FILE = "objpool.c"

ROOT_SIZE = 128
POOL_MAGIC = 0x504D4F424A31  # "PMOBJ1"
LOG_SIZE = 4096
ARENA_META = 256  # allocator metadata region at the arena base

OFF_MAGIC = 0
OFF_HEAP_TOP = 8
OFF_LOG_HEAD = 16
OFF_ROOT_OBJ = 24
OFF_ARENA = 32
OFF_LOG = 40
OFF_LAYOUT = 64

#: Seedable core-library bugs (PMDK issue ids from the study).
LIBRARY_SEEDS = frozenset({"447", "452", "458", "459", "460", "461"})


def _root(b: IRBuilder):
    return b.call("pm_root", [ROOT_SIZE], PTR)


def add_pool_create(mb: ModuleBuilder, seeds: FrozenSet[str]) -> None:
    """``pool_create(arena_size, layout_ptr, layout_len)``.

    Seeds: 461 (arena metadata memset not persisted), 447 (layout name
    memcpy not persisted — the header-update bug).
    """
    b = mb.function(
        "pool_create",
        [("arena_size", I64), ("layout", PTR), ("layout_len", I64)],
        source_file=OBJPOOL_FILE,
    )
    arena_size, layout, layout_len = b.function.args
    root = _root(b)

    b.store(POOL_MAGIC, b.gep(root, OFF_MAGIC))
    b.store(0, b.gep(root, OFF_HEAP_TOP))
    b.call("pmem_persist", [root, 16])

    arena = b.call("pm_alloc", [arena_size], PTR)
    log = b.call("pm_alloc", [LOG_SIZE], PTR)
    b.store(arena, b.gep(root, OFF_ARENA), PTR)
    b.store(log, b.gep(root, OFF_LOG), PTR)
    b.store(0, b.gep(root, OFF_LOG_HEAD))
    b.store(0, b.gep(root, OFF_ROOT_OBJ))
    b.call("pmem_persist", [b.gep(root, OFF_LOG_HEAD), 32])

    b.call("memset", [arena, 0, ARENA_META])
    if "461" not in seeds:
        b.call("pmem_persist", [arena, ARENA_META])

    b.call("memcpy", [b.gep(root, OFF_LAYOUT), layout, layout_len])
    if "447" not in seeds:
        b.call("pmem_persist", [b.gep(root, OFF_LAYOUT), 16])
    b.ret()


def add_pmalloc(mb: ModuleBuilder, seeds: FrozenSet[str]) -> None:
    """Bump-allocate from the arena; returns the object pointer.

    Seed 452 omits the watermark flush (the drain that follows still
    fences, so the bug is a pure missing-flush — exactly the class the
    developers fixed with an interprocedural ``pmem_flush`` while
    Hippocrates inserts a single in-line ``clwb``).
    """
    b = mb.function(
        "pmalloc", [("size", I64)], return_type=PTR, source_file=OBJPOOL_FILE
    )
    (size,) = b.function.args
    root = _root(b)
    top_ptr = b.gep(root, OFF_HEAP_TOP)
    top = b.load(top_ptr)
    aligned = b.and_(b.add(top, 63), ~63 & ((1 << 64) - 1))
    new_top = b.add(aligned, size)
    b.store(new_top, top_ptr)
    if "452" not in seeds:
        b.call("pmem_flush", [top_ptr, 8])
    b.call("pmem_drain", [])
    arena = b.load(b.gep(root, OFF_ARENA), PTR)
    b.ret(b.gep(arena, aligned))


def add_obj_alloc_construct(mb: ModuleBuilder, seeds: FrozenSet[str]) -> None:
    """Allocate an object and copy its initial contents in.

    Seed 458 omits the persist of the constructed payload.
    """
    b = mb.function(
        "obj_alloc_construct",
        [("src", PTR), ("len", I64)],
        return_type=PTR,
        source_file=OBJPOOL_FILE,
    )
    src, length = b.function.args
    obj = b.call("pmalloc", [length], PTR)
    b.call("memcpy", [obj, src, length])
    if "458" not in seeds:
        b.call("pmem_persist", [obj, length])
    b.ret(obj)


def add_redo_log_append(mb: ModuleBuilder, seeds: FrozenSet[str]) -> None:
    """Append an entry to the redo log.

    Seed 459 omits the persist of the entry payload (the head bump that
    follows is persisted either way — which is what makes the bug
    dangerous: the head claims an entry whose bytes may not be durable).
    """
    b = mb.function(
        "redo_log_append",
        [("src", PTR), ("len", I64)],
        source_file=OBJPOOL_FILE,
    )
    src, length = b.function.args
    root = _root(b)
    log = b.load(b.gep(root, OFF_LOG), PTR)
    head_ptr = b.gep(root, OFF_LOG_HEAD)
    head = b.load(head_ptr)
    dst = b.gep(log, head)
    b.call("memcpy", [dst, src, length])
    if "459" not in seeds:
        b.call("pmem_persist", [dst, length])
    b.store(b.add(head, length), head_ptr)
    b.call("pmem_persist", [head_ptr, 8])
    b.ret()


def add_oid_helpers(mb: ModuleBuilder, seeds: FrozenSet[str]) -> None:
    """OID (object identifier) helpers.

    ``oid_write`` stores the two OID words; persistence is the caller's
    job (it is also used on volatile OID temporaries).
    ``set_oid_persist`` is the persistent wrapper; seed 460 omits its
    persist call.
    """
    b = mb.function(
        "oid_write",
        [("oid", PTR), ("base", I64), ("off", I64)],
        source_file=OBJPOOL_FILE,
    )
    oid, base, off = b.function.args
    b.store(base, b.gep(oid, 0))
    b.store(off, b.gep(oid, 8))
    b.ret()

    b = mb.function(
        "set_oid_persist",
        [("oid", PTR), ("base", I64), ("off", I64)],
        source_file=OBJPOOL_FILE,
    )
    oid, base, off = b.function.args
    b.call("oid_write", [oid, base, off])
    if "460" not in seeds:
        b.call("pmem_persist", [oid, 16])
    b.ret()


def add_field_helpers(mb: ModuleBuilder) -> None:
    """Small leaf setters used by PMDK's tools and unit tests.

    These only ever see PM pointers, so when a *test* forgets to flush
    after calling them, the heuristic correctly keeps the fix
    intraprocedural (Fig. 3's issues 940/943 class).
    """
    b = mb.function(
        "set_flag", [("obj", PTR), ("flags", I64)], source_file=OBJPOOL_FILE
    )
    obj, flags = b.function.args
    b.store(flags, b.gep(obj, 0))
    b.ret()

    b = mb.function(
        "checksum_update", [("obj", PTR), ("csum", I64)], source_file=OBJPOOL_FILE
    )
    obj, csum = b.function.args
    b.store(csum, b.gep(obj, 8))
    b.ret()


def add_objpool(mb: ModuleBuilder, seeds: FrozenSet[str] = frozenset()) -> None:
    """Add the whole object-pool layer (requires stdlib + libpmem)."""
    unknown = set(seeds) - LIBRARY_SEEDS - {"585", "940", "942", "943", "945"}
    if unknown:
        raise ValueError(f"unknown objpool bug seeds: {sorted(unknown)}")
    add_pool_create(mb, seeds)
    add_pmalloc(mb, seeds)
    add_obj_alloc_construct(mb, seeds)
    add_redo_log_append(mb, seeds)
    add_oid_helpers(mb, seeds)
    add_field_helpers(mb)
