"""Unit tests for fix generation (phase 1) and reduction (phase 2)."""

from repro.core import (
    InsertFenceAfterFlush,
    InsertFlush,
    InsertFlushAndFence,
    Locator,
    generate_intraprocedural_fixes,
    reduce_fixes,
)
from repro.detect import BugKind, pmemcheck_run
from repro.ir import I64, ModuleBuilder, PTR


def detect_and_fixes(build):
    mb = ModuleBuilder("t")
    build(mb)
    detection, trace, interp = pmemcheck_run(mb.module, lambda i: i.call("main"))
    locator = Locator(mb.module)
    return mb.module, detection, generate_intraprocedural_fixes(
        detection.bugs, locator
    )


class TestPhase1:
    def test_missing_flush_fence_fix(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.ret(0)

        _, detection, fixes = detect_and_fixes(build)
        assert detection.bugs[0].kind is BugKind.MISSING_FLUSH_FENCE
        assert len(fixes) == 1 and isinstance(fixes[0], InsertFlushAndFence)

    def test_missing_flush_fix(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.fence()
            b.ret(0)

        _, detection, fixes = detect_and_fixes(build)
        assert isinstance(fixes[0], InsertFlush)

    def test_missing_fence_fix(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.flush(p)
            b.ret(0)

        _, detection, fixes = detect_and_fixes(build)
        assert isinstance(fixes[0], InsertFenceAfterFlush)
        assert fixes[0].flush.opcode == "flush"


class TestPhase2Reduction:
    def test_duplicate_fixes_merge(self):
        def build(mb):
            b = mb.function("setter", [("p", PTR)], I64)
            b.store(9, b.function.args[0])
            b.ret(0)
            b = mb.function("main", [], I64)
            p1 = b.call("pm_alloc", [64], PTR)
            p2 = b.call("pm_alloc", [64], PTR)
            b.call("setter", [p1], I64)
            b.call("setter", [p2], I64)
            b.ret(0)

        _, detection, fixes = detect_and_fixes(build)
        assert len(fixes) == 2  # two bugs (two call paths)
        reduced = reduce_fixes(fixes)
        assert len(reduced) == 1  # one store, one flush covers both
        assert len(reduced[0].bugs) == 2

    def test_fence_coalescing_same_block(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [256], PTR)
            b.store(1, p)
            b.store(2, b.gep(p, 64))
            b.store(3, b.gep(p, 128))
            b.ret(0)

        _, detection, fixes = detect_and_fixes(build)
        assert len(fixes) == 3
        reduced = reduce_fixes(fixes)
        # three flushes, but only the last keeps its fence
        flush_and_fence = [f for f in reduced if isinstance(f, InsertFlushAndFence)]
        flush_only = [f for f in reduced if isinstance(f, InsertFlush)]
        assert len(flush_and_fence) == 1
        assert len(flush_only) == 2
        # the surviving fence anchors to the last store in block order
        block = flush_and_fence[0].store.parent
        last_index = block.index_of(flush_and_fence[0].store)
        for fix in flush_only:
            assert block.index_of(fix.store) < last_index

    def test_no_coalescing_across_boundaries(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [256], PTR)
            b.store(1, p)
            b.call("checkpoint", [])
            b.store(2, b.gep(p, 64))
            b.ret(0)

        _, detection, fixes = detect_and_fixes(build)
        reduced = reduce_fixes(fixes)
        # different boundaries: both keep their fences
        assert all(isinstance(f, InsertFlushAndFence) for f in reduced)

    def test_flush_subsumed_by_flush_fence(self):
        from repro.detect import BugKind, BugReport

        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(1, p)
            b.ret(0)

        module, detection, fixes = detect_and_fixes(build)
        # Manufacture an extra flush-only fix on the same store.
        extra = InsertFlush(bugs=list(detection.bugs), store=fixes[0].store)
        reduced = reduce_fixes(fixes + [extra])
        assert len(reduced) == 1
        assert isinstance(reduced[0], InsertFlushAndFence)
