"""Command-line front-end: the build-server workflow, file to file.

Mirrors how the original tool is driven (WLLVM bitcode in, pmemcheck
log in, fixed bitcode out), but over this package's textual formats::

    python -m repro run    app.ir --entry main --args 1 2
    python -m repro detect app.ir --entry main --trace-out app.trace
    python -m repro fix    app.ir --trace app.trace -o app.fixed.ir
    python -m repro batch  --corpus --journal batch.journal
    python -m repro batch  --resume --journal batch.journal
    python -m repro show   app.ir

``detect`` + ``fix`` compose exactly like the paper's Fig. 2: the trace
file produced by ``detect`` is the only coupling between the two steps,
so the fix step can run on a different build of the module (bug
localization falls back to function + source line).

``batch`` runs many repairs under the crash-safe supervisor
(:mod:`repro.supervisor`): corpus cases and/or module+trace pairs go
through watchdogged worker subprocesses, every state transition is
journaled write-ahead, and after a hard kill ``--resume`` replays
completed tasks from the journal and finishes the rest — the final
aggregate report is byte-identical to an uninterrupted run.

Every file this CLI writes (fixed modules, traces, journals, reports)
is written atomically — temp file in the destination directory, fsync,
``os.replace`` — so a crash mid-write never leaves a torn file.

Exit codes distinguish failure classes so build scripts can branch:

====  =======================================================
code  meaning
====  =======================================================
0     success
1     bugs found (``detect``) / some bugs or tasks quarantined
      (``fix``, ``batch``)
2     malformed module, I/O failure, or other error
3     malformed trace (:class:`TraceError`; strict mode)
4     a bug could not be located in the IR (:class:`LocateError`)
5     a fix could not be computed/applied (:class:`FixError`)
6     the fixed module failed validation (:class:`ValidationError`)
7     a resource budget ran out (:class:`BudgetExceeded`)
8     ``batch`` drained cleanly after SIGINT/SIGTERM (resumable)
====  =======================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import Hippocrates
from .detect import check_trace
from .errors import (
    BudgetExceeded,
    FixError,
    LocateError,
    ReproError,
    TraceError,
    ValidationError,
)
from .fsutil import atomic_write_text
from .interp import ENGINES, SimulatedCrash, make_interpreter
from .ir import format_module, parse_module, verify_module
from .trace import dump_trace

#: exception class -> process exit code, most specific first (a
#: LocateError is a FixError; a FixError is a ReproError).
EXIT_CODES = (
    (TraceError, 3),
    (LocateError, 4),
    (ValidationError, 6),
    (FixError, 5),
    (BudgetExceeded, 7),
    (ReproError, 2),
    (OSError, 2),
)

#: ``batch`` exit code after a clean SIGINT/SIGTERM drain
EXIT_INTERRUPTED = 8


def _load_module(path: str):
    with open(path) as handle:
        module = parse_module(handle.read())
    verify_module(module)
    return module


def _run_entry(module, entry: str, args: List[int], engine: Optional[str] = None):
    """Execute an entry point; returns the finished interpreter."""
    interp = make_interpreter(module, engine=engine)
    try:
        result = interp.call(entry, args)
        print(f"@{entry}({', '.join(map(str, args))}) -> {result.value}")
        print(f"steps={result.steps} cycles={result.cycles}")
        if interp.output:
            print("output:", " ".join(str(v) for v in interp.output))
    except SimulatedCrash:
        print("process crashed (crash_now)")
    interp.finish()
    return interp


def cmd_run(ns: argparse.Namespace) -> int:
    module = _load_module(ns.module)
    _run_entry(module, ns.entry, [int(a, 0) for a in ns.args], engine=ns.engine)
    return 0


def cmd_show(ns: argparse.Namespace) -> int:
    module = _load_module(ns.module)
    print(format_module(module), end="")
    return 0


def cmd_detect(ns: argparse.Namespace) -> int:
    module = _load_module(ns.module)
    interp = _run_entry(
        module, ns.entry, [int(a, 0) for a in ns.args], engine=ns.engine
    )
    trace = interp.machine.trace
    if ns.trace_out:
        atomic_write_text(ns.trace_out, dump_trace(trace))
        print(f"trace ({len(trace)} events) written to {ns.trace_out}")
    detection = check_trace(trace)
    print(detection.summary())
    return 1 if detection.bugs else 0


def cmd_fix(ns: argparse.Namespace) -> int:
    module = _load_module(ns.module)
    with open(ns.trace) as handle:
        trace_text = handle.read()
    fixer = Hippocrates(
        module,
        trace_text,
        heuristic=ns.heuristic,
        keep_going=ns.keep_going,
        lenient=ns.lenient,
        trace_source=ns.trace,
    )
    for warning in fixer.trace_warnings:
        print(f"warning: {warning}", file=sys.stderr)
    plan = fixer.compute_fixes()
    print(plan.describe())
    report = fixer.apply(plan)
    print(report.summary())
    for downgrade in report.downgrades:
        print(downgrade.describe(), file=sys.stderr)
    for quarantined in report.quarantined:
        print(quarantined.describe(), file=sys.stderr)
    output_path = ns.output or ns.module
    atomic_write_text(output_path, format_module(module))
    print(f"fixed module written to {output_path}")
    return 1 if report.quarantined else 0


def _format_op_histogram(obs) -> str:
    """Per-opcode execution histogram from the ``interp.ops.*`` counters
    (identical on both engines — the counts come from the cost layer)."""
    prefix = "interp.ops."
    counters = obs.metrics_snapshot().get("counters", {})
    ops = {
        name[len(prefix):]: count
        for name, count in counters.items()
        if name.startswith(prefix) and count
    }
    if not ops:
        return "op histogram: no executed instructions recorded"
    total = sum(ops.values())
    width = max(len(kind) for kind in ops)
    lines = [f"op histogram ({total} instructions):"]
    for kind, count in sorted(ops.items(), key=lambda item: -item[1]):
        share = 100.0 * count / total
        bar = "#" * max(1, round(share / 2))
        lines.append(f"  {kind:<{width}} {count:>12} {share:5.1f}% {bar}")
    return "\n".join(lines)


def cmd_batch(ns: argparse.Namespace) -> int:
    """Run (or resume) a batch of repairs under the supervisor."""
    from .supervisor import (
        RepairTask,
        SupervisorConfig,
        corpus_tasks,
        run_batch,
    )

    # Shared on-disk analysis cache: defaults to a directory next to the
    # journal so resumed runs warm-start from the killed run's entries.
    cache_dir: Optional[str] = None
    if not ns.no_analysis_cache:
        cache_dir = ns.analysis_cache or f"{ns.journal}.acache"

    tasks: List[RepairTask] = []
    if ns.corpus or ns.cases:
        tasks.extend(
            corpus_tasks(
                ns.cases or None,
                heuristic=ns.heuristic,
                analysis_cache_dir=cache_dir,
                incremental_revalidate=not ns.no_incremental_revalidate,
                engine=ns.engine,
                machine_pool=not ns.no_machine_pool,
            )
        )
    for spec in ns.task or []:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ReproError(
                f"bad --task {spec!r}; use MODULE:TRACE[:OUTPUT]"
            )
        module_path, trace_path = parts[0], parts[1]
        output_path = parts[2] if len(parts) == 3 else None
        tasks.append(
            RepairTask(
                task_id=module_path,
                kind="file",
                module_path=module_path,
                trace_path=trace_path,
                output_path=output_path,
                heuristic=ns.heuristic,
                lenient=ns.lenient,
                analysis_cache_dir=cache_dir,
                engine=ns.engine or "flat",
            )
        )
    if not tasks:
        raise ReproError("nothing to do: pass --corpus, --cases, or --task")

    config = SupervisorConfig(
        mode=ns.mode,
        jobs=ns.jobs,
        task_timeout=ns.task_timeout,
        max_retries=ns.retries,
        heuristic=ns.heuristic,
    )

    def progress(event: str, task_id: str, detail: str = "") -> None:
        suffix = f" ({detail})" if detail else ""
        print(f"[{event}] {task_id}{suffix}", file=sys.stderr)

    # Observability is strictly off the canonical path: with or without
    # these flags the batch report's bytes are identical.  --profile
    # enables metrics too: the per-opcode execution histogram rides on
    # the interpreters' `interp.ops.*` counters.
    from .obs import JsonlSink, NULL_OBS, Observability, format_hotspots, profile_call

    obs = NULL_OBS
    sink = None
    if ns.metrics_out or ns.spans_out or ns.profile:
        if ns.spans_out:
            sink = JsonlSink(ns.spans_out)
        obs = Observability(sink=sink)

    def run() -> "object":
        return run_batch(
            tasks,
            journal_path=ns.journal,
            resume=ns.resume,
            config=config,
            progress=progress,
            obs=obs,
        )

    try:
        if ns.profile:
            report, hotspots = profile_call(run, top_n=ns.profile)
            print(format_hotspots(hotspots), file=sys.stderr)
            print(_format_op_histogram(obs), file=sys.stderr)
        else:
            report = run()
        if ns.metrics_out:
            obs.write_metrics(ns.metrics_out)
            print(f"metrics written to {ns.metrics_out}", file=sys.stderr)
    finally:
        obs.close()
        if sink is not None and sink.dropped:
            print(
                f"warning: spans sink dropped {sink.dropped} record(s)",
                file=sys.stderr,
            )
    print(report.summary())
    for outcome in report.quarantined:
        print(
            f"[quarantined:task] {outcome.task_id} after "
            f"{outcome.attempts} attempt(s): {outcome.error}",
            file=sys.stderr,
        )
    if ns.report_out:
        atomic_write_text(ns.report_out, report.canonical_json())
        print(f"canonical report written to {ns.report_out}")
    if report.interrupted:
        print(
            f"interrupted; resume with: repro batch --resume "
            f"--journal {ns.journal}",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    return 1 if report.quarantined else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hippocrates (ASPLOS 2021 reproduction): detect and "
        "repair persistent-memory durability bugs in textual IR modules.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_flag(command) -> None:
        command.add_argument(
            "--engine",
            choices=ENGINES,
            default=None,
            help="execution engine: 'flat' (register-compiled, the "
            "default) or 'reference' (tree-walking oracle); observable "
            "behaviour is byte-identical",
        )

    run = sub.add_parser("run", help="execute an entry point")
    run.add_argument("module")
    run.add_argument("--entry", default="main")
    run.add_argument("--args", nargs="*", default=[])
    add_engine_flag(run)
    run.set_defaults(fn=cmd_run)

    show = sub.add_parser("show", help="print a module's textual IR")
    show.add_argument("module")
    show.set_defaults(fn=cmd_show)

    detect = sub.add_parser(
        "detect", help="run under the PM bug finder (exit 1 if bugs found)"
    )
    detect.add_argument("module")
    detect.add_argument("--entry", default="main")
    detect.add_argument("--args", nargs="*", default=[])
    detect.add_argument("--trace-out", help="write the pmemcheck-style log here")
    add_engine_flag(detect)
    detect.set_defaults(fn=cmd_detect)

    fix = sub.add_parser("fix", help="repair a module from a trace file")
    fix.add_argument("module")
    fix.add_argument("--trace", required=True, help="pmemcheck-style log file")
    fix.add_argument("-o", "--output", help="output path (default: in place)")
    fix.add_argument(
        "--heuristic",
        choices=("full", "off"),
        default="full",
        help="hoisting heuristic (Trace-AA needs the live machine and is "
        "unavailable file-to-file)",
    )
    fix.add_argument(
        "--lenient",
        action="store_true",
        help="skip malformed trace lines (warn on stderr) instead of "
        "failing with exit code 3",
    )
    fix.add_argument(
        "--keep-going",
        action="store_true",
        help="quarantine bugs whose fix fails (summary on stderr, exit "
        "code 1) instead of aborting on the first error",
    )
    fix.set_defaults(fn=cmd_fix)

    batch = sub.add_parser(
        "batch",
        help="run many repairs under the crash-safe supervisor "
        "(journaled; resumable after a hard kill)",
    )
    batch.add_argument(
        "--corpus",
        action="store_true",
        help="repair the whole 23-bug reproduction corpus",
    )
    batch.add_argument(
        "--cases",
        nargs="*",
        help="corpus case ids to repair (implies --corpus for those cases)",
    )
    batch.add_argument(
        "--task",
        action="append",
        metavar="MODULE:TRACE[:OUTPUT]",
        help="repair one module from one trace file (repeatable); the "
        "fixed module is written atomically to OUTPUT (default: in place)",
    )
    batch.add_argument(
        "--journal",
        default="batch.journal",
        help="write-ahead checkpoint journal path (default: %(default)s)",
    )
    batch.add_argument(
        "--resume",
        action="store_true",
        help="replay completed tasks from the journal and run the rest; "
        "the final report is byte-identical to an uninterrupted run",
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="concurrent worker subprocesses (default: %(default)s)",
    )
    batch.add_argument(
        "--mode",
        choices=("auto", "subprocess", "inprocess"),
        default="auto",
        help="worker execution mode; auto degrades to in-process serial "
        "execution when subprocesses are unavailable (default: %(default)s)",
    )
    batch.add_argument(
        "--task-timeout",
        type=float,
        default=60.0,
        help="per-task wall-time budget in seconds before the watchdog "
        "kills the worker (default: %(default)s)",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries (with backoff) before a task is quarantined "
        "(default: %(default)s)",
    )
    batch.add_argument(
        "--heuristic",
        choices=("full", "off"),
        default="full",
        help="hoisting heuristic for every task",
    )
    batch.add_argument(
        "--lenient",
        action="store_true",
        help="parse --task trace files leniently",
    )
    batch.add_argument(
        "--report-out",
        help="write the canonical aggregate report (JSON) here atomically",
    )
    batch.add_argument(
        "--analysis-cache",
        metavar="DIR",
        help="content-addressed on-disk analysis cache shared by all "
        "workers (default: <journal>.acache); entries are keyed by "
        "module fingerprint, so reuse never changes repair output",
    )
    batch.add_argument(
        "--no-analysis-cache",
        action="store_true",
        help="disable the shared analysis cache (every task re-solves "
        "its own whole-program analyses)",
    )
    batch.add_argument(
        "--no-incremental-revalidate",
        action="store_true",
        help="revalidate every corpus repair by re-running the full "
        "workload instead of the incremental engine; results are "
        "byte-identical either way (escape hatch / differential "
        "testing)",
    )
    batch.add_argument(
        "--no-machine-pool",
        action="store_true",
        help="allocate fresh machine buffers for every run instead of "
        "reusing a per-task pool; results are byte-identical either "
        "way (escape hatch / differential testing)",
    )
    batch.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the batch metrics snapshot (counters/gauges/"
        "histograms, JSON) here atomically; never affects the "
        "canonical report",
    )
    batch.add_argument(
        "--spans-out",
        metavar="FILE",
        help="append span/event records (JSONL, fsync'd) here as the "
        "batch runs; never affects the canonical report",
    )
    batch.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=25,
        default=None,
        metavar="N",
        help="run the batch under cProfile and print the top N "
        "functions by cumulative time plus a per-opcode execution "
        "histogram to stderr (default N: 25)",
    )
    add_engine_flag(batch)
    batch.set_defaults(fn=cmd_batch)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    ns = build_parser().parse_args(argv)
    try:
        return ns.fn(ns)
    except tuple(cls for cls, _ in EXIT_CODES) as exc:
        print(f"error: {exc}", file=sys.stderr)
        for cls, code in EXIT_CODES:
            if isinstance(exc, cls):
                return code
        return 2  # pragma: no cover - EXIT_CODES is exhaustive here


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
