"""Unit and crash-consistency tests for the Redis-like KV store."""

import pytest

from repro.apps import KVStore, build_kvstore
from repro.detect import check_trace
from repro.ir import verify_module
from repro.memory import CrashExplorer


@pytest.fixture(params=["manual", "noflush"])
def store(request):
    module = build_kvstore(request.param)
    verify_module(module)
    kv = KVStore(module)
    kv.init(64, 1 << 20)
    return kv


class TestFunctional:
    def test_put_get(self, store):
        store.put(b"alpha", b"1" * 24)
        store.put(b"beta", b"2" * 24)
        assert store.get(b"alpha") == b"1" * 24
        assert store.get(b"beta") == b"2" * 24

    def test_miss(self, store):
        assert store.get(b"nothing") is None

    def test_update_in_place(self, store):
        store.put(b"k", b"old-value-00")
        assert store.put(b"k", b"new-value-11").value == 1  # update path
        assert store.get(b"k") == b"new-value-11"

    def test_update_shorter_value(self, store):
        store.put(b"k", b"a" * 32)
        store.put(b"k", b"b" * 8)
        assert store.get(b"k") == b"b" * 8

    def test_oversized_update_guarded(self, store):
        from repro.errors import TrapError

        store.put(b"k", b"tiny")
        with pytest.raises(TrapError):
            store.put(b"k", b"much larger value than before!")

    def test_delete(self, store):
        store.put(b"gone", b"x" * 16)
        assert store.delete(b"gone")
        assert store.get(b"gone") is None
        assert not store.delete(b"gone")

    def test_count_tracks_inserts_and_deletes(self, store):
        for i in range(10):
            store.put(f"k{i}".encode(), b"v" * 8)
        assert store.count() == 10
        store.delete(b"k3")
        assert store.count() == 9

    def test_collision_chains(self, store):
        """More keys than buckets forces chaining."""
        keys = [f"key{i:05d}".encode() for i in range(200)]
        for i, key in enumerate(keys):
            store.put(key, f"val{i:05d}".encode() * 2)
        for i, key in enumerate(keys):
            assert store.get(key) == f"val{i:05d}".encode() * 2

    def test_scan_returns_bytes_copied(self, store):
        for i in range(20):
            store.put(f"k{i}".encode(), b"v" * 10)
        assert store.scan(0, 64) == 20 * 10


class TestDurability:
    def test_manual_is_pmemcheck_clean(self):
        module = build_kvstore("manual")
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        for i in range(20):
            kv.put(f"k{i}".encode(), b"v" * 32)
        kv.delete(b"k5")
        kv.get(b"k6")
        assert check_trace(kv.finish()).bug_count == 0

    def test_noflush_has_bugs(self):
        module = build_kvstore("noflush")
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        for i in range(20):
            kv.put(f"k{i}".encode(), b"v" * 32)
        kv.put(b"k3", b"u" * 32)
        kv.delete(b"k5")
        result = check_trace(kv.finish())
        assert result.bug_count >= 10

    def test_manual_crash_consistent_after_op(self):
        """After a completed put, *every* reachable crash state of the
        manual store contains the update."""
        module = build_kvstore("manual")
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        kv.put(b"crashkey", b"crashval" * 2)
        machine = kv.machine
        explorer = CrashExplorer(machine.cache, machine.image)
        durable = machine.image.durable_bytes
        # the value must appear somewhere in the durable image
        image = machine.image.snapshot_durable()
        assert b"crashval" in image

    def test_noflush_loses_data_on_adversarial_crash(self):
        module = build_kvstore("noflush")
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        kv.put(b"crashkey", b"crashval" * 2)
        image = kv.machine.image.snapshot_durable()
        assert b"crashval" not in image  # nothing reached the media

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            build_kvstore("yolo")
