"""The fault-injection campaign over the 23-bug corpus.

For every (corpus case, fault plan) pair the campaign builds a fresh
target, collects its pmemcheck trace, injects exactly one deterministic
fault, runs the repair pipeline end to end, and checks the resilience
invariants:

1. the pipeline **completes** (no exception escapes under
   ``keep_going``),
2. only the **targeted** bug(s) are quarantined; every bug still
   detectable after the fault is fixed (re-detection finds at most the
   quarantined bugs, plus — for parser faults — bugs whose trace
   records were destroyed),
3. the repaired module passes ``verify_module`` and **do_no_harm**
   against a freshly built original: the module is never half-mutated.

Every record is deterministic: re-running a campaign with the same plan
list reproduces the same outcomes line for line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..core.hippocrates import Hippocrates
from ..core.validate import do_no_harm
from ..corpus.bugs import BugCase, all_cases
from ..detect import pmemcheck_run
from ..ir.verifier import verify_module
from ..trace.pmemcheck import dump_trace
from .injector import corrupt_trace_text, install_faults
from .plans import FaultPlan

#: one (function, source location, bug kind) — stable across module
#: rebuilds, unlike instruction iids
BugKey = Tuple[str, str, object]


def _bug_keys(bugs) -> Set[BugKey]:
    return {(b.store.function, str(b.store.loc), b.kind) for b in bugs}


@dataclass
class RunRecord:
    """One (case, plan) execution and its invariant verdicts."""

    case_id: str
    plan: FaultPlan
    ok: bool = True
    #: invariant violations (empty when ok)
    problems: List[str] = field(default_factory=list)
    bugs_detected: int = 0
    bugs_remaining: int = 0
    quarantined: int = 0
    downgrades: int = 0
    trace_warnings: int = 0
    fault_fired: bool = False

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        fired = "fired" if self.fault_fired else "dormant"
        line = (
            f"[{status}] {self.case_id} × {self.plan.name} ({fired}): "
            f"{self.bugs_detected} detected, {self.bugs_remaining} remaining, "
            f"{self.quarantined} quarantined, {self.downgrades} downgrade(s), "
            f"{self.trace_warnings} trace warning(s)"
        )
        for problem in self.problems:
            line += f"\n    !! {problem}"
        return line


@dataclass
class CampaignResult:
    """All records of one campaign, with aggregate verdicts."""

    records: List[RunRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)

    @property
    def fired_count(self) -> int:
        return sum(1 for r in self.records if r.fault_fired)

    def failures(self) -> List[RunRecord]:
        return [r for r in self.records if not r.ok]

    def summary(self) -> str:
        verdict = "all invariants held" if self.ok else (
            f"{len(self.failures())} run(s) VIOLATED invariants"
        )
        return (
            f"fault-injection campaign: {len(self.records)} run(s), "
            f"{self.fired_count} fault(s) fired; {verdict}"
        )


def default_plans() -> List[FaultPlan]:
    """The standard fault matrix: every component, every failure shape.

    Nth-call indices > 1 land the fault mid-pipeline (after some bugs
    were already processed), exercising partial-progress isolation; on
    cases with fewer calls the fault stays dormant, which must be a
    clean no-op run.
    """
    return [
        FaultPlan("locator", nth=1),
        FaultPlan("locator", nth=2),
        FaultPlan("classifier", nth=1),
        FaultPlan("transformer", nth=1),
        FaultPlan("transformer", nth=2),
        FaultPlan("parser", mode="corrupt-trace-line", seed=7, corrupt_lines=1),
        FaultPlan("parser", mode="corrupt-trace-line", seed=13, corrupt_lines=3),
        FaultPlan("budget", mode="budget-exhaustion", budget_items=0),
    ]


def run_one(case: BugCase, plan: FaultPlan) -> RunRecord:
    """Execute one (case, plan) pair and check every invariant."""
    record = RunRecord(case_id=case.case_id, plan=plan)

    module = case.build()
    detection, trace, interp = pmemcheck_run(module, case.drive)
    record.bugs_detected = detection.bug_count

    try:
        if plan.target == "parser":
            text, damaged = corrupt_trace_text(
                dump_trace(trace), seed=plan.seed, lines=plan.corrupt_lines
            )
            fixer = Hippocrates(
                module, text, interp.machine, "full",
                keep_going=True, lenient=True,
            )
            if len(fixer.trace_warnings) != len(damaged):
                record.problems.append(
                    f"corrupted {len(damaged)} line(s) but lenient ingestion "
                    f"warned about {len(fixer.trace_warnings)}"
                )
        else:
            fixer = Hippocrates(
                module, trace, interp.machine, "full", detection,
                keep_going=True,
            )
            install_faults(fixer, plan)
        report = fixer.fix()
    except Exception as exc:  # invariant 1: the pipeline completes
        record.ok = False
        record.problems.append(
            f"pipeline died instead of isolating the fault: "
            f"{type(exc).__name__}: {exc}"
        )
        return record

    record.quarantined = len(report.quarantined)
    record.downgrades = len(report.downgrades)
    record.trace_warnings = len(report.trace_warnings)
    record.fault_fired = bool(
        report.quarantined or report.downgrades or report.trace_warnings
    )

    # invariant 3a: the repaired module is structurally sound
    try:
        verify_module(module)
    except Exception as exc:
        record.problems.append(f"verify_module failed on repaired module: {exc}")

    # invariant 2: every non-quarantined bug is fixed.  Re-detection may
    # find only bugs the pipeline knowingly gave up on: quarantined ones
    # and, for parser faults, bugs whose trace records were destroyed
    # (at most one per corrupted line).
    after, _, _ = pmemcheck_run(module, case.drive)
    record.bugs_remaining = after.bug_count
    remaining = _bug_keys(after.bugs)
    excused = _bug_keys(q.bug for q in report.quarantined if q.bug is not None)
    unexcused = remaining - excused
    if plan.target == "parser":
        if len(unexcused) > plan.corrupt_lines:
            record.problems.append(
                f"{len(unexcused)} bug(s) unfixed but only "
                f"{plan.corrupt_lines} trace line(s) were corrupted"
            )
    elif unexcused:
        record.problems.append(
            f"unfixed bug(s) that were never quarantined: {sorted(unexcused)}"
        )
    if not record.fault_fired and record.bugs_remaining:
        record.problems.append(
            "fault never fired yet the clean run left bugs unfixed"
        )

    # invariant 3b: do-no-harm against a freshly built original
    try:
        do_no_harm(case.build(), module, case.drive)
    except Exception as exc:
        record.problems.append(f"do_no_harm failed: {exc}")

    record.ok = not record.problems
    return record


def run_campaign(
    plans: Optional[List[FaultPlan]] = None,
    cases: Optional[List[BugCase]] = None,
    progress=None,
) -> CampaignResult:
    """Run the full fault matrix: every plan against every corpus case.

    :param plans: fault plans (default: :func:`default_plans`).
    :param cases: corpus cases (default: the whole 23-bug corpus).
    :param progress: optional callable receiving each finished
        :class:`RunRecord` (the CLI passes a printer).
    """
    result = CampaignResult()
    for case in cases if cases is not None else all_cases():
        for plan in plans if plans is not None else default_plans():
            record = run_one(case, plan)
            result.records.append(record)
            if progress is not None:
                progress(record)
    return result
