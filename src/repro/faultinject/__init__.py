"""Fault-injection harness for the repair pipeline.

Real-world PM diagnostic output is messy — crash-truncated logs,
debug-info drift, analyses that blow their budgets.  This package
proves the pipeline's resilience invariants *by construction*: it wraps
the locator, classifier, subprogram transformer, and trace parser with
deterministic, seeded fault plans (raise-at-Nth-call, corrupt-trace-
line, budget-exhaustion) and drives a campaign over the 23-bug corpus
asserting that

- the pipeline always completes,
- only the targeted bug(s) are quarantined and every other bug is
  fixed,
- the repaired module passes ``verify_module``, ``assert_fixed`` (for
  the non-quarantined bugs), and ``do_no_harm`` — i.e. the module is
  never left half-mutated.

Run the full campaign from the command line::

    PYTHONPATH=src python -m repro.faultinject
"""

from .campaign import CampaignResult, RunRecord, default_plans, run_campaign
from .injector import corrupt_trace_text, install_faults
from .plans import FaultPlan, InjectedFault

__all__ = [
    "CampaignResult",
    "corrupt_trace_text",
    "default_plans",
    "FaultPlan",
    "InjectedFault",
    "install_faults",
    "run_campaign",
    "RunRecord",
]
