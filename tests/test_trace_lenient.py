"""Lenient ingestion of malformed pmemcheck logs.

The static corpus in ``tests/data/malformed_traces/`` covers the three
real-world damage shapes: crash-truncated records, field-reordered
records, and interleaved garbage.  Strict mode must refuse each file
with the offending line number; lenient mode must skip exactly the
damaged lines and repair every bug whose records survived.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from conftest import build_listing5_module, drive_main
from repro.core import Hippocrates, assert_fixed
from repro.errors import TraceError
from repro.trace import TraceWarning, load_trace

DATA = Path(__file__).parent / "data" / "malformed_traces"

#: file -> (1-based damaged line numbers, surviving event count)
CORPUS = {
    "truncated.trace": ([4], 3),
    "reordered.trace": ([2, 4], 3),
    "garbage.trace": ([3, 5, 6], 3),
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_strict_mode_raises_with_line_number(name):
    text = (DATA / name).read_text()
    first_bad = CORPUS[name][0][0]
    with pytest.raises(TraceError) as info:
        load_trace(text)
    assert info.value.line == first_bad
    assert f"line {first_bad}:" in str(info.value)


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_lenient_mode_skips_exactly_the_damaged_lines(name):
    bad_lines, survivors = CORPUS[name]
    warnings = []
    trace = load_trace((DATA / name).read_text(), strict=False, warnings=warnings)
    assert len(trace) == survivors
    assert [w.line for w in warnings] == bad_lines
    for warning in warnings:
        assert isinstance(warning, TraceWarning)
        assert warning.message
        assert f"line {warning.line}:" in str(warning)


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_lenient_pipeline_repairs_surviving_bugs(name):
    # every corpus file keeps listing5's missing-flush records intact,
    # so the lenient pipeline must still produce a complete repair
    module = build_listing5_module()
    fixer = Hippocrates(module, (DATA / name).read_text(), lenient=True)
    report = fixer.fix()
    assert len(report.trace_warnings) == len(CORPUS[name][0])
    assert report.bugs_fixed >= 1
    assert "malformed trace line(s) skipped" in report.summary()
    assert_fixed(module, drive_main)


def test_strict_is_the_default_for_text_traces():
    module = build_listing5_module()
    with pytest.raises(TraceError):
        Hippocrates(module, (DATA / "truncated.trace").read_text())


def test_warning_text_is_truncated_for_display():
    warning = TraceWarning(line=3, message="bad", text="x" * 200)
    shown = str(warning)
    assert "..." in shown
    assert len(shown) < 200


# ---------------------------------------------------------------------------
# warning accumulation: the cap and the source stamp
# ---------------------------------------------------------------------------


def _many_bad_lines(count):
    good = "STORE;1;0x100000000;8;pm;main@app.c:1#1"
    bad = "\n".join(f"GARBAGE line {i}" for i in range(count))
    return f"{good}\n{bad}\n"


def test_warning_accumulation_is_capped_with_a_summary():
    warnings = []
    trace = load_trace(
        _many_bad_lines(20), strict=False, warnings=warnings, max_warnings=5
    )
    assert len(trace) == 1  # the good record survives
    assert len(warnings) == 6  # 5 individual + 1 summary
    summary = warnings[-1]
    assert summary.suppressed == 15
    assert summary.line == 0
    assert "15 more malformed record(s) suppressed" in str(summary)
    assert all(w.suppressed == 0 for w in warnings[:-1])


def test_warning_cap_unbounded_when_nonpositive():
    warnings = []
    load_trace(_many_bad_lines(60), strict=False, warnings=warnings,
               max_warnings=0)
    assert len(warnings) == 60
    assert all(w.suppressed == 0 for w in warnings)


def test_default_cap_bounds_pathological_logs():
    from repro.trace import MAX_TRACE_WARNINGS

    warnings = []
    load_trace(
        _many_bad_lines(MAX_TRACE_WARNINGS + 10), strict=False,
        warnings=warnings,
    )
    assert len(warnings) == MAX_TRACE_WARNINGS + 1
    assert warnings[-1].suppressed == 10


def test_warnings_carry_the_source_filename():
    warnings = []
    load_trace(
        _many_bad_lines(2), strict=False, warnings=warnings,
        source="app.trace",
    )
    assert all(w.source == "app.trace" for w in warnings)
    assert str(warnings[0]).startswith("app.trace: line 2:")


def test_hippocrates_stamps_trace_source_on_warnings():
    module = build_listing5_module()
    fixer = Hippocrates(
        module,
        (DATA / "truncated.trace").read_text(),
        lenient=True,
        trace_source="truncated.trace",
    )
    assert fixer.trace_warnings
    assert all(w.source == "truncated.trace" for w in fixer.trace_warnings)
