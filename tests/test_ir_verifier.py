"""Unit tests for the IR verifier."""

import pytest

from repro.errors import VerificationError
from repro.ir import (
    Alloca,
    BasicBlock,
    Call,
    Constant,
    I64,
    Jump,
    ModuleBuilder,
    PTR,
    Ret,
    Store,
    verify_function,
    verify_module,
)


def valid_module():
    mb = ModuleBuilder("ok")
    b = mb.function("callee", [("x", I64)], I64)
    b.ret(b.function.args[0])
    b = mb.function("caller", [], I64)
    v = b.call("callee", [7], I64)
    b.ret(v)
    return mb.module


def test_valid_module_passes():
    verify_module(valid_module())


def test_missing_terminator():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    b.add(1, 2)  # no ret
    with pytest.raises(VerificationError, match="terminator"):
        verify_module(mb.module)


def test_ret_type_mismatch():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    fn = b.function
    fn.entry.append(Ret())  # missing value in non-void function
    with pytest.raises(VerificationError, match="ret"):
        verify_function(fn)


def test_call_arity_mismatch():
    module = valid_module()
    caller = module.get_function("caller")
    bad = Call("callee", [Constant(1, I64), Constant(2, I64)], I64)
    caller.entry.insert_before(caller.entry.instructions[0], bad)
    with pytest.raises(VerificationError, match="arity"):
        verify_module(module)


def test_call_return_type_mismatch():
    module = valid_module()
    caller = module.get_function("caller")
    bad = Call("callee", [Constant(1, I64)], PTR)
    caller.entry.insert_before(caller.entry.instructions[0], bad)
    with pytest.raises(VerificationError, match="type"):
        verify_module(module)


def test_cross_function_operand():
    mb = ModuleBuilder("m")
    b1 = mb.function("f", [], I64)
    foreign = b1.add(1, 2)
    b1.ret(foreign)
    b2 = mb.function("g", [], I64)
    b2.block.append(Ret(foreign))  # uses f's instruction
    with pytest.raises(VerificationError):
        verify_module(mb.module)


def test_use_before_definition():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    early = b.new_block("early")
    late = b.new_block("late")
    b.jmp(early)
    b.position_at_end(early)
    # Build the late block first so its value exists, then reference it
    # from the earlier block.
    b.position_at_end(late)
    value = b.add(1, 2)
    b.ret(value)
    b.position_at_end(early)
    store_target = Alloca(8)
    early.append(store_target)
    early.append(Store(value, store_target))  # value defined later in layout
    early.append(Jump(late))
    with pytest.raises(VerificationError, match="before definition"):
        verify_function(b.function)


def test_terminator_in_middle():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    b.ret(1)
    # Force a second instruction after the terminator.
    fn = b.function
    fn.entry.instructions.append(Ret(Constant(2, I64)))
    with pytest.raises(VerificationError):
        verify_function(fn)


def test_foreign_block_target():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    stray = BasicBlock("stray")
    stray_jump = Jump(stray)
    b.function.entry.append(stray_jump)
    with pytest.raises(VerificationError, match="foreign"):
        verify_function(b.function)


def test_declaration_passes():
    mb = ModuleBuilder("m")
    mb.module.add_function("ext", [("p", PTR)], I64)
    verify_module(mb.module)
