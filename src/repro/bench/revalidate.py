"""Bench-smoke for incremental revalidation: full vs incremental
per-phase wall time over the repair corpus.

Each corpus case runs the whole detect-fix-revalidate pipeline twice —
once with the incremental engine, once with the full re-run escape
hatch — under live observability, and the per-phase timings are read
back from the recorded ``detect`` / ``revalidate`` spans (the same
numbers EXPERIMENTS E13 reports).  The result document
(``BENCH_revalidate.json``) carries, per case: the revalidation mode
taken, both phase timings, and the engine's ``revalidate.*`` counters.

Exit status (the CI gate): 0 when

- every corpus case actually took the synthesis tier — flush/fence-only
  repairs via event splicing, structural (clone + retarget) repairs via
  callee-span rewriting — and
- the aggregate revalidate-phase speedup across the flush/fence-only
  cases is at least ``GATE_SPEEDUP`` (the acceptance criterion's 3x
  minus 10% measurement tolerance — a regression of the incremental
  path beyond that fails the build).  The structural cases' own
  speedup and the machine-pool gains are gated separately by
  ``repro.bench.revalidate_structural`` (``BENCH_pool.json``).

Detect-phase timings are recorded but not gated: recording a baseline
costs about the same as a plain detection run by design, and CI
wall-clock ratios near 1.0 are too noisy to gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..corpus.bugs import all_cases
from ..fsutil import atomic_write_text
from ..obs.observability import Observability
from ..supervisor.tasks import run_case

#: Cases whose repairs are flush/fence-only — the synthesis tier must
#: carry these (mirrors tests/test_revalidate_differential.py).
SYNTH_CASES = ("PMDK-452", "PMDK-940", "PMDK-943", "P-CLHT")

#: Required aggregate revalidate-phase speedup on the synthesis-tier
#: cases: the >=3x acceptance bar with 10% measurement tolerance.
GATE_SPEEDUP = 2.7


def _phase_seconds(obs: Observability, name: str) -> float:
    return sum(
        r["duration"]
        for r in obs.tracer.records
        if r.get("name") == name and "duration" in r
    )


def _revalidate_counters(obs: Observability) -> Dict[str, int]:
    snapshot = obs.metrics_snapshot()
    return {
        key: value
        for key, value in snapshot.get("counters", {}).items()
        if key.startswith("revalidate.")
    }


def run_bench() -> Dict:
    """Run the full corpus both ways; returns the result document."""
    result: Dict = {"schema": "repro-bench-revalidate-v1", "failures": []}
    cases: Dict[str, Dict] = {}

    # One untimed run warms the allocator and interpreter caches; in a
    # fresh process the first case otherwise pays a cold-start tax big
    # enough (relative to these millisecond phases) to flip the gate.
    run_case(next(iter(all_cases())))

    inc_reval_total = 0.0
    full_reval_total = 0.0
    for case in all_cases():
        obs_inc = Observability()
        outcome_inc = run_case(case, obs=obs_inc, incremental_revalidate=True)
        obs_full = Observability()
        outcome_full = run_case(
            case, obs=obs_full, incremental_revalidate=False
        )

        mode = (outcome_inc.revalidation or {}).get("mode", "?")
        entry = {
            "mode": mode,
            "detect_seconds": {
                "incremental": round(_phase_seconds(obs_inc, "detect"), 6),
                "full": round(_phase_seconds(obs_full, "detect"), 6),
            },
            "revalidate_seconds": {
                "incremental": round(_phase_seconds(obs_inc, "revalidate"), 6),
                "full": round(_phase_seconds(obs_full, "revalidate"), 6),
            },
            "chains_rechecked": (outcome_inc.revalidation or {}).get(
                "chains_rechecked", 0
            ),
            "counters": _revalidate_counters(obs_inc),
        }
        cases[case.case_id] = entry

        if outcome_inc.reports_after_fix != outcome_full.reports_after_fix:
            result["failures"].append(
                f"{case.case_id}: verdict diverged (incremental "
                f"{outcome_inc.reports_after_fix} vs full "
                f"{outcome_full.reports_after_fix} bug(s) remaining)"
            )
        if mode != "synthesized":
            result["failures"].append(
                f"{case.case_id}: expected the synthesis tier, got "
                f"mode {mode!r}"
            )
        if case.case_id in SYNTH_CASES:
            inc_reval_total += entry["revalidate_seconds"]["incremental"]
            full_reval_total += entry["revalidate_seconds"]["full"]

    speedup = full_reval_total / max(inc_reval_total, 1e-9)
    result["cases"] = cases
    result["synth_revalidate"] = {
        "cases": list(SYNTH_CASES),
        "full_seconds": round(full_reval_total, 6),
        "incremental_seconds": round(inc_reval_total, 6),
        "speedup": round(speedup, 3),
        "gate": GATE_SPEEDUP,
    }
    if speedup < GATE_SPEEDUP:
        result["failures"].append(
            f"incremental revalidation speedup {speedup:.2f}x is below the "
            f"{GATE_SPEEDUP}x gate (flush/fence-only cases)"
        )
    result["ok"] = not result["failures"]
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.revalidate", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out",
        default="BENCH_revalidate.json",
        help="where to write the result document",
    )
    args = parser.parse_args(argv)
    result = run_bench()
    atomic_write_text(args.out, json.dumps(result, indent=2, sort_keys=True) + "\n")
    synth = result["synth_revalidate"]
    print(
        f"revalidate bench: flush/fence-only revalidation "
        f"{synth['full_seconds']}s full vs {synth['incremental_seconds']}s "
        f"incremental ({synth['speedup']}x, gate {synth['gate']}x)"
    )
    for failure in result["failures"]:
        print(f"FAILURE: {failure}", file=sys.stderr)
    return 0 if result["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    sys.exit(main())
