"""JSONL event sink and the record-schema validator.

The sink applies the same durability discipline as everything else the
pipeline writes (see :mod:`repro.fsutil`): every appended record is
flushed and fsync'd, so a crash mid-batch loses at most the record
being written — and the validator treats a torn final line as exactly
that, not as corruption.

Two write paths, matching the two shapes of observability output:

- :class:`JsonlSink` — streaming appends for spans and events (arrival
  order matters, the file grows for the life of the run);
- :func:`write_metrics` — one atomic snapshot via
  :func:`~repro.fsutil.atomic_write_text` for the final metrics file.

Emission is deliberately *fail-soft*: a full disk or yanked directory
increments :attr:`JsonlSink.dropped` instead of raising, because
observability must never be the reason a repair fails.  Serialization
errors, by contrast, are programmer bugs and do raise.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, List, Optional

from ..errors import ReproError
from ..fsutil import atomic_write_text
from .metrics import METRICS_SCHEMA

#: record types the spans/events JSONL may contain
RECORD_TYPES = ("span", "event")


class ObsSchemaError(ReproError):
    """A spans/metrics record does not match the documented schema."""


class JsonlSink:
    """Append JSON records to a file, one per line, fsync'd.

    Thread-safe: the supervisor's stdout-reader threads forward worker
    records concurrently with the dispatch loop's own events.
    """

    def __init__(self, path: str, fsync: bool = True):
        self.path = path
        self.fsync = fsync
        #: records lost to I/O errors (observability is fail-soft)
        self.dropped = 0
        self.emitted = 0
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    def emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._handle.closed:
                self.dropped += 1
                return
            try:
                self._handle.write(line + "\n")
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
            except OSError:
                self.dropped += 1
                return
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_metrics(path: str, snapshot: Dict[str, Any]) -> None:
    """Atomically write a metrics snapshot, schema-tagged, sorted keys."""
    payload = {"schema": METRICS_SCHEMA}
    payload.update(snapshot)
    atomic_write_text(
        path, json.dumps(payload, sort_keys=True, indent=2) + "\n"
    )


# ---------------------------------------------------------------------------
# schema validation (the obs-smoke CI job runs this over real output)
# ---------------------------------------------------------------------------


def _require(record: Dict[str, Any], key: str, types, context: str) -> Any:
    if key not in record:
        raise ObsSchemaError(f"{context}: missing {key!r}")
    value = record[key]
    if not isinstance(value, types) or isinstance(value, bool):
        raise ObsSchemaError(
            f"{context}: {key!r} has type {type(value).__name__}"
        )
    return value


def validate_record(record: Any) -> None:
    """Check one spans/events record against the documented schema."""
    if not isinstance(record, dict):
        raise ObsSchemaError(f"record is {type(record).__name__}, not object")
    kind = record.get("type")
    if kind not in RECORD_TYPES:
        raise ObsSchemaError(f"unknown record type {kind!r}")
    context = f"{kind} record"
    _require(record, "name", str, context)
    parent = _require(record, "parent_id", int, context)
    if parent < 0:
        raise ObsSchemaError(f"{context}: negative parent_id")
    if kind == "span":
        span_id = _require(record, "span_id", int, context)
        if span_id <= 0:
            raise ObsSchemaError(f"{context}: span_id must be positive")
        start = _require(record, "start", (int, float), context)
        end = _require(record, "end", (int, float), context)
        duration = _require(record, "duration", (int, float), context)
        if end < start:
            raise ObsSchemaError(f"{context}: end precedes start")
        if abs((end - start) - duration) > 1e-9:
            raise ObsSchemaError(f"{context}: duration disagrees with end-start")
    else:
        _require(record, "ts", (int, float), context)
    attrs = record.get("attrs")
    if attrs is not None:
        if not isinstance(attrs, dict):
            raise ObsSchemaError(f"{context}: attrs is not an object")
        for key, value in attrs.items():
            if not isinstance(value, (str, int, float, bool)) and value is not None:
                raise ObsSchemaError(
                    f"{context}: attr {key!r} is not a JSON scalar"
                )


def validate_spans_file(path: str) -> int:
    """Validate every record of a spans JSONL file; returns the count.

    A torn final line (a crash mid-append) is tolerated — exactly like
    the checkpoint journal's recovery — but a malformed *interior* line
    is a schema violation.
    """
    count = 0
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    # A trailing newline yields one empty tail entry; drop it.
    if lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except ValueError:
            if i == len(lines) - 1:
                break  # torn tail: the crash ate the end of the last append
            raise ObsSchemaError(f"{path}:{i + 1}: unparseable record")
        validate_record(record)
        count += 1
    return count


def validate_metrics_snapshot(snapshot: Any) -> None:
    """Check a metrics snapshot (or metrics file payload) shape."""
    if not isinstance(snapshot, dict):
        raise ObsSchemaError("metrics snapshot is not an object")
    schema = snapshot.get("schema", METRICS_SCHEMA)
    if schema != METRICS_SCHEMA:
        raise ObsSchemaError(f"unknown metrics schema {schema!r}")
    for section, value_check in (
        ("counters", lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0),
        ("gauges", lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)),
    ):
        table = snapshot.get(section, {})
        if not isinstance(table, dict):
            raise ObsSchemaError(f"metrics {section} is not an object")
        for name, value in table.items():
            if not value_check(value):
                raise ObsSchemaError(f"metrics {section}[{name!r}] malformed")
    histograms = snapshot.get("histograms", {})
    if not isinstance(histograms, dict):
        raise ObsSchemaError("metrics histograms is not an object")
    for name, summary in histograms.items():
        if not isinstance(summary, dict):
            raise ObsSchemaError(f"histogram {name!r} is not an object")
        for key in ("count", "total", "min", "max"):
            if key not in summary:
                raise ObsSchemaError(f"histogram {name!r} missing {key!r}")


def load_metrics(path: str) -> Dict[str, Any]:
    """Read and validate a metrics file written by :func:`write_metrics`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_metrics_snapshot(payload)
    return payload


def read_spans(path: str) -> List[Dict[str, Any]]:
    """Parse a spans JSONL file (validating each record)."""
    records: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            validate_record(record)
            records.append(record)
    return records
