"""The facade the rest of the pipeline talks to.

Instrumented code takes an ``obs`` object and calls
``obs.span("phase.apply")`` / ``obs.count("pipeline.bugs")`` without
caring whether observability is on.  Two implementations of that
surface exist:

- :class:`Observability` — a live tracer + metrics registry, optionally
  attached to a :class:`~repro.obs.sink.JsonlSink`;
- :data:`NULL_OBS` — a shared disabled instance whose every operation
  is a no-op (spans return a reusable null context manager).

The null object keeps instrumentation off the canonical path: callers
never branch on a flag, and a disabled run allocates nothing per span.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .metrics import MetricsRegistry
from .sink import write_metrics
from .spans import Tracer


class _NullSpan:
    """A no-op context manager, shared across all disabled spans."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Observability:
    """Bundles a tracer and a metrics registry behind one handle.

    :param enabled: when False the instance behaves like
        :data:`NULL_OBS` — kept as a constructor flag so call sites can
        write ``Observability(enabled=args.spans_out is not None)``.
    :param clock: forwarded to :class:`~repro.obs.spans.Tracer`
        (inject :class:`~repro.obs.spans.ManualClock` for determinism).
    :param sink: span/event destination; None buffers in
        ``self.tracer.records``.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
        sink: Optional[Any] = None,
    ):
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=clock, sink=sink)

    # -- spans / events -------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        if self.enabled:
            self.tracer.event(name, **attrs)

    def emit(self, record: Dict[str, Any]) -> None:
        """Route a pre-built record to this facade's output.

        The supervisor uses this to forward span/event records a worker
        subprocess shipped over its pipe (already schema-shaped) into
        the batch-level sink.
        """
        if self.enabled:
            self.tracer._emit(record)

    # -- metrics --------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.metrics.snapshot()

    def merge_metrics(self, snapshot: Dict[str, Any]) -> None:
        if self.enabled:
            self.metrics.merge(snapshot)

    def write_metrics(self, path: str) -> None:
        write_metrics(path, self.metrics_snapshot())

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        sink = self.tracer.sink
        if sink is not None and hasattr(sink, "close"):
            sink.close()


#: the shared disabled instance — safe to pass everywhere, does nothing
NULL_OBS = Observability(enabled=False)
