"""E1 — Fig. 1: the 26-bug study table.

Regenerates the paper's bug-study statistics from the dataset and
checks every published aggregate exactly.
"""

from repro.corpus import (
    API_MISUSE,
    CORE_LIBRARY,
    STUDY,
    fig1_table,
    group_stats,
    overall_stats,
)

from conftest import save_table


def test_fig1_bug_study(benchmark):
    table = benchmark(fig1_table)
    save_table("fig1_bug_study.txt", table)

    assert len(STUDY) == 26
    core = group_stats(CORE_LIBRARY)
    misuse = group_stats(API_MISUSE)
    overall = overall_stats()
    # Fig. 1's published aggregates.
    assert (core["avg_commits"], core["avg_days"], core["max_days"]) == (17, 33, 66)
    assert (misuse["avg_commits"], misuse["avg_days"], misuse["max_days"]) == (
        2,
        15,
        38,
    )
    assert (overall["avg_commits"], overall["avg_days"], overall["max_days"]) == (
        13,
        28,
        66,
    )
