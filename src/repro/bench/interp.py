"""Bench-smoke for the flat execution engine: interpreter steps/sec,
flat vs reference, on a detect-dominated workload.

EXPERIMENTS E11 showed the detect phase — executing the workload under
pmemcheck-style tracing — dominating per-task time, and within it raw
instruction dispatch.  This bench measures exactly that axis with both
engines on the same inputs:

- **hot** — the gated measurement: a synthetic detect run modeled on
  the E11 profile (tight compute loops punctuated by PM stores,
  flushes, fences, and ``checkpoint`` durability boundaries), sized so
  interpreter dispatch dominates wall time the way it does in the
  corpus detect phase.  Each engine runs it ``REPEATS`` times and the
  best run counts, which cancels warm-up and scheduler noise.
- **corpus** — every corpus case's detect phase on both engines:
  aggregate wall time and steps/sec, recorded for trend-tracking but
  not gated (per-case fixed costs — machine construction, drivers,
  trace recording — are engine-independent and drown the dispatch
  ratio in noise at corpus step counts).

Every run also cross-checks the two-engine contract where it is free
to do so: steps, cycles, trace length, and bug counts must agree
exactly between engines, else the bench fails regardless of speed.

Exit status (the CI gate): 0 when the hot-workload steps/sec ratio
flat/reference is at least ``GATE_SPEEDUP`` (the acceptance
criterion's 3x minus 10% measurement tolerance) and no divergence was
observed.  The result document is written to ``BENCH_interp.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

from ..corpus.bugs import all_cases
from ..detect import pmemcheck_run
from ..fsutil import atomic_write_text
from ..interp import ENGINES
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from ..ir.types import I64, PTR

#: Required steps/sec ratio (flat over reference) on the hot workload:
#: the >=3x acceptance bar with 10% measurement tolerance.
GATE_SPEEDUP = 2.7

#: Timed repetitions per engine on the hot workload; best run counts.
REPEATS = 3

#: Hot-workload shape: ``ROUNDS`` outer iterations, each doing one PM
#: store + flush + fence into a ``CELLS``-slot pool and then ``INNER``
#: iterations of pure compute — the store:compute ratio of the corpus
#: detect phase, at a step count high enough to time dispatch.
ROUNDS = 400
CELLS = 64
INNER = 400


def build_hot_module() -> Module:
    """The detect-dominated synthetic workload (see module docstring)."""
    mb = ModuleBuilder("bench_interp_hot")
    fb = mb.function("work", [("rounds", I64)], I64)
    rounds = fb.function.args[0]
    iv = fb.alloca(8)
    acc = fb.alloca(8)
    jv = fb.alloca(8)
    pool = fb.call("pm_alloc", [CELLS * 8], type_=PTR)
    fb.store(0, iv)
    fb.store(0, acc)
    loop = fb.new_block("loop")
    body = fb.new_block("body")
    inner_hdr = fb.new_block("inner")
    inner_body = fb.new_block("inner_body")
    after = fb.new_block("after")
    done = fb.new_block("done")
    fb.jmp(loop)

    fb.position_at_end(loop)
    i = fb.load(iv)
    fb.br(fb.icmp("ult", i, rounds), body, done)

    fb.position_at_end(body)
    slot = fb.gep(pool, fb.mul(fb.binop("urem", i, CELLS), 8))
    fb.store(i, slot)
    fb.flush(slot)
    fb.fence()
    fb.store(0, jv)
    fb.jmp(inner_hdr)

    fb.position_at_end(inner_hdr)
    j = fb.load(jv)
    fb.br(fb.icmp("ult", j, INNER), inner_body, after)

    fb.position_at_end(inner_body)
    a = fb.load(acc)
    fb.store(fb.add(a, fb.add(fb.mul(j, 3), 7)), acc)
    fb.store(fb.add(j, 1), jv)
    fb.jmp(inner_hdr)

    fb.position_at_end(after)
    fb.store(fb.add(i, 1), iv)
    fb.jmp(loop)

    fb.position_at_end(done)
    fb.call("checkpoint", [], type_=I64)
    fb.ret(fb.load(acc))
    return mb.module


def _timed_detect(module: Module, drive, engine: str) -> Tuple[float, Dict]:
    """One pmemcheck run; returns (wall seconds, identity fingerprint)."""
    start = time.perf_counter()
    result, trace, interp = pmemcheck_run(module, drive, engine=engine)
    wall = time.perf_counter() - start
    fingerprint = {
        "steps": interp.steps,
        "cycles": interp.costs.cycles,
        "trace_events": len(trace.events),
        "bugs": result.bug_count,
        "output": list(interp.output),
    }
    return wall, fingerprint


def _bench_hot(result: Dict) -> Dict:
    module = build_hot_module()

    def drive(interp):
        interp.call("work", [ROUNDS])

    per_engine: Dict[str, Dict] = {}
    fingerprints: Dict[str, Dict] = {}
    for engine in ENGINES:
        walls = []
        for _ in range(REPEATS):
            wall, fingerprint = _timed_detect(module, drive, engine)
            walls.append(wall)
            fingerprints[engine] = fingerprint
        best = min(walls)
        per_engine[engine] = {
            "best_seconds": round(best, 6),
            "all_seconds": [round(w, 6) for w in walls],
            "steps": fingerprints[engine]["steps"],
            "steps_per_sec": round(fingerprints[engine]["steps"] / best, 1),
        }
    flat, reference = fingerprints["flat"], fingerprints["reference"]
    if flat != reference:
        result["failures"].append(
            f"hot workload diverged between engines: flat={flat} "
            f"reference={reference}"
        )
    speedup = (
        per_engine["flat"]["steps_per_sec"]
        / max(per_engine["reference"]["steps_per_sec"], 1e-9)
    )
    hot = {
        "engines": per_engine,
        "speedup": round(speedup, 3),
        "gate": GATE_SPEEDUP,
        "shape": {"rounds": ROUNDS, "cells": CELLS, "inner": INNER},
    }
    if speedup < GATE_SPEEDUP:
        result["failures"].append(
            f"flat-engine steps/sec speedup {speedup:.2f}x is below the "
            f"{GATE_SPEEDUP}x gate on the detect-dominated workload"
        )
    return hot


def _bench_corpus(result: Dict) -> Dict:
    totals = {engine: {"seconds": 0.0, "steps": 0} for engine in ENGINES}
    for case in all_cases():
        module = case.build()
        fingerprints: Dict[str, Dict] = {}
        for engine in ENGINES:
            wall, fingerprint = _timed_detect(module, case.drive, engine)
            fingerprints[engine] = fingerprint
            totals[engine]["seconds"] += wall
            totals[engine]["steps"] += fingerprint["steps"]
        if fingerprints["flat"] != fingerprints["reference"]:
            result["failures"].append(
                f"{case.case_id}: detect diverged between engines: "
                f"flat={fingerprints['flat']} "
                f"reference={fingerprints['reference']}"
            )
    corpus: Dict[str, Dict] = {}
    for engine, total in totals.items():
        corpus[engine] = {
            "detect_seconds": round(total["seconds"], 6),
            "steps": total["steps"],
            "steps_per_sec": round(total["steps"] / max(total["seconds"], 1e-9), 1),
        }
    corpus["speedup"] = round(
        corpus["flat"]["steps_per_sec"]
        / max(corpus["reference"]["steps_per_sec"], 1e-9),
        3,
    )
    return corpus


def run_bench() -> Dict:
    """Run both measurements; returns the result document."""
    result: Dict = {"schema": "repro-bench-interp-v1", "failures": []}
    result["hot"] = _bench_hot(result)
    result["corpus_detect"] = _bench_corpus(result)
    result["ok"] = not result["failures"]
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.interp", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out",
        default="BENCH_interp.json",
        help="where to write the result document",
    )
    args = parser.parse_args(argv)
    result = run_bench()
    atomic_write_text(args.out, json.dumps(result, indent=2, sort_keys=True) + "\n")
    hot = result["hot"]
    corpus = result["corpus_detect"]
    print(
        f"interp bench: hot workload "
        f"{hot['engines']['reference']['steps_per_sec']:,.0f} steps/s "
        f"reference vs {hot['engines']['flat']['steps_per_sec']:,.0f} "
        f"steps/s flat ({hot['speedup']}x, gate {hot['gate']}x); corpus "
        f"detect {corpus['reference']['detect_seconds']}s vs "
        f"{corpus['flat']['detect_seconds']}s ({corpus['speedup']}x)"
    )
    for failure in result["failures"]:
        print(f"FAILURE: {failure}", file=sys.stderr)
    return 0 if result["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    sys.exit(main())
