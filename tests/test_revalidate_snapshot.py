"""Snapshot isolation: replaying from a memoized snapshot must never
mutate it — and pooled machine reuse must never leak state between runs.

The latent hazard: :class:`MachineSnapshot` memoizes the machine's
cache-durability state, whose per-line ``dirty_stores`` /
``flushing_stores`` sets the fence handler mutates **in place**.  If
capture or :meth:`materialize` shared those containers, the first
replay's fences would drain the snapshot's sets and a second replay
from the same snapshot would see already-fenced lines — silently
changing detection results.  These are the regression tests for the
deep-copy-both-ways contract (see ``src/repro/revalidate/snapshot.py``).

The pooled variants add a second hazard: a reused
:class:`~repro.memory.pool.MachinePool` buffer carries the *previous*
run's bytes above the new run's high-water mark.  A restore that only
copied its own prefix would leave that stale suffix in place — invisible
until some later allocation reads "zero" memory that isn't.
"""

from __future__ import annotations

import sys

from repro.core.hippocrates import Hippocrates
from repro.detect import pmemcheck_run
from repro.ir import I64, ModuleBuilder, PTR
from repro.memory.pool import MachinePool
from repro.obs.metrics import MetricsRegistry
from repro.revalidate import IncrementalRevalidator


def build_two_phase_module():
    """Two top-level entry points: ``setup`` leaves PM state pending
    (dirty lines at the call boundary), ``finish`` stores unpersisted.
    The snapshot between the calls carries non-empty cache-line sets —
    exactly the state the aliasing hazard corrupts."""
    mb = ModuleBuilder("twophase")

    b = mb.function("setup", [], I64, source_file="twophase.c")
    base = b.call("pm_root", [256], PTR)
    b.store(1, base)
    b.flush(base)  # flushing, never fenced: pending at the boundary
    slot = b.gep(base, 64)
    b.store(2, slot)  # dirty at the boundary
    b.ret(0)

    b = mb.function("finish", [], I64, source_file="twophase.c")
    root = b.call("pm_root", [256], PTR)
    # persist setup's pending lines: the flush covers the dirty slot,
    # the fence completes both it and setup's un-fenced flush — so the
    # only bug left anchors *in this segment*
    slot = b.gep(root, 64)
    b.flush(slot)
    b.fence()
    target = b.gep(root, 128)
    b.store(3, target)  # the bug the fix will repair
    b.call("checkpoint", [])
    b.ret(0)
    return mb.module


def drive(interp):
    interp.call("setup")
    interp.call("finish")


def _record(module):
    engine = IncrementalRevalidator(drive)
    detection, trace, interp = engine.record(module)
    return engine, detection, trace, interp


def _boundary_snapshot(engine):
    """The snapshot captured between ``setup`` and ``finish``."""
    base = engine.baseline
    segment = base.segments[1]
    assert segment.fn_name == "finish"
    assert segment.snapshot is not None
    return segment.snapshot


def test_snapshot_lines_survive_mutation_of_materialized_machine():
    module = build_two_phase_module()
    engine, _, _, _ = _record(module)
    snapshot = _boundary_snapshot(engine)
    # the recording left pending durability state at the boundary
    assert any(dirty or flushing for _, dirty, flushing in snapshot.lines)

    first = snapshot.materialize()
    before = [
        (addr, frozenset(dirty), frozenset(flushing))
        for addr, dirty, flushing in snapshot.lines
    ]
    # simulate what a replayed fence does: drain every line in place
    for state in first.cache.lines.values():
        state.dirty_stores.clear()
        state.flushing_stores.clear()
    assert list(snapshot.lines) == before

    second = snapshot.materialize()
    for (addr, dirty, flushing) in snapshot.lines:
        state = second.cache.lines[addr]
        assert state.dirty_stores == set(dirty)
        assert state.flushing_stores == set(flushing)


def test_materialized_machines_share_no_mutable_state():
    module = build_two_phase_module()
    engine, _, _, _ = _record(module)
    snapshot = _boundary_snapshot(engine)
    a = snapshot.materialize()
    b = snapshot.materialize()
    for addr, state in a.cache.lines.items():
        other = b.cache.lines[addr]
        assert state is not other
        assert state.dirty_stores is not other.dirty_stores
        assert state.flushing_stores is not other.flushing_stores
    # region bytes and the durable image are independent copies too
    a.space.pm.data[0] ^= 0xFF
    assert a.space.pm.data[0] != b.space.pm.data[0]
    a.image._durable[0] ^= 0xFF
    assert a.image._durable[0] != b.image._durable[0]
    # and the allocation registry is not shared
    a.allocations.append(None)
    assert len(b.allocations) == len(a.allocations) - 1


def test_second_replay_from_same_snapshot_is_unaffected_by_first():
    """Two consecutive replay-tier revalidations resume from the same
    memoized snapshot; if the first drained its cache-line sets, the
    second would diverge."""
    module = build_two_phase_module()
    engine, detection, trace, interp = _record(module)
    assert detection.bug_count >= 1

    fixer = Hippocrates(
        module, trace, interp.machine, heuristic="off", revalidator=engine
    )
    fixer.apply(fixer.compute_fixes())
    # drop the insertion specs so revalidation must replay the
    # interpreter from the boundary snapshot (the "incremental" tier)
    engine.note_commit(set(), structural=False, insertions=None)

    first = fixer.revalidate()
    assert first.mode == "incremental"
    assert first.replayed_from == 1  # resumed at the setup/finish boundary
    second = fixer.revalidate()
    assert second.mode == "incremental"
    assert second.replayed_from == first.replayed_from
    assert [b.as_record() for b in second.detection.bugs] == [
        b.as_record() for b in first.detection.bugs
    ]
    assert len(second.trace.events) == len(first.trace.events)
    for ours, theirs in zip(second.trace.events, first.trace.events):
        assert ours == theirs


# ---------------------------------------------------------------------------
# pooled machine reuse
# ---------------------------------------------------------------------------


def _region_state(region):
    return (bytes(region.data), region.brk, region.high_water)


def _machine_state(machine):
    """Every byte a pooled-reuse bug could corrupt: full region buffers
    (not just live prefixes), allocator watermarks, the durable view."""
    space = machine.space
    return (
        _region_state(space.vol),
        _region_state(space.stack),
        _region_state(space.pm),
        machine.image.snapshot_durable(),
    )


def test_pooled_detect_run_byte_identical_to_fresh():
    """A detection run on *reused* pooled buffers must produce the same
    trace, detection, and final machine bytes as a fresh-buffer run."""
    module = build_two_phase_module()
    fresh_detection, fresh_trace, fresh_interp = pmemcheck_run(module, drive)

    pool = MachinePool()
    _, _, cold = pmemcheck_run(module, drive, pool=pool)  # miss: fresh pair
    pool.release(cold.machine)
    warm_detection, warm_trace, warm = pmemcheck_run(module, drive, pool=pool)
    assert pool.hits >= 1  # the warm run actually reused buffers

    assert [b.describe() for b in warm_detection.bugs] == [
        b.describe() for b in fresh_detection.bugs
    ]
    assert len(warm_trace.events) == len(fresh_trace.events)
    for ours, theirs in zip(warm_trace.events, fresh_trace.events):
        assert ours == theirs
    assert _machine_state(warm.machine) == _machine_state(fresh_interp.machine)


def test_pooled_materialize_zeroes_stale_suffix():
    """Regression: materializing a snapshot into a pooled pair whose
    previous run wrote *above* this snapshot's high-water marks must
    zero the gap — prefix-only restores leave the stale suffix live."""
    module = build_two_phase_module()
    engine, _, _, interp = _record(module)
    snapshot = _boundary_snapshot(engine)

    pool = MachinePool()
    _, _, dirty_interp = pmemcheck_run(module, drive, pool=pool)
    machine = dirty_interp.machine
    # push every high-water mark well past anything the boundary
    # snapshot recorded, then poison the durable view too
    for region in (machine.space.vol, machine.space.stack, machine.space.pm):
        region.write_bytes(region.base + (1 << 20), b"\xab" * 4096)
    machine.image.restore(b"\xcd" * (1 << 21))
    pool.release(machine)

    pooled = snapshot.materialize(pool)
    assert pool.hits >= 1  # the dirty pair really was reused
    fresh = snapshot.materialize()
    assert _machine_state(pooled) == _machine_state(fresh)


def test_double_replay_from_one_snapshot_on_pooled_regions():
    """The replay tier releases its machine back into the pool, so a
    second replay resumes onto the first replay's retired buffers —
    shrinking high-water marks between uses.  Verdicts must match."""
    module = build_two_phase_module()
    pool = MachinePool()
    engine = IncrementalRevalidator(drive, pool=pool)
    detection, trace, interp = engine.record(module)
    assert detection.bug_count >= 1

    fixer = Hippocrates(
        module, trace, interp.machine, heuristic="off", revalidator=engine
    )
    fixer.apply(fixer.compute_fixes())
    engine.note_commit(set(), structural=False, insertions=None)

    first = fixer.revalidate()
    assert first.mode == "incremental"
    second = fixer.revalidate()
    assert second.mode == "incremental"
    assert pool.hits >= 1  # second replay materialized onto pooled buffers
    assert [b.as_record() for b in second.detection.bugs] == [
        b.as_record() for b in first.detection.bugs
    ]
    assert len(second.trace.events) == len(first.trace.events)
    for ours, theirs in zip(second.trace.events, first.trace.events):
        assert ours == theirs


# ---------------------------------------------------------------------------
# snapshot accounting
# ---------------------------------------------------------------------------


def test_snapshot_bytes_gauge_matches_byte_size():
    """The ``revalidate.snapshot_bytes`` gauge must equal the summed
    ``byte_size`` of every retained snapshot, and ``byte_size`` itself
    must dominate a ``sys.getsizeof``-based floor over the payload it
    claims to count (region prefixes, durable prefix, per-line
    durability sets, allocation registry)."""
    module = build_two_phase_module()
    metrics = MetricsRegistry()
    engine = IncrementalRevalidator(drive, metrics=metrics)
    engine.record(module)

    snapshots = [
        segment.snapshot
        for segment in engine.baseline.segments
        if segment.snapshot is not None
    ]
    assert snapshots
    total = sum(snap.byte_size for snap in snapshots)
    assert metrics.gauge("revalidate.snapshot_bytes").value == total

    for snap in snapshots:
        floor = (
            len(snap.vol[2])
            + len(snap.stack[2])
            + len(snap.pm[2])
            + len(snap.durable)
            + sum(
                sys.getsizeof(dirty) + sys.getsizeof(flushing)
                for _addr, dirty, flushing in snap.lines
            )
            + sum(sys.getsizeof(alloc) for alloc in snap.allocations)
        )
        assert snap.byte_size >= floor
