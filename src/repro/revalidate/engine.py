"""The incremental revalidation engine.

Post-fix revalidation re-runs the workload and re-checks the trace.
This engine makes the common case — flush/fence-only fixes, which is
what Hippocrates inserts for every intraprocedural repair — incremental:

1. **Record** (:meth:`IncrementalRevalidator.record`): the initial
   detection run executes under a
   :class:`~repro.revalidate.recording.RunRecorder`, memoizing machine
   snapshots and executed-iid sets per top-level call, and the checker
   pass builds the chain dependency index plus
   :class:`~repro.detect.durability.CheckerState` forks at every
   snapshot boundary.
2. **Witness** (:meth:`note_commit`): after each committed fix, the
   :class:`~repro.core.transaction.FixTransaction` reports the *anchor*
   iids — the existing instructions the fix inserted flushes/fences
   after — and whether the fix was structural.  Anchors accumulate
   across fix rounds against the same recording.
3. **Revalidate** (:meth:`revalidate`): flush/fence insertions change
   no control flow and no data, so the fixed module's trace is a pure
   function of the baseline trace.  With a complete witness
   (:class:`~repro.revalidate.witness.InsertionSpec` per fix) the
   engine *synthesizes* that trace — no execution at all — and
   re-checks from the last memoized checker fork before the first
   changed event.  With only anchor iids (no insertion specs) it
   *replays* the interpreter from the last snapshot at or before the
   first anchor-affected segment and feeds the replayed suffix through
   the forked checker state.  Either way report ids, occurrence
   counts, and orderings continue exactly as a full pass would —
   byte-identical results.

Structural (hoisted) fixes get their own synthesis tier: the recorder
keeps per-callee sub-trace spans
(:class:`~repro.revalidate.recording.CalleeSpan`), and a committed call
retarget with a complete clone witness
(:class:`~repro.revalidate.witness.StructuralSpec`) is revalidated by
*rewriting* the retargeted call site's recorded spans — re-mapped iids
and stacks, spliced covering flushes and the trailing sfence, cache
effects re-simulated — again with no execution at all (see
:func:`~repro.revalidate.synthesize.synthesize_structural_trace`).

Fallback rules (all full re-records, counted in
``revalidate.fallbacks``):

- a structural fix committed without a usable witness (an indescribable
  clone, an incomplete span record, a span overlap the rewriter cannot
  order, or plain ``structural=True`` with no specs at all);
- an anchor iid (or a retargeted call site) is not in the recorded
  module (the fix anchors at an instruction inserted *after*
  recording, e.g. a round-2 fix anchored on a round-1 flush);
- the module changed but no anchors were witnessed;
- the driver diverges during replay, or replay raises at all.

If the module fingerprint is unchanged — or every anchor sits in dead
code the recording never executed — the baseline detection is returned
as-is (``revalidate.noop_hits``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Set, Tuple

from ..detect import Driver
from ..detect.durability import ChainIndex, DurabilityChecker
from ..detect.reports import DetectionResult
from ..interp import ENGINES, get_default_engine, make_interpreter
from ..interp.costs import CostModel
from ..interp.interpreter import Interpreter, Machine
from ..ir.module import Module
from ..memory.pool import MachinePool
from ..trace.trace import PMTrace
from .recording import RecordedRun, RecordingTraceRecorder, RunRecorder
from .replay import ReplayDivergence, replay_class
from .synthesize import (
    SynthesisResult,
    synthesize_fixed_trace,
    synthesize_structural_trace,
)
from .witness import InsertionSpec, StructuralSpec


@dataclass
class RevalidationOutcome:
    """One revalidation's result plus how it was obtained.

    ``mode`` is volatile diagnostics (tests assert on it; reports must
    not journal it):

    - ``"baseline"`` — module unchanged (or only dead code changed);
      the recorded detection was returned without any execution.
    - ``"synthesized"`` — the post-fix trace was synthesized from the
      baseline trace and the mutation witness (no execution at all);
      only the suffix from the last memoized checker fork re-checked.
    - ``"incremental"`` — replayed from a snapshot, suffix re-checked.
    - ``"full"`` — fell back to (or started with) a full re-record.
    """

    mode: str
    detection: DetectionResult
    trace: PMTrace
    #: segment index replay started from (incremental mode)
    replayed_from: Optional[int] = None
    segments_total: int = 0
    segments_replayed: int = 0
    #: chain (cache line) addresses the incremental pass re-checked
    rechecked_chains: Set[int] = field(default_factory=set)
    #: why a fallback was taken (diagnostics)
    fallback_reason: str = ""

    @property
    def chains_rechecked(self) -> int:
        return len(self.rechecked_chains)

    def as_stats(self) -> dict:
        """Volatile summary (never part of canonical records)."""
        return {
            "mode": self.mode,
            "replayed_from": self.replayed_from,
            "segments_total": self.segments_total,
            "segments_replayed": self.segments_replayed,
            "chains_rechecked": self.chains_rechecked,
            "fallback_reason": self.fallback_reason,
        }


class IncrementalRevalidator:
    """Records one workload execution and revalidates fixes against it.

    :param driver: the workload driver (same contract as
        :func:`~repro.detect.pmemcheck_run`).
    :param cost_model:, :param fuel: interpreter configuration, applied
        identically to recording, replay, and fallback runs.
    :param max_snapshots: snapshot memory bound (see
        :class:`~repro.revalidate.recording.RunRecorder`).
    :param metrics: optional
        :class:`~repro.obs.metrics.MetricsRegistry`; receives the
        ``revalidate.*`` counters and the interpreters' totals.
    :param engine: execution engine kind, applied identically to
        recording, replay, and fallback runs (default: the process-wide
        default engine).  Both engines yield byte-identical recordings.
    :param pool: optional :class:`~repro.memory.pool.MachinePool`;
        recording, replay, and fallback machines then reuse pooled
        buffers instead of reallocating (replay and fallback machines
        are retired back into the pool; the machine :meth:`record`
        returns to its caller is the caller's to release).
    """

    def __init__(
        self,
        driver: Driver,
        *,
        cost_model: Optional[CostModel] = None,
        fuel: int = 50_000_000,
        max_snapshots: int = 32,
        metrics=None,
        engine: Optional[str] = None,
        pool: Optional[MachinePool] = None,
    ):
        self.driver = driver
        self.cost_model = cost_model
        self.fuel = fuel
        self.max_snapshots = max_snapshots
        self.metrics = metrics
        self.engine = engine or get_default_engine()
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} (choose from {ENGINES})"
            )
        self.pool = pool
        self.baseline: Optional[RecordedRun] = None
        self.last_outcome: Optional[RevalidationOutcome] = None
        #: anchor iids committed since the current recording
        self._pending_anchors: Set[int] = set()
        self._pending_structural = False
        #: insertion specs for every committed fix, in commit order;
        #: None once any commit lacked one (synthesis then ineligible,
        #: snapshot replay still available)
        self._pending_specs: Optional[list] = []
        #: structural witnesses for every committed hoisted fix, in
        #: commit order; None once any structural commit lacked one
        #: (structural synthesis then ineligible — full re-record)
        self._pending_struct_specs: Optional[list] = []
        #: set when the analysis manager recomputed the baseline via
        #: :meth:`rebuild_baseline` (a full re-record); the next
        #: revalidation reports mode ``"full"`` even though the fresh
        #: baseline's fingerprint now matches the module.
        self._manager_rebuild = False

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _new_machine(self) -> Machine:
        if self.pool is None:
            return Machine()
        space, image = self.pool.acquire()
        return Machine(space=space, image=image)

    def _release_machine(self, machine: Machine) -> None:
        if self.pool is not None:
            self.pool.release(machine)

    # -- recording ------------------------------------------------------------

    def record(
        self, module: Module
    ) -> Tuple[DetectionResult, PMTrace, Interpreter]:
        """Execute the workload under recording; install the baseline.

        Drop-in replacement for the detection-phase
        :func:`~repro.detect.pmemcheck_run` — same return triple, same
        detection semantics — plus the side effect of memoizing the
        recording this engine revalidates against.
        """
        if self.baseline is not None:
            # Re-recording *is* the full-revalidation fallback path.
            self._count("revalidate.fallbacks")
        self._count("revalidate.records")
        recorder = RunRecorder(max_snapshots=self.max_snapshots)
        # A recording machine keeps the volatile-op side channel (for
        # trace synthesis); its trace stays byte-identical to a plain
        # machine's.
        machine = self._new_machine()
        trace_recorder = RecordingTraceRecorder(
            lambda: machine._stack_provider()
        )
        machine.recorder = trace_recorder
        interp = make_interpreter(
            module,
            engine=self.engine,
            machine=machine,
            cost_model=self.cost_model,
            fuel=self.fuel,
            metrics=self.metrics,
            run_recorder=recorder,
        )
        trace_recorder.current_iid = interp.current_iid
        self.driver(interp)
        trace = interp.finish()

        # One checker pass over the full trace, forking the state at
        # every snapshot-bearing segment boundary and collecting the
        # chain dependency index.
        chain_index = ChainIndex()
        checker = DurabilityChecker(collector=chain_index)
        state = checker.new_state()
        forks = {}
        position = 0
        events = trace.events
        for segment in recorder.segments:
            if segment.snapshot is None:
                continue
            while position < segment.trace_start:
                checker.feed(state, events[position])
                position += 1
            forks[segment.index] = state.fork()
        while position < len(events):
            checker.feed(state, events[position])
            position += 1
        detection = checker.finalize(state)

        self.baseline = RecordedRun(
            module_fingerprint=module.fingerprint(),
            module_iids=frozenset(
                instr.iid for instr in module.instructions()
            ),
            segments=recorder.segments,
            trace=trace,
            detection=detection,
            chain_index=chain_index,
            forks=forks,
            fuel=self.fuel,
            vol_ops=tuple(trace_recorder.vol_ops),
            spans=tuple(recorder.spans),
            spans_ok=recorder.spans_ok,
        )
        self._pending_anchors.clear()
        self._pending_structural = False
        self._pending_specs = []
        self._pending_struct_specs = []
        if self.metrics is not None:
            self.metrics.gauge("revalidate.snapshot_bytes").set(
                sum(
                    segment.snapshot.byte_size
                    for segment in recorder.segments
                    if segment.snapshot is not None
                )
            )
        return detection, trace, interp

    def rebuild_baseline(self, module: Module) -> RecordedRun:
        """Re-record and return the fresh baseline (the analysis
        manager's compute hook for the ``revalidation_index`` key)."""
        _, _, interp = self.record(module)
        self._release_machine(interp.machine)
        self._manager_rebuild = True
        assert self.baseline is not None
        return self.baseline

    # -- the mutation witness -------------------------------------------------

    def note_commit(
        self,
        anchor_iids: Iterable[int],
        structural: bool,
        insertions: Optional[Iterable[InsertionSpec]] = None,
        structural_specs: Optional[Iterable[StructuralSpec]] = None,
    ) -> None:
        """A fix transaction committed against the module.

        ``insertions`` carries the full mutation witness (what was
        inserted after each anchor); without it the synthesis tier is
        unavailable and revalidation uses snapshot replay instead.
        ``structural_specs`` carries the witnesses of a structural
        commit's call retargets; a structural commit without them (None
        *or* empty — some structural mutation went undescribed) makes
        structural synthesis ineligible and the next revalidation a
        full re-record.
        """
        self._pending_anchors.update(anchor_iids)
        if structural:
            self._pending_structural = True
            if not structural_specs:
                self._pending_struct_specs = None
            elif self._pending_struct_specs is not None:
                self._pending_struct_specs.extend(structural_specs)
        if insertions is None:
            self._pending_specs = None
        elif self._pending_specs is not None:
            self._pending_specs.extend(insertions)

    # -- revalidation ---------------------------------------------------------

    def revalidate(
        self, module: Module, baseline: Optional[RecordedRun] = None
    ) -> RevalidationOutcome:
        """Detect against the (fixed) module, incrementally if possible."""
        base = baseline if baseline is not None else self.baseline
        if base is not None and base is not self.baseline:
            # The analysis manager recomputed the baseline (structural
            # invalidation); adopt it.  record() already cleared the
            # witness state when it built this baseline.
            self.baseline = base
        rebuilt = self._manager_rebuild
        self._manager_rebuild = False
        if base is None:
            outcome = self._full(module, "no recording to revalidate against")
        elif self._pending_structural:
            outcome = self._structural(module, base)
        elif module.fingerprint() == base.module_fingerprint:
            if rebuilt:
                # The analysis manager just re-recorded (structural
                # invalidation cascaded to the revalidation index), so
                # this *is* a full revalidation — the fresh recording's
                # detection is the post-fix verdict.
                outcome = RevalidationOutcome(
                    mode="full",
                    detection=base.detection,
                    trace=base.trace,
                    segments_total=len(base.segments),
                    fallback_reason="baseline re-recorded after invalidation",
                )
            else:
                self._count("revalidate.noop_hits")
                outcome = RevalidationOutcome(
                    mode="baseline",
                    detection=base.detection,
                    trace=base.trace,
                    segments_total=len(base.segments),
                )
        elif not self._pending_anchors:
            outcome = self._full(
                module, "module changed without a mutation witness"
            )
        elif not self._pending_anchors <= base.module_iids:
            outcome = self._full(
                module, "fix anchored at an instruction inserted after recording"
            )
        else:
            first = base.first_affected_segment(self._pending_anchors)
            if first is None:
                # Every anchor sits in code the recording never
                # executed, so the inserted instructions never execute
                # either: the trace — and the verdict — are unchanged.
                self._count("revalidate.noop_hits")
                outcome = RevalidationOutcome(
                    mode="baseline",
                    detection=base.detection,
                    trace=base.trace,
                    segments_total=len(base.segments),
                )
            else:
                try:
                    if self._pending_specs is not None:
                        outcome = self._synthesize(module, base)
                    else:
                        outcome = self._incremental(module, base, first)
                except Exception as exc:
                    outcome = self._full(
                        module,
                        f"incremental revalidation failed: "
                        f"{type(exc).__name__}: {exc}",
                    )
        self.last_outcome = outcome
        return outcome

    def _full(self, module: Module, reason: str) -> RevalidationOutcome:
        detection, trace, interp = self.record(module)
        self._release_machine(interp.machine)
        return RevalidationOutcome(
            mode="full",
            detection=detection,
            trace=trace,
            segments_total=len(self.baseline.segments) if self.baseline else 0,
            fallback_reason=reason,
        )

    def _recheck_synthesis(
        self, base: RecordedRun, synthesis: SynthesisResult
    ) -> RevalidationOutcome:
        """Re-check a synthesized trace from the last memoized checker
        fork at or before its first changed position (every earlier
        event is the identical baseline object the fork already
        consumed)."""
        trace = synthesis.trace
        start = base.segments[0]
        for segment in base.segments:
            if (
                segment.index in base.forks
                and segment.trace_start <= synthesis.changed_from
            ):
                start = segment
        state = base.forks[start.index].fork()
        rechecked = ChainIndex()
        checker = DurabilityChecker(collector=rechecked)
        for event in trace.events[start.trace_start :]:
            checker.feed(state, event)
        detection = checker.finalize(state)

        self._count("revalidate.incremental_hits")
        self._count("revalidate.synth_hits")
        self._count(
            "revalidate.chains_rechecked", len(synthesis.affected_lines)
        )
        return RevalidationOutcome(
            mode="synthesized",
            detection=detection,
            trace=trace,
            replayed_from=start.index,
            segments_total=len(base.segments),
            segments_replayed=0,
            rechecked_chains=synthesis.affected_lines,
        )

    def _synthesize(
        self, module: Module, base: RecordedRun
    ) -> RevalidationOutcome:
        """The fast tier: no execution at all.

        The mutation witness is complete (every committed fix described
        its inserted flush/gep/fence run), so the post-fix trace is
        synthesized directly from the baseline trace and the volatile-op
        side channel, and the checker resumes from the last memoized
        fork before the first changed event.
        """
        assert self._pending_specs is not None
        synthesis = synthesize_fixed_trace(
            base.trace, base.vol_ops, self._pending_specs
        )
        return self._recheck_synthesis(base, synthesis)

    def _structural(
        self, module: Module, base: RecordedRun
    ) -> RevalidationOutcome:
        """Structural (hoisted-fix) synthesis, or a full re-record.

        A clone executes the same instructions on the same values, so a
        complete witness lets the engine rewrite the retargeted call
        sites' recorded spans instead of re-executing.  Every degraded
        input degrades to the full tier — never to guessing.
        """
        struct_specs = self._pending_struct_specs
        if not struct_specs:
            return self._full(
                module, "structural fix committed without a witness"
            )
        if self._pending_specs is None:
            return self._full(
                module,
                "structural commit alongside an unwitnessed insertion",
            )
        if not base.spans_ok:
            return self._full(module, "callee-span record incomplete")
        if not {s.call_iid for s in struct_specs} <= base.module_iids:
            return self._full(
                module,
                "structural fix at a call site inserted after recording",
            )
        if not self._pending_anchors <= base.module_iids:
            return self._full(
                module,
                "fix anchored at an instruction inserted after recording",
            )
        try:
            synthesis = synthesize_structural_trace(
                base.trace,
                base.vol_ops,
                base.spans,
                struct_specs,
                self._pending_specs,
            )
            outcome = self._recheck_synthesis(base, synthesis)
        except Exception as exc:
            return self._full(
                module,
                f"structural synthesis failed: {type(exc).__name__}: {exc}",
            )
        self._count("revalidate.synth_structural_hits")
        return outcome

    def _incremental(
        self, module: Module, base: RecordedRun, first_affected: int
    ) -> RevalidationOutcome:
        start = base.replay_base(first_affected)
        snapshot = start.snapshot
        assert snapshot is not None
        machine = snapshot.materialize(self.pool)
        try:
            replay = replay_class(self.engine)(
                module,
                machine,
                snapshot,
                skip=base.segments[: start.index],
                cost_model=self.cost_model,
                fuel=base.fuel,
                metrics=self.metrics,
            )
            self.driver(replay)
            suffix = replay.finish()
        finally:
            self._release_machine(machine)
        if replay.skipped_remaining:
            raise ReplayDivergence(
                f"driver made fewer calls than recorded "
                f"({replay.skipped_remaining} skip(s) unconsumed)"
            )

        combined = PMTrace(
            list(base.trace.events[: start.trace_start]) + list(suffix.events)
        )
        rechecked = ChainIndex()
        checker = DurabilityChecker(collector=rechecked)
        state = base.forks[start.index].fork()
        for event in suffix.events:
            checker.feed(state, event)
        detection = checker.finalize(state)

        chains = rechecked.chains()
        self._count("revalidate.incremental_hits")
        self._count("revalidate.chains_rechecked", len(chains))
        self._count(
            "revalidate.segments_replayed", len(base.segments) - start.index
        )
        return RevalidationOutcome(
            mode="incremental",
            detection=detection,
            trace=combined,
            replayed_from=start.index,
            segments_total=len(base.segments),
            segments_replayed=len(base.segments) - start.index,
            rechecked_chains=chains,
        )
