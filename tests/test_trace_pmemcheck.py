"""Unit tests for trace events and the pmemcheck text format."""

import pytest

from repro.errors import TraceError
from repro.interp import Interpreter
from repro.ir import DebugLoc, I64, ModuleBuilder, PTR
from repro.trace import (
    BoundaryEvent,
    FenceEvent,
    FlushEvent,
    PMTrace,
    StackFrame,
    StoreEvent,
    dump_event,
    dump_trace,
    load_trace,
    parse_event,
)


def recorded_trace():
    mb = ModuleBuilder("t")
    b = mb.function("writer", [("p", PTR)], I64)
    b.store(1, b.function.args[0])
    b.flush(b.function.args[0])
    b.fence()
    b.ret(0)
    b = mb.function("main", [], I64)
    p = b.call("pm_alloc", [64], PTR)
    b.call("writer", [p], I64)
    b.call("checkpoint", [])
    b.ret(0)
    interp = Interpreter(mb.module)
    interp.call("main")
    return interp.finish()


class TestEventStructure:
    def test_event_kinds_in_order(self):
        trace = recorded_trace()
        kinds = [e.kind for e in trace]
        assert kinds == ["store", "flush", "fence", "boundary", "boundary"]

    def test_store_event_stack(self):
        trace = recorded_trace()
        store = trace.stores()[0]
        assert [f.function for f in store.stack] == ["main", "writer"]
        assert store.function == "writer"
        assert store.caller_frames[0].function == "main"

    def test_flush_event_line_addr(self):
        trace = recorded_trace()
        flush = trace.flushes()[0]
        assert flush.line_addr % 64 == 0
        assert flush.had_work

    def test_pm_store_iids(self):
        trace = recorded_trace()
        assert len(trace.pm_store_iids()) == 1

    def test_volatile_stores_not_recorded_by_default(self):
        mb = ModuleBuilder("t")
        b = mb.function("main", [], I64)
        v = b.call("vol_alloc", [8], PTR)
        b.store(1, v)
        b.ret(0)
        interp = Interpreter(mb.module)
        interp.call("main")
        assert len(interp.finish().stores(pm_only=False)) == 0

    def test_volatile_stores_optional(self):
        mb = ModuleBuilder("t")
        b = mb.function("main", [], I64)
        v = b.call("vol_alloc", [8], PTR)
        b.store(1, v)
        b.ret(0)
        interp = Interpreter(mb.module, record_volatile_stores=True)
        interp.call("main")
        stores = interp.finish().stores(pm_only=False)
        assert len(stores) == 1 and stores[0].space == "vol"


class TestTextFormat:
    def test_dump_load_roundtrip(self):
        trace = recorded_trace()
        text = dump_trace(trace)
        reloaded = load_trace(text)
        assert dump_trace(reloaded) == text
        assert len(reloaded) == len(trace)

    def test_roundtrip_preserves_fields(self):
        trace = recorded_trace()
        reloaded = load_trace(dump_trace(trace))
        original = trace.stores()[0]
        restored = reloaded.stores()[0]
        assert restored.addr == original.addr
        assert restored.size == original.size
        assert restored.stack == original.stack
        assert restored.loc == original.loc

    def test_stack_frame_parse(self):
        frame = StackFrame("fn", 17, DebugLoc("f.c", 3))
        assert StackFrame.parse(str(frame)) == frame

    def test_dump_event_tags(self):
        trace = recorded_trace()
        assert dump_event(trace.stores()[0]).startswith("STORE;")
        assert dump_event(trace.flushes()[0]).startswith("FLUSH;")
        assert dump_event(trace.fences()[0]).startswith("FENCE;")
        assert dump_event(trace.boundaries()[0]).startswith("BOUNDARY;")

    @pytest.mark.parametrize(
        "line",
        [
            "WIBBLE;1;2",
            "STORE;x;0x10;8;pm;main@a.c:1#1",
            "STORE;1;0x10;8;pm;",  # empty stack
            "FLUSH;1;0x10;0x0;clwb;maybe;main@a.c:1#1",
        ],
    )
    def test_malformed_lines(self, line):
        with pytest.raises(TraceError):
            parse_event(line)

    def test_load_skips_comments_and_blanks(self):
        trace = recorded_trace()
        text = "# header\n\n" + dump_trace(trace)
        assert len(load_trace(text)) == len(trace)


class TestPMTraceContainer:
    def test_filters(self):
        trace = recorded_trace()
        assert len(trace.of_kind(StoreEvent)) == 1
        assert len(trace.of_kind(FlushEvent)) == 1
        assert len(trace.of_kind(FenceEvent)) == 1
        assert len(trace.of_kind(BoundaryEvent)) == 2

    def test_indexing(self):
        trace = recorded_trace()
        assert trace[0].kind == "store"
