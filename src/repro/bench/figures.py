"""Text renderers for every reproduced table and figure.

Each function returns the table as a string; the benchmark suite prints
them so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
paper's artifacts, and EXPERIMENTS.md records a captured copy.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..corpus.study import fig1_table
from .harness import (
    CaseOutcome,
    Fig4Result,
    OverheadRow,
    REDIS_FULL,
    REDIS_INTRA,
    REDIS_PM,
)

__all__ = [
    "fig1_table",
    "effectiveness_table",
    "fig3_table",
    "fig4_table",
    "fig5_table",
    "fig6_table",
    "heuristic_table",
]


def effectiveness_table(outcomes: List[CaseOutcome]) -> str:
    """§6.1: every reproduced bug found and fixed, revalidated clean."""
    lines = [
        "Effectiveness (§6.1) — detect, fix, revalidate",
        "-" * 76,
        f"{'case':16s} {'system':14s} {'reports':>8s} {'post-fix':>9s} "
        f"{'fixes':>6s} {'interproc':>10s}",
    ]
    total_reports = total_after = 0
    for outcome in outcomes:
        report = outcome.fix_report
        lines.append(
            f"{outcome.case.case_id:16s} {outcome.case.system:14s} "
            f"{outcome.reports_found:8d} {outcome.reports_after_fix:9d} "
            f"{report.fixes_applied:6d} {report.interprocedural_count:10d}"
        )
        total_reports += outcome.reports_found
        total_after += outcome.reports_after_fix
    lines.append("-" * 76)
    lines.append(
        f"{'TOTAL':16s} {'':14s} {total_reports:8d} {total_after:9d}"
    )
    return "\n".join(lines)


def fig3_table(outcomes: List[CaseOutcome]) -> str:
    """Fig. 3: Hippocrates fixes vs developer fixes on the PMDK bugs."""
    lines = [
        "Fig. 3 — Qualitative comparison of Hippocrates vs developer fixes",
        "-" * 100,
        f"{'issue':12s} {'Hippocrates fix':24s} {'Developer fix':24s} comparison",
    ]
    for outcome in outcomes:
        hippocrates = ",".join(outcome.fix_kinds)
        lines.append(
            f"{outcome.case.case_id:12s} {hippocrates:24s} "
            f"{outcome.case.developer_fix or '-':24s} {outcome.comparison}"
        )
    identical = sum(1 for o in outcomes if o.comparison == "functionally identical")
    lines.append("-" * 100)
    lines.append(
        f"{identical}/{len(outcomes)} functionally identical, "
        f"{len(outcomes) - identical}/{len(outcomes)} functionally equivalent"
    )
    return "\n".join(lines)


def fig4_table(result: Fig4Result) -> str:
    """Fig. 4: YCSB throughput of the three persistent Redis variants."""
    workloads = list(result.results[REDIS_PM].keys())
    lines = [
        "Fig. 4 — YCSB throughput (ops per million simulated cycles)",
        f"records={result.record_count} ops={result.operation_count} "
        f"value={result.value_size}B",
        "-" * 76,
        f"{'workload':10s} " + " ".join(
            f"{v:>14s}" for v in (REDIS_INTRA, REDIS_PM, REDIS_FULL)
        ),
    ]
    for workload in workloads:
        lines.append(
            f"{workload:10s} "
            + " ".join(
                f"{result.throughput(v, workload):14.1f}"
                for v in (REDIS_INTRA, REDIS_PM, REDIS_FULL)
            )
        )
    lines.append("-" * 76)
    speedups = result.speedup_full_over_intra()
    ratio = result.full_vs_manual()
    lines.append(
        "RedisH-full speedup over RedisH-intra: "
        + ", ".join(f"{w}={s:.2f}x" for w, s in speedups.items())
    )
    lines.append(
        "RedisH-full vs Redis-pm: "
        + ", ".join(f"{w}={r:.3f}" for w, r in ratio.items())
    )
    full_report = result.reports[REDIS_FULL]
    intra_report = result.reports[REDIS_INTRA]
    if full_report and intra_report:
        lines.append(
            f"fixes: full={full_report.fixes_applied} "
            f"({full_report.interprocedural_count} interprocedural, depths "
            f"{sorted(full_report.hoist_depths)}), "
            f"intra={intra_report.fixes_applied} (all intraprocedural)"
        )
    return "\n".join(lines)


def fig5_table(rows: List[OverheadRow]) -> str:
    """Fig. 5: offline overhead of running Hippocrates."""
    lines = [
        "Fig. 5 — Offline overhead of Hippocrates",
        "-" * 72,
        f"{'target':20s} {'K-instrs':>9s} {'time (s)':>10s} "
        f"{'peak MB':>9s} {'bugs':>5s}",
    ]
    for row in rows:
        lines.append(
            f"{row.target:20s} {row.ir_kinstr:9.2f} {row.seconds:10.3f} "
            f"{row.peak_mb:9.2f} {row.bugs_fixed:5d}"
        )
    return "\n".join(lines)


def fig6_table(report) -> str:
    """§6.4: code-size impact of the persistent-subprogram clones."""
    return "\n".join(
        [
            "§6.4 — Impact on binary size (RedisH-full)",
            "-" * 56,
            f"IR instructions before fixes : {report.ir_size_before}",
            f"IR instructions after fixes  : {report.ir_size_after}",
            f"instructions inserted        : {report.inserted_instructions}",
            f"persistent clones created    : {len(report.functions_created)}"
            f"  {report.functions_created}",
            f"growth                       : {report.ir_growth_percent:.3f}%",
        ]
    )


def heuristic_table(outcomes: List[Tuple[str, bool]]) -> str:
    """§6.1: Full-AA and Trace-AA produce identical fixed binaries."""
    lines = [
        "Heuristic comparison — Full-AA vs Trace-AA",
        "-" * 48,
    ]
    for target, identical in outcomes:
        verdict = "identical" if identical else "DIFFERENT"
        lines.append(f"{target:20s} {verdict}")
    return "\n".join(lines)
