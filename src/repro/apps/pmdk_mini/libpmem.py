"""mini-libpmem: the low-level persistence primitives of PMDK, in IR.

These are the *correct* library routines applications and developer
fixes call:

- ``pmem_flush(addr, len)`` — flush every cache line of a range (clwb)
- ``pmem_drain()`` — sfence
- ``pmem_persist(addr, len)`` — flush + drain (PMDK's workhorse)
- ``pmem_memcpy_persist(dst, src, n)`` — memcpy then persist the range
- ``pmem_memset_persist(p, v, n)`` — memset then persist the range

The paper's "developer fixes" overwhelmingly insert calls to these
(that is what makes them *interprocedural* fixes), so the corpus's
developer-fix metadata references these names.
"""

from __future__ import annotations

from ..stdlib import STDLIB_FILE
from ...ir.builder import ModuleBuilder
from ...ir.types import I64, PTR
from ...memory.layout import CACHE_LINE

LIBPMEM_FILE = "libpmem.c"


def add_pmem_flush(mb: ModuleBuilder) -> None:
    """Flush each cache line covering ``[addr, addr+len)``."""
    b = mb.function(
        "pmem_flush", [("addr", PTR), ("len", I64)], source_file=LIBPMEM_FILE
    )
    addr, length = b.function.args
    addr_int = b.cast("ptrtoint", addr, I64)
    first = b.and_(addr_int, ~(CACHE_LINE - 1) & ((1 << 64) - 1))
    end = b.add(addr_int, length)
    line_slot = b.alloca(8)
    b.store(first, line_slot)
    cond = b.new_block("cond")
    body = b.new_block("body")
    done = b.new_block("done")
    b.jmp(cond)

    b.position_at_end(cond)
    line = b.load(line_slot)
    more = b.icmp("ult", line, end)
    b.br(more, body, done)

    b.position_at_end(body)
    line = b.load(line_slot)
    line_ptr = b.cast("inttoptr", line, PTR)
    b.flush(line_ptr, "clwb")
    b.store(b.add(line, CACHE_LINE), line_slot)
    b.jmp(cond)

    b.position_at_end(done)
    b.ret()


def add_pmem_drain(mb: ModuleBuilder) -> None:
    """Order all previously issued flushes (sfence)."""
    b = mb.function("pmem_drain", [], source_file=LIBPMEM_FILE)
    b.fence("sfence")
    b.ret()


def add_pmem_persist(mb: ModuleBuilder) -> None:
    """Make a range durable: flush every line, then drain."""
    b = mb.function(
        "pmem_persist", [("addr", PTR), ("len", I64)], source_file=LIBPMEM_FILE
    )
    addr, length = b.function.args
    b.call("pmem_flush", [addr, length])
    b.call("pmem_drain", [])
    b.ret()


def add_pmem_memcpy_persist(mb: ModuleBuilder) -> None:
    """The paper's Listing 2 shape: memcpy, then persist the range."""
    b = mb.function(
        "pmem_memcpy_persist",
        [("dst", PTR), ("src", PTR), ("n", I64)],
        source_file=LIBPMEM_FILE,
    )
    dst, src, n = b.function.args
    b.call("memcpy", [dst, src, n])
    b.call("pmem_persist", [dst, n])
    b.ret()


def add_pmem_memcpy_nodrain(mb: ModuleBuilder) -> None:
    """Copy 8-byte words into PM with non-temporal stores, no fence.

    libpmem's ``pmem_memcpy_nodrain``: the data bypasses the cache (no
    flush needed) but the caller owns the ordering — a missing
    ``pmem_drain`` afterwards is a missing-fence bug.  ``n`` must be a
    multiple of 8 (the real routine falls back to plain stores for
    heads/tails; our callers copy aligned records).
    """
    b = mb.function(
        "pmem_memcpy_nodrain",
        [("dst", PTR), ("src", PTR), ("n", I64)],
        source_file=LIBPMEM_FILE,
    )
    dst, src, n = b.function.args
    i_slot = b.alloca(8)
    b.store(0, i_slot)
    cond = b.new_block("cond")
    body = b.new_block("body")
    done = b.new_block("done")
    b.jmp(cond)
    b.position_at_end(cond)
    i = b.load(i_slot)
    more = b.icmp("ult", i, n)
    b.br(more, body, done)
    b.position_at_end(body)
    i = b.load(i_slot)
    value = b.load(b.gep(src, i), I64)
    b.store(value, b.gep(dst, i), I64, nontemporal=True)
    b.store(b.add(i, 8), i_slot)
    b.jmp(cond)
    b.position_at_end(done)
    b.ret()


def add_pmem_memset_persist(mb: ModuleBuilder) -> None:
    b = mb.function(
        "pmem_memset_persist",
        [("p", PTR), ("byte", I64), ("n", I64)],
        source_file=LIBPMEM_FILE,
    )
    p, byte, n = b.function.args
    b.call("memset", [p, byte, n])
    b.call("pmem_persist", [p, n])
    b.ret()


def add_libpmem(mb: ModuleBuilder) -> None:
    """Add all of mini-libpmem (requires the stdlib to be added too)."""
    add_pmem_flush(mb)
    add_pmem_drain(mb)
    add_pmem_persist(mb)
    add_pmem_memcpy_persist(mb)
    add_pmem_memcpy_nodrain(mb)
    add_pmem_memset_persist(mb)
