"""Phase 1: the simplest possible fixes, all intraprocedural.

Every durability bug admits an intraprocedural fix (paper §3.3): a
missing flush is fixed by flushing right after the store, a missing
fence by fencing right after the flush, and a missing flush&fence by
both.  These are the provably-safe building blocks (Theorems 1–3);
later phases merge and hoist them but never need anything else.
"""

from __future__ import annotations

from typing import List

from ..detect.reports import BugKind, BugReport
from ..errors import FixError
from .fixes import (
    Fix,
    InsertFenceAfterFlush,
    InsertFenceAfterStore,
    InsertFlush,
    InsertFlushAndFence,
)
from .locate import Locator


def generate_intraprocedural_fixes(
    bugs: List[BugReport], locator: Locator
) -> List[Fix]:
    """One intraprocedural fix per bug report."""
    fixes: List[Fix] = []
    for bug in bugs:
        if bug.kind is BugKind.MISSING_FLUSH:
            store = locator.locate_store(bug.store)
            fixes.append(InsertFlush(bugs=[bug], store=store))
        elif bug.kind is BugKind.MISSING_FLUSH_FENCE:
            store = locator.locate_store(bug.store)
            fixes.append(InsertFlushAndFence(bugs=[bug], store=store))
        elif bug.kind is BugKind.MISSING_FENCE:
            if bug.flush is None:
                # A non-temporal store: no flush exists (none is
                # needed); the fence anchors to the store itself.
                store = locator.locate_store(bug.store)
                fixes.append(InsertFenceAfterStore(bugs=[bug], store=store))
            else:
                flush = locator.locate_flush(bug.flush)
                fixes.append(InsertFenceAfterFlush(bugs=[bug], flush=flush))
        else:  # pragma: no cover - exhaustive
            raise FixError(f"unknown bug kind {bug.kind}")
    return fixes
