#!/usr/bin/env python3
"""Porting Redis to persistent memory with Hippocrates (paper §6.3).

Reproduces the paper's flagship case study end-to-end:

1. start from the flush-free Redis (all flushes removed, fences kept);
2. trace it under pmemcheck;
3. let Hippocrates generate *all* durability mechanisms
   (RedisH-full), and again with the hoisting heuristic disabled
   (RedisH-intra);
4. run YCSB Load + A-F against both and the hand-tuned Redis-pm;
5. print the Fig. 4 comparison.

Run:  python examples/redis_port.py          (about a minute)
      python examples/redis_port.py --quick  (smaller sample)
"""

import sys

from repro.bench import REDIS_FULL, REDIS_INTRA, REDIS_PM, fig4_table, run_fig4


def main():
    quick = "--quick" in sys.argv
    records = 80 if quick else 250
    operations = 80 if quick else 250

    print(f"running YCSB with {records} records / {operations} ops per workload...")
    result = run_fig4(record_count=records, operation_count=operations)

    print()
    print(fig4_table(result))

    full_report = result.reports[REDIS_FULL]
    print()
    print("how RedisH-full was built:")
    print("  ", full_report.summary())
    print(
        "   hoisted fixes sit",
        sorted(full_report.hoist_depths),
        "function(s) above their PM modifications",
    )

    speedups = result.speedup_full_over_intra()
    ratios = result.full_vs_manual()
    assert all(v >= 0.95 for v in ratios.values()), "full should rival manual"
    assert all(s > 1.5 for s in speedups.values()), "full should beat intra"
    print(
        "\nconclusion: Hippocrates's automatically-placed durability "
        "mechanisms rival the hand-tuned port"
        f" (Load: {100 * (ratios['Load'] - 1):+.1f}%) and beat the"
        f" heuristic-less fixes by {min(speedups.values()):.1f}-"
        f"{max(speedups.values()):.1f}x"
    )


if __name__ == "__main__":
    main()
