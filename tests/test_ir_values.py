"""Unit tests for IR values: constants, arguments, globals."""

import pytest

from repro.ir import Argument, Constant, GlobalVariable, I8, I64, NULL, PTR


class TestConstant:
    def test_truncation_to_width(self):
        assert Constant(0x1FF, I8).value == 0xFF
        assert Constant(-1, I64).value == (1 << 64) - 1

    def test_equality_and_hash(self):
        assert Constant(5, I64) == Constant(5, I64)
        assert Constant(5, I64) != Constant(5, I8)
        assert hash(Constant(5, I64)) == hash(Constant(5, I64))

    def test_null_pointer(self):
        assert NULL.value == 0
        assert NULL.type is PTR

    def test_short(self):
        assert Constant(42, I64).short() == "42"


class TestArgument:
    def test_fields(self):
        arg = Argument("x", PTR, 3)
        assert arg.index == 3
        assert arg.short() == "%x"
        assert arg.type is PTR


class TestGlobalVariable:
    def test_valid(self):
        gv = GlobalVariable("table", 128, "pm")
        assert gv.space == "pm"
        assert gv.type.is_pointer  # referencing a global yields its address
        assert gv.short() == "@table"

    def test_bad_space(self):
        with pytest.raises(ValueError):
            GlobalVariable("g", 8, "heap")

    def test_bad_size(self):
        with pytest.raises(ValueError):
            GlobalVariable("g", 0)

    def test_initializer_too_large(self):
        with pytest.raises(ValueError):
            GlobalVariable("g", 4, "vol", b"12345")

    def test_initializer_ok(self):
        gv = GlobalVariable("g", 8, "vol", b"abc")
        assert gv.initializer == b"abc"
