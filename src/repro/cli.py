"""Command-line front-end: the build-server workflow, file to file.

Mirrors how the original tool is driven (WLLVM bitcode in, pmemcheck
log in, fixed bitcode out), but over this package's textual formats::

    python -m repro run    app.ir --entry main --args 1 2
    python -m repro detect app.ir --entry main --trace-out app.trace
    python -m repro fix    app.ir --trace app.trace -o app.fixed.ir
    python -m repro show   app.ir

``detect`` + ``fix`` compose exactly like the paper's Fig. 2: the trace
file produced by ``detect`` is the only coupling between the two steps,
so the fix step can run on a different build of the module (bug
localization falls back to function + source line).

Exit codes distinguish failure classes so build scripts can branch:

====  =======================================================
code  meaning
====  =======================================================
0     success
1     bugs found (``detect``) / some bugs quarantined (``fix``)
2     malformed module, I/O failure, or other error
3     malformed trace (:class:`TraceError`; strict mode)
4     a bug could not be located in the IR (:class:`LocateError`)
5     a fix could not be computed/applied (:class:`FixError`)
6     the fixed module failed validation (:class:`ValidationError`)
7     a resource budget ran out (:class:`BudgetExceeded`)
====  =======================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import Hippocrates
from .detect import check_trace
from .errors import (
    BudgetExceeded,
    FixError,
    LocateError,
    ReproError,
    TraceError,
    ValidationError,
)
from .interp import Interpreter, SimulatedCrash
from .ir import format_module, parse_module, verify_module
from .trace import dump_trace

#: exception class -> process exit code, most specific first (a
#: LocateError is a FixError; a FixError is a ReproError).
EXIT_CODES = (
    (TraceError, 3),
    (LocateError, 4),
    (ValidationError, 6),
    (FixError, 5),
    (BudgetExceeded, 7),
    (ReproError, 2),
    (OSError, 2),
)


def _load_module(path: str):
    with open(path) as handle:
        module = parse_module(handle.read())
    verify_module(module)
    return module


def _run_entry(module, entry: str, args: List[int]):
    """Execute an entry point; returns the finished interpreter."""
    interp = Interpreter(module)
    try:
        result = interp.call(entry, args)
        print(f"@{entry}({', '.join(map(str, args))}) -> {result.value}")
        print(f"steps={result.steps} cycles={result.cycles}")
        if interp.output:
            print("output:", " ".join(str(v) for v in interp.output))
    except SimulatedCrash:
        print("process crashed (crash_now)")
    interp.finish()
    return interp


def cmd_run(ns: argparse.Namespace) -> int:
    module = _load_module(ns.module)
    _run_entry(module, ns.entry, [int(a, 0) for a in ns.args])
    return 0


def cmd_show(ns: argparse.Namespace) -> int:
    module = _load_module(ns.module)
    print(format_module(module), end="")
    return 0


def cmd_detect(ns: argparse.Namespace) -> int:
    module = _load_module(ns.module)
    interp = _run_entry(module, ns.entry, [int(a, 0) for a in ns.args])
    trace = interp.machine.trace
    if ns.trace_out:
        with open(ns.trace_out, "w") as handle:
            handle.write(dump_trace(trace))
        print(f"trace ({len(trace)} events) written to {ns.trace_out}")
    detection = check_trace(trace)
    print(detection.summary())
    return 1 if detection.bugs else 0


def cmd_fix(ns: argparse.Namespace) -> int:
    module = _load_module(ns.module)
    with open(ns.trace) as handle:
        trace_text = handle.read()
    fixer = Hippocrates(
        module,
        trace_text,
        heuristic=ns.heuristic,
        keep_going=ns.keep_going,
        lenient=ns.lenient,
    )
    for warning in fixer.trace_warnings:
        print(f"warning: {warning}", file=sys.stderr)
    plan = fixer.compute_fixes()
    print(plan.describe())
    report = fixer.apply(plan)
    print(report.summary())
    for downgrade in report.downgrades:
        print(downgrade.describe(), file=sys.stderr)
    for quarantined in report.quarantined:
        print(quarantined.describe(), file=sys.stderr)
    output_path = ns.output or ns.module
    with open(output_path, "w") as handle:
        handle.write(format_module(module))
    print(f"fixed module written to {output_path}")
    return 1 if report.quarantined else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hippocrates (ASPLOS 2021 reproduction): detect and "
        "repair persistent-memory durability bugs in textual IR modules.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute an entry point")
    run.add_argument("module")
    run.add_argument("--entry", default="main")
    run.add_argument("--args", nargs="*", default=[])
    run.set_defaults(fn=cmd_run)

    show = sub.add_parser("show", help="print a module's textual IR")
    show.add_argument("module")
    show.set_defaults(fn=cmd_show)

    detect = sub.add_parser(
        "detect", help="run under the PM bug finder (exit 1 if bugs found)"
    )
    detect.add_argument("module")
    detect.add_argument("--entry", default="main")
    detect.add_argument("--args", nargs="*", default=[])
    detect.add_argument("--trace-out", help="write the pmemcheck-style log here")
    detect.set_defaults(fn=cmd_detect)

    fix = sub.add_parser("fix", help="repair a module from a trace file")
    fix.add_argument("module")
    fix.add_argument("--trace", required=True, help="pmemcheck-style log file")
    fix.add_argument("-o", "--output", help="output path (default: in place)")
    fix.add_argument(
        "--heuristic",
        choices=("full", "off"),
        default="full",
        help="hoisting heuristic (Trace-AA needs the live machine and is "
        "unavailable file-to-file)",
    )
    fix.add_argument(
        "--lenient",
        action="store_true",
        help="skip malformed trace lines (warn on stderr) instead of "
        "failing with exit code 3",
    )
    fix.add_argument(
        "--keep-going",
        action="store_true",
        help="quarantine bugs whose fix fails (summary on stderr, exit "
        "code 1) instead of aborting on the first error",
    )
    fix.set_defaults(fn=cmd_fix)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    ns = build_parser().parse_args(argv)
    try:
        return ns.fn(ns)
    except tuple(cls for cls, _ in EXIT_CODES) as exc:
        print(f"error: {exc}", file=sys.stderr)
        for cls, code in EXIT_CODES:
            if isinstance(exc, cls):
                return code
        return 2  # pragma: no cover - EXIT_CODES is exhaustive here


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
