"""The executable bug corpus: 23 reproduced durability bugs.

Mirrors the paper's §6.1 evaluation set:

- **11 PMDK issues** (447, 452, 458, 459, 460, 461, 585, 940, 942, 943,
  945), each a mini-PMDK build with the issue's persistence omission
  seeded plus the failing unit test as an IR ``test_<issue>`` function;
- **2 P-CLHT bugs** (one target module, both seeds);
- **10 memcached-pm bugs** (one target module, all seeds).

Each case records the *developer fix* (from the PMDK commit history
categories in Fig. 3) and the fix Hippocrates is expected to produce,
so the accuracy comparison (Fig. 3: 8/11 functionally identical, 3/11
equivalent-but-dev-more-portable) is regenerated rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..apps import (
    Memcached,
    PCLHT,
    build_pclht,
    build_pmdk_module,
    build_pmemcached,
)
from ..core.fixes import (
    Fix,
    HoistedFix,
    InsertFenceAfterFlush,
    InsertFenceAfterStore,
    InsertFlush,
    InsertFlushAndFence,
)
from ..interp.interpreter import Interpreter
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from ..ir.types import I64, PTR

#: fix-kind vocabulary shared by developer-fix metadata and the
#: classification of Hippocrates's plans
INTRAPROC_FLUSH = "intraproc-flush"
INTRAPROC_FENCE = "intraproc-fence"
INTRAPROC_FLUSH_FENCE = "intraproc-flush+fence"
INTERPROC_FLUSH = "interproc-flush"
INTERPROC_FLUSH_FENCE = "interproc-flush+fence"

#: Fig. 3 equivalence classes
IDENTICAL = "functionally identical"
EQUIVALENT_PORTABLE = "functionally equivalent; developer fix more portable"


def classify_fix(fix: Fix) -> str:
    """Map an applied fix object to the fix-kind vocabulary."""
    if isinstance(fix, HoistedFix):
        return INTERPROC_FLUSH_FENCE
    if isinstance(fix, InsertFlush):
        return INTRAPROC_FLUSH
    if isinstance(fix, InsertFlushAndFence):
        return INTRAPROC_FLUSH_FENCE
    if isinstance(fix, (InsertFenceAfterFlush, InsertFenceAfterStore)):
        return INTRAPROC_FENCE
    raise ValueError(f"unknown fix {fix!r}")


def compare_fix_kinds(hippocrates: str, developer: str) -> str:
    """The Fig. 3 qualitative comparison for one bug."""
    if hippocrates == developer:
        return IDENTICAL
    if hippocrates == INTRAPROC_FLUSH and developer == INTERPROC_FLUSH:
        # The single-cache-line case: the in-line clwb is functionally
        # correct; libpmem's pmem_flush additionally dispatches on the
        # CPU's available flush instruction at run time.
        return EQUIVALENT_PORTABLE
    return f"different ({hippocrates} vs {developer})"


@dataclass
class BugCase:
    """One reproducible durability bug (or seeded bug group)."""

    case_id: str
    system: str  # "PMDK" | "P-CLHT" | "memcached-pm"
    description: str
    build: Callable[[], Module]
    drive: Callable[[Interpreter], None]
    expected_reports: int
    developer_fix: Optional[str] = None  # None for undocumented bugs
    expected_hippocrates_fix: Optional[str] = None

    def __repr__(self) -> str:
        return f"<BugCase {self.case_id}: {self.description}>"


# ---------------------------------------------------------------------------
# PMDK unit tests (one module per issue, seeded mini-PMDK + IR test fn)
# ---------------------------------------------------------------------------


def _add_test_fixture(mb: ModuleBuilder) -> None:
    """Volatile test scaffolding shared by every PMDK unit test.

    ``prepare_input`` exercises memcpy/memset on volatile buffers
    (building the test's input data), exactly like PMDK's real test
    fixtures — and, incidentally, what makes those helpers' stores
    alias volatile memory in the whole-program analysis.
    """
    mb.global_("test_src", 256, "vol", bytes(range(256)))
    mb.global_("test_buf", 256, "vol")
    mb.global_("oid_tmp", 16, "vol")

    b = mb.function("prepare_input", [("n", I64)], source_file="test_fixture.c")
    (n,) = b.function.args
    src = mb.module.get_global("test_src")
    buf = mb.module.get_global("test_buf")
    b.call("memset", [buf, 0, n])
    b.call("memcpy", [buf, src, n])
    b.ret()


def _pmdk_case(
    issue: int,
    description: str,
    seeds: Tuple[str, ...],
    body: Callable[[ModuleBuilder], None],
    expected_reports: int,
    developer_fix: str,
    expected_hippocrates_fix: str,
) -> BugCase:
    test_name = f"test_{issue}"

    def build() -> Module:
        mb = build_pmdk_module(seeds=seeds, name=f"pmdk_{issue}")
        _add_test_fixture(mb)
        body(mb)
        return mb.module

    def drive(interp: Interpreter) -> None:
        interp.call(test_name)

    return BugCase(
        case_id=f"PMDK-{issue}",
        system="PMDK",
        description=description,
        build=build,
        drive=drive,
        expected_reports=expected_reports,
        developer_fix=developer_fix,
        expected_hippocrates_fix=expected_hippocrates_fix,
    )


def _test_header(mb: ModuleBuilder, issue: int):
    """Common test prologue: fixture data + a fresh pool."""
    b = mb.function(f"test_{issue}", [], source_file=f"test_{issue}.c")
    b.call("prepare_input", [64])
    buf = mb.module.get_global("test_buf")
    b.call("pool_create", [1 << 16, buf, 16])
    return b


def _body_447(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 447)
    b.call("checkpoint", [])
    b.ret()


def _body_452(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 452)
    b.call("pmalloc", [128], PTR)
    b.call("checkpoint", [])
    b.ret()


def _body_458(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 458)
    src = mb.module.get_global("test_src")
    b.call("obj_alloc_construct", [src, 96], PTR)
    b.call("checkpoint", [])
    b.ret()


def _body_459(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 459)
    src = mb.module.get_global("test_src")
    b.call("redo_log_append", [src, 64])
    b.call("checkpoint", [])
    b.ret()


def _body_460(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 460)
    oid_tmp = mb.module.get_global("oid_tmp")
    # A volatile OID temporary also goes through oid_write, so the
    # helper's stores alias volatile memory.
    b.call("oid_write", [oid_tmp, 1, 2])
    obj = b.call("pmalloc", [64], PTR)
    b.call("set_oid_persist", [obj, 7, 42])
    b.call("checkpoint", [])
    b.ret()


def _body_461(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 461)
    b.call("checkpoint", [])
    b.ret()


def _body_585(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 585)
    src = mb.module.get_global("test_src")
    obj = b.call("pmalloc", [128], PTR)
    b.call("memcpy", [obj, src, 64])  # API misuse: no persist
    b.call("checkpoint", [])
    b.ret()


def _body_940(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 940)
    obj = b.call("pmalloc", [64], PTR)
    b.call("set_flag", [obj, 7])  # API misuse: store never flushed
    b.call("pmem_drain", [])
    b.call("checkpoint", [])
    b.ret()


def _body_942(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 942)
    src = mb.module.get_global("test_src")
    obj = b.call("pmalloc", [128], PTR)
    b.call("memcpy", [obj, src, 64])  # API misuse: drained but unflushed
    b.call("pmem_drain", [])
    b.call("checkpoint", [])
    b.ret()


def _body_943(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 943)
    obj = b.call("pmalloc", [64], PTR)
    b.call("checksum_update", [obj, 123456])  # API misuse: unflushed
    b.call("pmem_drain", [])
    b.call("checkpoint", [])
    b.ret()


def _body_945(mb: ModuleBuilder) -> None:
    b = _test_header(mb, 945)
    src = mb.module.get_global("test_src")
    obj = b.call("pmalloc", [128], PTR)
    b.call("memcpy", [b.gep(obj, 16), src, 32])  # key field, no persist
    b.call("checkpoint", [])
    b.ret()


def pmdk_cases() -> List[BugCase]:
    """The 11 reproduced PMDK issues (Fig. 3's rows)."""
    return [
        _pmdk_case(
            447,
            "pool header layout-name memcpy never persisted",
            ("447",),
            _body_447,
            1,
            INTERPROC_FLUSH_FENCE,
            INTERPROC_FLUSH_FENCE,
        ),
        _pmdk_case(
            452,
            "allocator watermark store missing its flush",
            ("452",),
            _body_452,
            1,
            INTERPROC_FLUSH,
            INTRAPROC_FLUSH,
        ),
        _pmdk_case(
            458,
            "constructed object payload never persisted",
            ("458",),
            _body_458,
            1,
            INTERPROC_FLUSH_FENCE,
            INTERPROC_FLUSH_FENCE,
        ),
        _pmdk_case(
            459,
            "redo-log entry payload never persisted",
            ("459",),
            _body_459,
            1,
            INTERPROC_FLUSH_FENCE,
            INTERPROC_FLUSH_FENCE,
        ),
        _pmdk_case(
            460,
            "OID words written without a persist",
            ("460",),
            _body_460,
            2,
            INTERPROC_FLUSH_FENCE,
            INTERPROC_FLUSH_FENCE,
        ),
        _pmdk_case(
            461,
            "arena allocator metadata memset never persisted",
            ("461",),
            _body_461,
            1,
            INTERPROC_FLUSH_FENCE,
            INTERPROC_FLUSH_FENCE,
        ),
        _pmdk_case(
            585,
            "unit test memcpy to PM without pmem_persist",
            (),
            _body_585,
            1,
            INTERPROC_FLUSH_FENCE,
            INTERPROC_FLUSH_FENCE,
        ),
        _pmdk_case(
            940,
            "unit test flag store drained but never flushed",
            (),
            _body_940,
            1,
            INTERPROC_FLUSH,
            INTRAPROC_FLUSH,
        ),
        _pmdk_case(
            942,
            "unit test memcpy drained but never flushed",
            (),
            _body_942,
            1,
            INTERPROC_FLUSH_FENCE,
            INTERPROC_FLUSH_FENCE,
        ),
        _pmdk_case(
            943,
            "unit test checksum store drained but never flushed",
            (),
            _body_943,
            1,
            INTERPROC_FLUSH,
            INTRAPROC_FLUSH,
        ),
        _pmdk_case(
            945,
            "unit test key-field memcpy without pmem_persist",
            (),
            _body_945,
            1,
            INTERPROC_FLUSH_FENCE,
            INTERPROC_FLUSH_FENCE,
        ),
    ]


# ---------------------------------------------------------------------------
# P-CLHT and memcached-pm (one module each; multiple seeded bugs)
# ---------------------------------------------------------------------------


def _drive_pclht(interp: Interpreter) -> None:
    index = PCLHT(interp.module, interp)
    index.create(16)
    for key in range(1, 80):
        index.put(key, key * 100)
    index.put(5, 555)
    index.delete(7)
    for key in (1, 5, 50):
        index.get(key)


def _drive_memcached(interp: Interpreter) -> None:
    server = Memcached(interp.module, interp)
    server.init(32, 128)
    for i in range(60):
        server.set(f"key{i:04d}0".encode(), b"VALUEVALUE16BYTE")
    server.set(b"key00300", b"UPDATED-UPDATED!")
    server.get(b"key00300")
    server.delete(b"key00400")
    server.set(b"keyNEW00", b"NEWVALUE")


def pclht_case() -> BugCase:
    """RECIPE's P-CLHT with its 2 previously-undocumented bugs."""
    return BugCase(
        case_id="P-CLHT",
        system="P-CLHT",
        description="2 undocumented bugs: unflushed slot publish; "
        "unfenced chain-link clwb",
        build=build_pclht,
        drive=_drive_pclht,
        expected_reports=2,
    )


def memcached_case() -> BugCase:
    """memcached-pm with its 10 previously-undocumented bugs."""
    return BugCase(
        case_id="memcached-pm",
        system="memcached-pm",
        description="10 undocumented bugs across init/set/update/delete",
        build=build_pmemcached,
        drive=_drive_memcached,
        expected_reports=10,
    )


def all_cases() -> List[BugCase]:
    """All 13 cases covering the 23 reproduced bugs (11 + 2 + 10)."""
    return pmdk_cases() + [pclht_case(), memcached_case()]


def total_expected_bugs() -> int:
    """11 PMDK issues + 2 P-CLHT + 10 memcached-pm = 23."""
    return len(pmdk_cases()) + 2 + 10
