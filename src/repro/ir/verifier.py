"""Structural verification of IR modules.

The verifier enforces the invariants that the rest of the system relies
on; it is run by tests after every Hippocrates transformation to show
the tool never produces malformed IR ("do no harm" begins with "do not
break the build").
"""

from __future__ import annotations

from typing import List, Set

from ..errors import VerificationError
from .function import Function
from .instructions import Branch, Call, Instruction, Jump, Ret, Trap
from .module import Module
from .values import Argument, Constant, GlobalVariable


def verify_function(fn: Function) -> None:
    """Check a single function; raises :class:`VerificationError`."""
    if fn.is_declaration:
        return
    problems: List[str] = []

    block_set = set(fn.blocks)
    defined: Set[int] = {id(a) for a in fn.args}
    module = fn.parent

    for block in fn.blocks:
        if block.parent is not fn:
            problems.append(f"block {block.name} has wrong parent")
        if block.terminator is None:
            problems.append(f"block {block.name} lacks a terminator")
        for index, instr in enumerate(block):
            if instr.parent is not block:
                problems.append(f"#{instr.iid} has wrong parent block")
            if instr.is_terminator and index != len(block.instructions) - 1:
                problems.append(
                    f"terminator #{instr.iid} is not last in block {block.name}"
                )
            for succ in (
                instr.successors() if isinstance(instr, (Branch, Jump)) else []
            ):
                if succ not in block_set:
                    problems.append(
                        f"#{instr.iid} targets foreign block {succ.name!r}"
                    )
            if isinstance(instr, Ret):
                if instr.value is None and not fn.return_type.is_void:
                    problems.append(f"#{instr.iid}: ret without value in non-void fn")
                if instr.value is not None and instr.value.type != fn.return_type:
                    problems.append(
                        f"#{instr.iid}: ret type {instr.value.type} != "
                        f"{fn.return_type}"
                    )
            if isinstance(instr, Call) and module is not None:
                if module.has_function(instr.callee):
                    callee = module.get_function(instr.callee)
                    if len(callee.args) != len(instr.args):
                        problems.append(
                            f"#{instr.iid}: call @{instr.callee} arity "
                            f"{len(instr.args)} != {len(callee.args)}"
                        )
                    elif instr.type != callee.return_type:
                        problems.append(
                            f"#{instr.iid}: call @{instr.callee} type "
                            f"{instr.type} != {callee.return_type}"
                        )
            for op in instr.operands:
                if isinstance(op, Constant):
                    continue
                if isinstance(op, GlobalVariable):
                    if module is None or op.name not in module.globals:
                        problems.append(f"#{instr.iid} uses unknown global @{op.name}")
                    continue
                if isinstance(op, Argument):
                    if op.parent is not fn:
                        problems.append(
                            f"#{instr.iid} uses argument %{op.name} of another fn"
                        )
                    continue
                if isinstance(op, Instruction):
                    if op.function is not fn:
                        problems.append(
                            f"#{instr.iid} uses instruction of another function"
                        )
                    continue
                problems.append(f"#{instr.iid} has bad operand {op!r}")
            defined.add(id(instr))

    # Definition-before-use along textual order.  Because the builder
    # emits in program order and the apps use alloca/load/store for any
    # value that crosses control flow, a simple linear scan is the right
    # check (it is stricter than dominance for our IR subset).
    seen: Set[int] = {id(a) for a in fn.args}
    for block in fn.blocks:
        for instr in block:
            for op in instr.operands:
                if isinstance(op, Instruction) and id(op) not in seen:
                    problems.append(
                        f"#{instr.iid} uses %{op.name} (#{op.iid}) before definition"
                    )
            seen.add(id(instr))

    if problems:
        raise VerificationError(
            f"function @{fn.name}: " + "; ".join(problems[:10])
        )


def verify_module(module: Module) -> None:
    """Verify every function in the module."""
    for fn in module.functions.values():
        verify_function(fn)
