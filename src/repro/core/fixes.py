"""Fix representations.

Hippocrates computes a *fix plan* — a list of these objects — in three
phases (intraprocedural generation, reduction, hoisting) and only then
mutates the module.  Keeping the plan first-class makes the phases
testable in isolation and lets the report say exactly what was done.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.instructions import Call, Flush, Gep, Instruction, Store
from ..ir.values import Constant
from ..detect.reports import BugReport


def insert_covering_flushes(
    store: Store, kind: str = "clwb", into: Optional[List[Instruction]] = None
) -> List[Instruction]:
    """Insert flush(es) after a store, covering every cache line the
    store touches.

    A multi-byte store may straddle a line boundary; flushing only the
    pointer's line would leave the tail bytes dirty.  The first flush
    targets the store's pointer, the second (for stores wider than one
    byte) targets the last stored byte — on the common non-straddling
    path it coalesces for almost nothing.

    Returns the inserted instructions, in order.  When ``into`` is
    given, each instruction is also appended to it *as it is inserted*,
    so a caller's rollback journal sees partial insertions even if a
    later step here raises.
    """
    block = store.parent
    if block is None:
        raise ValueError(f"store #{store.iid} is detached")
    inserted: List[Instruction] = []

    def insert(after: Instruction, instr: Instruction) -> Instruction:
        instr.loc = store.loc
        block.insert_after(after, instr)
        inserted.append(instr)
        if into is not None:
            into.append(instr)
        return instr

    first = insert(store, Flush(store.pointer, kind))
    if store.size > 1:
        tail_ptr = insert(first, Gep(store.pointer, Constant(store.size - 1)))
        insert(tail_ptr, Flush(tail_ptr, kind))
    return inserted


@dataclass
class Fix:
    """Base class; ``bugs`` are the reports this fix discharges."""

    bugs: List[BugReport] = field(default_factory=list)
    #: instructions inserted when the fix was applied
    inserted: List[Instruction] = field(default_factory=list)

    @property
    def bug_ids(self) -> List[int]:
        return [b.report_id for b in self.bugs]

    def describe(self) -> str:  # pragma: no cover - overridden
        return "fix"


@dataclass
class InsertFlush(Fix):
    """Intraprocedural: insert ``flush(ptr)`` right after the store.

    Used for missing-flush bugs where an existing later fence already
    orders the inserted flush (Theorem 2).
    """

    store: Optional[Store] = None
    flush_kind: str = "clwb"

    def describe(self) -> str:
        assert self.store is not None
        return (
            f"intraprocedural flush({self.flush_kind}) after store "
            f"#{self.store.iid} at {self.store.loc}"
        )


@dataclass
class InsertFenceAfterFlush(Fix):
    """Intraprocedural: insert a fence right after an existing flush.

    Used for missing-fence bugs (Theorem 1).
    """

    flush: Optional[Flush] = None
    fence_kind: str = "sfence"

    def describe(self) -> str:
        assert self.flush is not None
        return (
            f"intraprocedural fence({self.fence_kind}) after flush "
            f"#{self.flush.iid} at {self.flush.loc}"
        )


@dataclass
class InsertFenceAfterStore(Fix):
    """Intraprocedural: insert a fence right after a non-temporal store.

    MOVNT stores need no flush (the data bypasses the cache), so the
    missing-fence fix anchors to the store itself (Theorem 1).
    """

    store: Optional[Store] = None
    fence_kind: str = "sfence"

    def describe(self) -> str:
        assert self.store is not None
        return (
            f"intraprocedural fence({self.fence_kind}) after non-temporal "
            f"store #{self.store.iid} at {self.store.loc}"
        )


@dataclass
class InsertFlushAndFence(Fix):
    """Intraprocedural: flush after the store, fence after the flush.

    Used for missing-flush&fence bugs (Theorem 3); this is the paper's
    Listing 1 shape.
    """

    store: Optional[Store] = None
    flush_kind: str = "clwb"
    fence_kind: str = "sfence"

    def describe(self) -> str:
        assert self.store is not None
        return (
            f"intraprocedural flush+fence after store #{self.store.iid} "
            f"at {self.store.loc}"
        )


@dataclass
class HoistedFix(Fix):
    """Interprocedural: persistent subprogram transformation (Theorem 4).

    The function called at ``call_site`` is cloned into a ``_PM``
    variant whose PM stores are all flushed; the call site is retargeted
    and a single fence is inserted after it.
    """

    call_site: Optional[Call] = None
    #: frames between the store's function and the clone root (the
    #: paper reports "1 function above", "2 functions above")
    hoist_depth: int = 1

    def describe(self) -> str:
        assert self.call_site is not None
        return (
            f"interprocedural fix: persistent subprogram of "
            f"@{self.call_site.callee} at call site #{self.call_site.iid} "
            f"({self.call_site.loc}), {self.hoist_depth} function(s) above "
            f"the PM modification"
        )


@dataclass
class FixPlan:
    """The full plan plus bookkeeping accumulated while applying it."""

    fixes: List[Fix] = field(default_factory=list)

    def intraprocedural(self) -> List[Fix]:
        return [f for f in self.fixes if not isinstance(f, HoistedFix)]

    def interprocedural(self) -> List[HoistedFix]:
        return [f for f in self.fixes if isinstance(f, HoistedFix)]

    def describe(self) -> str:
        lines = [f"{len(self.fixes)} fix(es):"]
        lines.extend("  " + fix.describe() for fix in self.fixes)
        return "\n".join(lines)
