"""Source-level debug information attached to IR instructions.

The paper's pipeline maps pmemcheck trace events (which carry source
file/line and a call stack) back to IR instructions.  To reproduce that
faithfully, every instruction in our IR carries a :class:`DebugLoc`.
Applications built with the :class:`~repro.ir.builder.IRBuilder` get a
fresh, monotonically increasing line number per emitted instruction
(emulating unoptimized, uninlined clang output, where the mapping is
one-to-one), unless the app sets explicit locations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class DebugLoc:
    """A source position: ``file:line``."""

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"

    @classmethod
    def parse(cls, text: str) -> "DebugLoc":
        """Parse ``file:line`` back into a :class:`DebugLoc`."""
        file, _, line = text.rpartition(":")
        if not file or not line.isdigit():
            raise ValueError(f"bad debug location: {text!r}")
        return cls(file, int(line))


#: Placeholder location for synthesized instructions (e.g., fixes that
#: Hippocrates inserts — they have no original source line).
SYNTHETIC = DebugLoc("<synthetic>", 0)


class LineAllocator:
    """Hands out increasing line numbers for one pseudo source file."""

    def __init__(self, file: str, start: int = 1):
        self.file = file
        self._next = start

    def next(self) -> DebugLoc:
        loc = DebugLoc(self.file, self._next)
        self._next += 1
        return loc

    def skip(self, count: int = 1) -> None:
        """Leave a gap in the line numbering (blank lines / comments)."""
        self._next += count
