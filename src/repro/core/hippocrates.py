"""The Hippocrates orchestrator: Steps 1-4 of the paper's Fig. 2.

Given a module and a PM trace (in-memory or pmemcheck text), it:

1. parses the bug-finder output (Step 1),
2. locates each bug's store/flush in the IR (Step 2),
3. computes fixes in three phases — intraprocedural generation, fix
   reduction, heuristic hoisting (Step 3),
4. applies the fixes to the module and verifies it (Step 4).

The result is a :class:`FixReport` with everything the paper's
evaluation tables need: fix counts and kinds, hoist depths, inserted-IR
size, and offline time/memory overhead.

The pipeline is *resilient* by construction:

- **Per-bug fault isolation** — each bug is located, planned, and
  applied independently; a bug whose step throws is quarantined (with
  its exception and stack) into :attr:`FixReport.quarantined` and every
  other bug still gets fixed (``keep_going=False`` restores fail-fast).
- **Transactional application** — each fix is applied under a
  :class:`~repro.core.transaction.FixTransaction` and verified; any
  mid-fix failure rolls the module back to its pre-fix state, so the
  module is never left half-mutated.
- **Degraded-mode heuristics** — if the whole-program analysis raises
  or exceeds its budget, the heuristic falls back ``full -> trace ->
  off`` (the paper's always-safe intraprocedural baseline), recording
  each :class:`HeuristicDowngrade` in the report instead of dying.
- **Lenient trace ingestion** — ``lenient=True`` skips malformed
  records of a crash-truncated pmemcheck log, surfacing per-line
  :class:`~repro.trace.pmemcheck.TraceWarning`\\ s in the report.

All analyses flow through a per-repair
:class:`~repro.analysis.manager.AnalysisManager`: the Andersen
solution, the call graph, the bug locator, and the PM classifications
are cached against the module's mutation epoch, invalidated precisely
by each fix's :class:`FixTransaction` (flush/fence fixes preserve the
whole-program analyses; clones and retargets drop them), and — when an
analysis cache directory is configured — shared across worker processes
through the content-addressed on-disk store.
"""

from __future__ import annotations

import time
import traceback
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..analysis.aliasing import (
    PMClassification,
    classify_full_aa,
    classify_trace_aa,
)
from ..analysis.diskcache import AnalysisDiskCache
from ..analysis.manager import (
    AnalysisManager,
    CALLGRAPH,
    LOCATOR,
    POINTS_TO,
    REVALIDATION_INDEX,
    classification_key,
)
from ..budget import Budget
from ..detect.durability import check_trace
from ..detect.reports import BugReport, DetectionResult
from ..errors import FixError
from ..interp.interpreter import Machine
from ..ir.instructions import Fence
from ..obs.observability import NULL_OBS, Observability
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..revalidate.witness import spec_for_fix
from ..trace.pmemcheck import TraceWarning, load_trace
from ..trace.trace import PMTrace
from .fixes import (
    Fix,
    FixPlan,
    HoistedFix,
    InsertFenceAfterFlush,
    InsertFenceAfterStore,
    InsertFlush,
    InsertFlushAndFence,
    insert_covering_flushes,
)
from .heuristic import choose_fix_location
from .intraprocedural import generate_intraprocedural_fixes
from .locate import Locator
from .reduction import reduce_fixes
from .subprogram import SubprogramTransformer
from .transaction import FixTransaction

#: heuristic modes: Full-AA, Trace-AA, or disabled (intraprocedural only
#: — the paper's RedisH-intra configuration)
HEURISTICS = ("full", "trace", "off")

#: degraded-mode fallback chain: each mode's next-cheaper alternative
#: ("off" is the paper's always-safe intraprocedural baseline).
DOWNGRADE_CHAIN = {"full": "trace", "trace": "off"}


@dataclass
class QuarantinedBug:
    """One bug (or malformed fix) the pipeline isolated instead of
    letting it abort the whole repair."""

    phase: str  # "locate" | "apply"
    error_type: str
    error: str
    traceback: str = ""
    bug: Optional[BugReport] = None

    def describe(self) -> str:
        what = self.bug.describe() if self.bug is not None else "unattributed fix"
        return f"[quarantined:{self.phase}] {what}: {self.error_type}: {self.error}"


@dataclass
class HeuristicDowngrade:
    """A recorded fallback to a cheaper (always-safe) heuristic mode."""

    from_mode: str
    to_mode: str
    reason: str
    #: set when the downgrade applied to a single bug's hoist decision
    #: (the rest of the pipeline kept the original mode)
    bug_id: Optional[int] = None

    def describe(self) -> str:
        scope = f"bug {self.bug_id}" if self.bug_id is not None else "pipeline"
        return f"[degraded:{scope}] {self.from_mode} -> {self.to_mode}: {self.reason}"


@dataclass
class FixReport:
    """What Hippocrates did, in evaluation-table form."""

    plan: FixPlan
    heuristic: str
    bugs_fixed: int = 0
    fixes_applied: int = 0
    intraprocedural_count: int = 0
    interprocedural_count: int = 0
    hoist_depths: List[int] = field(default_factory=list)
    inserted_instructions: int = 0
    functions_created: List[str] = field(default_factory=list)
    ir_size_before: int = 0
    ir_size_after: int = 0
    elapsed_seconds: float = 0.0
    peak_memory_bytes: int = 0
    #: the heuristic the pipeline actually finished with (equal to
    #: ``heuristic`` unless degraded mode kicked in)
    heuristic_effective: str = ""
    #: bugs isolated by per-bug fault tolerance (empty on a clean run)
    quarantined: List[QuarantinedBug] = field(default_factory=list)
    #: heuristic fallbacks taken instead of dying (empty on a clean run)
    downgrades: List[HeuristicDowngrade] = field(default_factory=list)
    #: malformed trace lines skipped by lenient ingestion
    trace_warnings: List[TraceWarning] = field(default_factory=list)

    @property
    def ir_growth_percent(self) -> float:
        if not self.ir_size_before:
            return 0.0
        return 100.0 * (self.ir_size_after - self.ir_size_before) / self.ir_size_before

    @property
    def bugs_quarantined(self) -> int:
        return len(self.quarantined)

    def as_record(self) -> dict:
        """The deterministic, JSON-serializable form of this report.

        The task-granular entry point for batch supervision: a worker
        subprocess ships this dict across its pipe, the supervisor's
        write-ahead journal persists it, and a resumed batch replays it
        — so it must contain only facts that an identical re-execution
        reproduces bit-for-bit.  Wall-clock time and peak memory are
        deliberately excluded (report them from the live object).
        """
        return {
            "heuristic": self.heuristic,
            "heuristic_effective": self.heuristic_effective or self.heuristic,
            "bugs_fixed": self.bugs_fixed,
            "fixes_applied": self.fixes_applied,
            "intraprocedural_count": self.intraprocedural_count,
            "interprocedural_count": self.interprocedural_count,
            "hoist_depths": list(self.hoist_depths),
            "inserted_instructions": self.inserted_instructions,
            "functions_created": sorted(self.functions_created),
            "ir_size_before": self.ir_size_before,
            "ir_size_after": self.ir_size_after,
            "quarantined": len(self.quarantined),
            "downgrades": len(self.downgrades),
            "trace_warnings": len(self.trace_warnings),
        }

    def summary(self) -> str:
        text = (
            f"fixed {self.bugs_fixed} bug(s) with {self.fixes_applied} fix(es) "
            f"({self.intraprocedural_count} intraprocedural, "
            f"{self.interprocedural_count} interprocedural); "
            f"+{self.inserted_instructions} IR instruction(s) "
            f"({self.ir_growth_percent:.3f}% growth), "
            f"{len(self.functions_created)} persistent clone(s); "
            f"heuristic={self.heuristic}"
        )
        if self.heuristic_effective and self.heuristic_effective != self.heuristic:
            text += f" (degraded to {self.heuristic_effective})"
        if self.quarantined:
            text += f"; {len(self.quarantined)} bug(s) quarantined"
        if self.trace_warnings:
            text += f"; {len(self.trace_warnings)} malformed trace line(s) skipped"
        return text


class Hippocrates:
    """The automated PM durability-bug fixer.

    :param module: the module to repair (mutated in place by
        :meth:`fix`).
    :param trace: the bug finder's trace — a :class:`PMTrace` or
        pmemcheck-format text.
    :param machine: the machine that produced the trace; required for
        the Trace-AA heuristic (its allocation registry attributes
        dynamic addresses to allocation sites).
    :param heuristic: ``"full"`` (Full-AA), ``"trace"`` (Trace-AA), or
        ``"off"`` (no hoisting; every fix stays intraprocedural).
    :param detection: pre-computed bug reports; found by running the
        pmemcheck-style checker on the trace when omitted.
    :param keep_going: isolate per-bug failures into
        :attr:`FixReport.quarantined` and keep repairing (the default);
        ``False`` restores fail-fast, though a failed fix is still
        rolled back before the exception propagates.
    :param lenient: skip malformed records when ``trace`` is text
        (collecting :class:`TraceWarning`\\ s) instead of raising.
    :param analysis_budget: optional :class:`~repro.budget.Budget`
        bounding the Andersen fixpoint; exceeding it triggers a
        heuristic downgrade rather than a failure.
    :param trace_source: the filename the textual trace came from;
        stamped into every :class:`TraceWarning` so multi-file batch
        logs stay attributable.
    :param analysis_cache_dir: directory of the content-addressed
        on-disk analysis cache; None disables cross-process sharing.
    :param obs: an :class:`~repro.obs.observability.Observability`
        facade; the pipeline phases run under named spans and the
        analysis manager mirrors its counters into it.  Observability
        never influences repair output — the default
        :data:`~repro.obs.observability.NULL_OBS` makes every
        instrumentation point a no-op.
    """

    def __init__(
        self,
        module: Module,
        trace: Union[PMTrace, str],
        machine: Optional[Machine] = None,
        heuristic: str = "full",
        detection: Optional[DetectionResult] = None,
        *,
        keep_going: bool = True,
        lenient: bool = False,
        analysis_budget: Optional[Budget] = None,
        trace_source: str = "",
        analysis_cache_dir: Optional[str] = None,
        obs: Optional[Observability] = None,
        revalidator=None,
    ):
        if heuristic not in HEURISTICS:
            raise FixError(f"unknown heuristic {heuristic!r}; use {HEURISTICS}")
        if heuristic == "trace" and machine is None:
            raise FixError("the Trace-AA heuristic requires the tracing machine")
        self.module = module
        self.keep_going = keep_going
        self.lenient = lenient
        self.trace_warnings: List[TraceWarning] = []
        self.quarantined: List[QuarantinedBug] = []
        self.downgrades: List[HeuristicDowngrade] = []
        if isinstance(trace, str):
            self.trace = load_trace(
                trace,
                strict=not lenient,
                warnings=self.trace_warnings,
                source=trace_source,
            )
        else:
            self.trace = trace
        self.machine = machine
        self.heuristic = heuristic
        self._effective_heuristic = heuristic
        self.obs = obs if obs is not None else NULL_OBS
        self.detection = detection if detection is not None else check_trace(self.trace)
        self.manager = AnalysisManager(
            module,
            budget=analysis_budget,
            disk_cache=(
                AnalysisDiskCache(analysis_cache_dir)
                if analysis_cache_dir
                else None
            ),
            metrics=self.obs.metrics if self.obs.enabled else None,
        )
        self.manager.register(LOCATOR, Locator)
        #: optional :class:`~repro.revalidate.engine.IncrementalRevalidator`
        #: — when present, committed fixes feed it their mutation
        #: witness and :meth:`revalidate` re-checks incrementally.
        self.revalidator = revalidator
        #: the last :class:`~repro.revalidate.engine.RevalidationOutcome`
        self.last_revalidation = None
        if revalidator is not None:
            # The baseline is a keyed analysis that survives *every*
            # commit (flush/fence and structural alike): the engine
            # itself decides per-revalidation whether the witness
            # supports synthesis, snapshot replay, or a full re-record.
            # The compute hook only fires when no baseline exists yet.
            self.manager.register(
                REVALIDATION_INDEX,
                lambda m: revalidator.rebuild_baseline(m),
            )
            if revalidator.baseline is not None:
                self.manager.seed(REVALIDATION_INDEX, revalidator.baseline)
        for mode in ("full", "trace"):
            self.manager.register(
                classification_key(mode),
                # Late-bound through the method so fault injectors that
                # wrap ``_classify`` stay on the path.
                lambda m, mode=mode: self._classify(mode),
                depends=(POINTS_TO,),
            )
        self._locator_override: Optional[Locator] = None
        self._classifier: Optional[PMClassification] = None
        #: classifier failures memoized per heuristic mode: a
        #: budget-exhausted Full-AA downgrades once and is never
        #: re-attempted by later lookups (satellite bugfix).
        self._mode_failures: Dict[str, BaseException] = {}

    # -- analysis plumbing --------------------------------------------------------

    @property
    def locator(self) -> Locator:
        """The bug locator (a cached analysis; tests may override it)."""
        if self._locator_override is not None:
            return self._locator_override
        return self.manager.get(LOCATOR)

    @locator.setter
    def locator(self, value: Locator) -> None:
        self._locator_override = value

    @property
    def analysis_budget(self) -> Optional[Budget]:
        """The Andersen budget, read by the manager at compute time
        (fault injection assigns it after construction)."""
        return self.manager.budget

    @analysis_budget.setter
    def analysis_budget(self, value: Optional[Budget]) -> None:
        self.manager.budget = value

    # -- resilience bookkeeping ---------------------------------------------------

    @property
    def effective_heuristic(self) -> str:
        """The heuristic mode after any degraded-mode fallbacks."""
        return self._effective_heuristic

    def _quarantine(self, bug: Optional[BugReport], phase: str, exc: BaseException) -> None:
        """Isolate one bug's failure, or re-raise when fail-fast."""
        if not self.keep_going:
            raise exc
        self.quarantined.append(
            QuarantinedBug(
                phase=phase,
                error_type=type(exc).__name__,
                error=str(exc),
                traceback=traceback.format_exc(),
                bug=bug,
            )
        )

    def _downgrade(self, exc: BaseException, bug_id: Optional[int] = None) -> str:
        """Step the effective heuristic down one level and record it."""
        mode = self._effective_heuristic
        next_mode = DOWNGRADE_CHAIN.get(mode, "off")
        if next_mode == "trace" and self.machine is None:
            next_mode = "off"  # Trace-AA is unavailable without the machine
        self.downgrades.append(
            HeuristicDowngrade(
                from_mode=mode,
                to_mode=next_mode,
                reason=f"{type(exc).__name__}: {exc}",
                bug_id=bug_id,
            )
        )
        if bug_id is None:
            self._effective_heuristic = next_mode
        return next_mode

    # -- classifier ---------------------------------------------------------------

    def _classify(self, mode: str) -> PMClassification:
        """Build the PM pointer classifier for one heuristic mode.

        The Andersen solution comes from the analysis manager (cached
        across modes and across fixes, and restorable from the on-disk
        cache), so a Trace-AA fallback after a failed Full-AA reuses
        rather than re-solves it.
        """
        points_to = self.manager.get(POINTS_TO)
        if mode == "trace":
            assert self.machine is not None
            return classify_trace_aa(self.module, self.trace, self.machine, points_to)
        return classify_full_aa(self.module, points_to)

    def classifier(self) -> Optional[PMClassification]:
        """The PM pointer classifier for the selected heuristic.

        If the analysis raises or exceeds its budget, the heuristic is
        downgraded (``full -> trace -> off``) and the next-cheaper
        classifier is attempted; None means degraded all the way to
        ``"off"`` (no hoisting — the always-safe baseline).

        Lookups go through the analysis manager, so repeated calls (one
        per hoisted fix) hit the cache, and a mode whose analysis
        already failed is never re-attempted: the memoized failure
        replays straight into the downgrade chain.
        """
        while self._classifier is None and self._effective_heuristic != "off":
            mode = self._effective_heuristic
            memoized = self._mode_failures.get(mode)
            if memoized is not None:
                self._downgrade(memoized)
                continue
            try:
                self._classifier = self.manager.get(classification_key(mode))
            except Exception as exc:
                self._mode_failures[mode] = exc
                self._downgrade(exc)
        return self._classifier

    # -- Step 3: fix computation -----------------------------------------------------

    def compute_fixes(self) -> FixPlan:
        """Phases 1-3: generate, reduce, hoist.

        Each bug is located and planned independently; one that cannot
        be resolved is quarantined (under ``keep_going``) while every
        other bug still gets its fix.
        """
        obs = self.obs
        obs.count("pipeline.bugs", len(self.detection.bugs))
        # One locator fetch, under its own span, on the instrumented
        # and plain paths alike — observability must not change how
        # often the analysis manager is consulted (its hit counters
        # would otherwise differ obs-on vs obs-off).  A failure is
        # deferred into the per-bug loop so every bug still lands in
        # its own quarantine entry.
        locator = None
        locator_exc: Optional[Exception] = None
        with obs.span("phase.locate"):
            try:
                locator = self.locator
            except Exception as exc:
                locator_exc = exc
        fixes: List[Fix] = []
        with obs.span("phase.generate") as span:
            for bug in self.detection.bugs:
                try:
                    if locator_exc is not None:
                        raise locator_exc
                    fixes.extend(
                        generate_intraprocedural_fixes([bug], locator)
                    )
                except Exception as exc:
                    self._quarantine(bug, "locate", exc)
            span.annotate(bugs=len(self.detection.bugs), fixes=len(fixes))
        with obs.span("phase.reduce", stage="pre-hoist") as span:
            fixes = reduce_fixes(fixes)
            span.annotate(fixes=len(fixes))
        if self._effective_heuristic != "off":
            with obs.span("phase.hoist") as span:
                fixes = self._hoist(fixes)
                span.annotate(fixes=len(fixes))
            with obs.span("phase.reduce", stage="post-hoist") as span:
                fixes = reduce_fixes(fixes)
                span.annotate(fixes=len(fixes))
        obs.count("pipeline.fixes_planned", len(fixes))
        return FixPlan(fixes=fixes)

    def _hoist(self, fixes: List[Fix]) -> List[Fix]:
        """Decide hoisting *per bug*: after reduction one flush fix may
        cover several bugs whose stores coincide but whose call paths —
        and therefore best fix locations — differ (the memcpy shared
        between the key copy and the value copy)."""
        classifier = self.classifier()
        if classifier is None:
            # Degraded to "off": every fix stays intraprocedural.
            return fixes
        result: List[Fix] = []
        hoisted_by_site: Dict[int, HoistedFix] = {}
        for fix in fixes:
            if not isinstance(fix, (InsertFlush, InsertFlushAndFence)):
                result.append(fix)
                continue
            assert fix.store is not None
            staying = []
            for bug in fix.bugs:
                try:
                    decision = choose_fix_location(
                        bug, fix.store, self.locator, classifier
                    )
                except Exception as exc:
                    # The heuristic is an optimization; its failure
                    # falls back to the bug's intraprocedural fix.
                    self._downgrade(exc, bug_id=bug.report_id)
                    staying.append(bug)
                    continue
                if not decision.hoist:
                    staying.append(bug)
                    continue
                call = decision.chosen.instr
                existing = hoisted_by_site.get(call.iid)
                if existing is not None:
                    existing.bugs.append(bug)
                    continue
                hoisted = HoistedFix(
                    bugs=[bug],
                    call_site=call,  # type: ignore[arg-type]
                    hoist_depth=decision.hoist_depth,
                )
                hoisted_by_site[call.iid] = hoisted
                result.append(hoisted)
            if staying:
                fix.bugs = staying
                result.append(fix)
        return result

    # -- Step 4: application ----------------------------------------------------------

    def _make_transformer(self) -> SubprogramTransformer:
        """Seam for the subprogram transformer (also a fault-injection
        point for the resilience harness)."""
        classifier = self.classifier()
        if classifier is None:
            raise FixError(
                "cannot apply an interprocedural fix: the heuristic was "
                "degraded to 'off' and no classifier is available"
            )
        return SubprogramTransformer(
            self.module, classifier, callgraph=self.manager.get(CALLGRAPH)
        )

    def _apply_one(
        self,
        fix: Fix,
        transformer: Optional[SubprogramTransformer],
        txn: FixTransaction,
    ) -> Optional[SubprogramTransformer]:
        """Apply a single fix, journaling every mutation into ``txn``.

        Returns the (possibly just-created) transformer.  The report is
        only updated on success, by the caller.
        """
        if isinstance(fix, HoistedFix):
            if transformer is None:
                transformer = self._make_transformer()
            assert fix.call_site is not None
            txn.track_attr(fix.call_site, "callee")
            txn.track_transformer(transformer)
            if fix.call_site.function is not None:
                txn.touch(fix.call_site.function.name)
            created_mark = len(transformer.created)
            orig_callee = fix.call_site.callee
            clone_name, fence = transformer.transform_call_site(fix.call_site)
            for name in transformer.created[created_mark:]:
                txn.touch(name)
            if clone_name != orig_callee or fence is not None:
                # The structural witness: what the retarget + clone tree
                # + fence did, as plain data — None (degraded) when any
                # clone's insertions could not be described, which makes
                # revalidation fall back to a full re-record.
                txn.anchor_structural(
                    transformer.structural_spec(
                        fix.call_site, orig_callee, fence
                    )
                )
            else:
                # A re-hit of an already-transformed, already-fenced
                # site mutates nothing (transform_call_site is
                # idempotent): the commit is structural in name only,
                # so keep the cached analyses and the batch witness.
                txn.structural = False
        elif isinstance(fix, InsertFlush):
            assert fix.store is not None
            txn.track_fix(fix)
            if fix.store.function is not None:
                txn.touch(fix.store.function.name)
            insert_covering_flushes(fix.store, fix.flush_kind, into=fix.inserted)
            txn.anchor(fix.store.iid, spec_for_fix(fix.store, fix.inserted))
        elif isinstance(fix, InsertFlushAndFence):
            assert fix.store is not None
            txn.track_fix(fix)
            if fix.store.function is not None:
                txn.touch(fix.store.function.name)
            insert_covering_flushes(fix.store, fix.flush_kind, into=fix.inserted)
            fence = Fence(fix.fence_kind)
            fence.loc = fix.store.loc
            last_flush = fix.inserted[-1]
            last_flush.parent.insert_after(last_flush, fence)
            fix.inserted.append(fence)
            txn.anchor(fix.store.iid, spec_for_fix(fix.store, fix.inserted))
        elif isinstance(fix, InsertFenceAfterFlush):
            assert fix.flush is not None
            txn.track_fix(fix)
            if fix.flush.function is not None:
                txn.touch(fix.flush.function.name)
            fence = Fence(fix.fence_kind)
            fence.loc = fix.flush.loc
            fix.flush.parent.insert_after(fix.flush, fence)
            fix.inserted.append(fence)
            txn.anchor(fix.flush.iid, spec_for_fix(fix.flush, fix.inserted))
        elif isinstance(fix, InsertFenceAfterStore):
            assert fix.store is not None
            txn.track_fix(fix)
            if fix.store.function is not None:
                txn.touch(fix.store.function.name)
            fence = Fence(fix.fence_kind)
            fence.loc = fix.store.loc
            fix.store.parent.insert_after(fix.store, fence)
            fix.inserted.append(fence)
            txn.anchor(fix.store.iid, spec_for_fix(fix.store, fix.inserted))
        else:
            raise FixError(f"cannot apply fix {fix!r}")
        return transformer

    def apply(self, plan: FixPlan) -> FixReport:
        """Mutate the module according to the plan and verify it.

        Each fix is applied transactionally: its mutations are
        journaled, the functions it touched are re-verified (the scoped
        fast path — committing a fix only invalidates the verified
        state of those functions, so untouched ones are never
        re-checked), and any failure rolls the module back to the state
        before that fix — then the fix's bugs are quarantined
        (``keep_going``) or the error propagates with the module still
        structurally intact.  A final whole-module verification guards
        the fast path itself.
        """
        report = FixReport(plan=plan, heuristic=self.heuristic)
        report.ir_size_before = self.module.instruction_count()
        obs = self.obs

        transformer: Optional[SubprogramTransformer] = None
        applied: List[Fix] = []
        with obs.span("phase.apply", fixes=len(plan.fixes)):
            for fix in plan.fixes:
                txn = FixTransaction(self.module, manager=self.manager)
                try:
                    transformer = self._apply_one(fix, transformer, txn)
                    self.manager.verify_scope(txn.touched_functions)
                except Exception as exc:
                    try:
                        txn.rollback()
                    except Exception as rollback_exc:
                        # Double failure: the rollback itself broke.
                        # Chain the rollback error onto the original
                        # exception so the root cause stays visible, and
                        # never quarantine — the module's integrity is
                        # unknown.
                        raise rollback_exc from exc
                    obs.count("pipeline.fixes_rolled_back")
                    if not self.keep_going:
                        raise
                    bugs = fix.bugs or [None]  # type: ignore[list-item]
                    for bug in bugs:
                        self._quarantine(bug, "apply", exc)
                    continue
                txn.commit()
                if self.revalidator is not None:
                    self.revalidator.note_commit(
                        txn.anchor_iids,
                        txn.structural,
                        txn.insertions,
                        txn.structural_specs,
                    )
                applied.append(fix)
                if isinstance(fix, HoistedFix):
                    report.interprocedural_count += 1
                    report.hoist_depths.append(fix.hoist_depth)
                else:
                    report.intraprocedural_count += 1

        if transformer is not None:
            report.functions_created = list(transformer.created)

        report.fixes_applied = len(applied)
        report.bugs_fixed = len(
            {bug.report_id for fix in applied for bug in fix.bugs}
        )
        report.ir_size_after = self.module.instruction_count()
        # Total new IR: flush/fence insertions plus the cloned function
        # bodies (the paper's "+105 new lines of LLVM IR" counts both).
        report.inserted_instructions = report.ir_size_after - report.ir_size_before
        report.heuristic_effective = self._effective_heuristic
        report.quarantined = list(self.quarantined)
        report.downgrades = list(self.downgrades)
        report.trace_warnings = list(self.trace_warnings)
        obs.count("pipeline.fixes_applied", len(applied))
        obs.count("pipeline.bugs_quarantined", len(self.quarantined))
        with obs.span("phase.verify"):
            verify_module(self.module)
        return report

    def revalidate(self):
        """Re-check the repaired module through the incremental engine.

        Consults the ``revalidation_index`` analysis first: commits of
        every kind preserve the recorded baseline across epochs (the
        lookup only re-records when no baseline exists at all), and the
        engine picks the cheapest sound tier against it — trace
        synthesis for witnessed flush/fence *and* structural commits,
        snapshot replay, or a full re-record.  Returns the
        :class:`~repro.revalidate.engine.RevalidationOutcome`, also
        stored as :attr:`last_revalidation`.
        """
        if self.revalidator is None:
            raise FixError("no revalidator attached to this pipeline")
        with self.obs.span("phase.revalidate"):
            baseline = self.manager.get(REVALIDATION_INDEX)
            outcome = self.revalidator.revalidate(self.module, baseline)
        self.last_revalidation = outcome
        return outcome

    # -- one-shot ------------------------------------------------------------------------

    def fix(self, measure_overhead: bool = False) -> FixReport:
        """Compute and apply all fixes; optionally measure time/memory.

        The measurement is the paper's Fig. 5 "offline overhead": wall
        time and peak memory of the whole compute+apply pipeline.
        ``tracemalloc`` is stopped even when a phase raises, so a failed
        repair never leaks tracing overhead into the caller's process.
        """
        if measure_overhead:
            tracemalloc.start()
        try:
            start = time.perf_counter()
            plan = self.compute_fixes()
            report = self.apply(plan)
            report.elapsed_seconds = time.perf_counter() - start
            if measure_overhead:
                _, peak = tracemalloc.get_traced_memory()
                report.peak_memory_bytes = peak
            return report
        finally:
            if measure_overhead:
                tracemalloc.stop()


def fix_module(
    module: Module,
    trace: Union[PMTrace, str],
    machine: Optional[Machine] = None,
    heuristic: str = "full",
    **options,
) -> FixReport:
    """Convenience: run the full Hippocrates pipeline on a module.

    Keyword ``options`` (``keep_going``, ``lenient``,
    ``analysis_budget``, ``analysis_cache_dir``) are forwarded to
    :class:`Hippocrates`.
    """
    return Hippocrates(module, trace, machine, heuristic, **options).fix()
