"""IR execution: interpreter, machine state, cost model, intrinsics."""

from .costs import CostCounter, CostModel
from .frame import Frame
from .interpreter import Allocation, ExecutionResult, Interpreter, Machine, run_module
from .intrinsics import SimulatedCrash, intrinsic_names, is_intrinsic

__all__ = [
    "Allocation",
    "CostCounter",
    "CostModel",
    "ExecutionResult",
    "Frame",
    "Interpreter",
    "intrinsic_names",
    "is_intrinsic",
    "Machine",
    "run_module",
    "SimulatedCrash",
]
