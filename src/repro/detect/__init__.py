"""PM bug-finding tools (the front half of the paper's pipeline).

Two detectors are provided, both producing the same report format:

- :func:`check_trace` — pmemcheck-style: checks *every* PM store at
  every durability boundary, no annotations needed.
- :func:`repro.detect.pmtest.check_assertions` — PMTest-style: checks
  developer-written ``pmtest_assert_persisted`` assertions only.

:func:`pmemcheck_run` is the convenience harness that executes a
workload under tracing and checks the result — the equivalent of
``valgrind --tool=pmemcheck ./app``.
"""

from typing import Callable, Optional, Tuple

from ..interp import make_interpreter
from ..interp.costs import CostModel
from ..interp.interpreter import Interpreter, Machine
from ..ir.module import Module
from ..memory.pool import MachinePool
from ..trace.trace import PMTrace
from .durability import DurabilityChecker, check_trace, check_trace_pmtest
from .pmtest import assertion_labels, check_assertions
from .reports import BugKind, BugReport, DetectionResult, PerfReport

#: A workload driver: receives a live interpreter and exercises the
#: module (host-side setup, entry-point calls, ...).
Driver = Callable[[Interpreter], None]


def pmemcheck_run(
    module: Module,
    driver: Driver,
    cost_model: Optional[CostModel] = None,
    fuel: int = 50_000_000,
    metrics=None,
    engine: Optional[str] = None,
    pool: Optional[MachinePool] = None,
) -> Tuple[DetectionResult, PMTrace, Interpreter]:
    """Execute ``driver`` against ``module`` under pmemcheck-style tracing.

    Returns the detection result, the trace (which Hippocrates
    consumes), and the finished interpreter (for inspecting machine
    state or observable output).  ``metrics`` (an optional
    :class:`~repro.obs.metrics.MetricsRegistry`) receives the
    interpreter's step/flush/fence/store totals.  ``engine`` picks the
    execution engine (default: the process-wide default, normally
    ``"flat"``); both engines produce byte-identical traces.  ``pool``
    (an optional :class:`~repro.memory.pool.MachinePool`) reuses pooled
    machine buffers for the run; the caller releases the returned
    interpreter's machine back into the pool when done with it.
    """
    machine = None
    if pool is not None:
        space, image = pool.acquire()
        machine = Machine(space=space, image=image)
    interp = make_interpreter(
        module,
        engine=engine,
        machine=machine,
        cost_model=cost_model,
        fuel=fuel,
        metrics=metrics,
    )
    driver(interp)
    trace = interp.finish()
    return check_trace(trace), trace, interp


__all__ = [
    "assertion_labels",
    "BugKind",
    "BugReport",
    "check_assertions",
    "check_trace",
    "check_trace_pmtest",
    "DetectionResult",
    "Driver",
    "DurabilityChecker",
    "PerfReport",
    "pmemcheck_run",
]
