"""Textual serialization of IR modules.

The textual form is both a debugging aid and a storage format: it
round-trips through :mod:`repro.ir.parser`.  The syntax is a simplified
LLVM dialect::

    module "kvstore"

    global @table 4096 pm

    func @put(%key: ptr, %len: i64) -> i64 {
    entry:
      %t0 = load i64, %key                  !kv.c:10
      store i64 %t0, %key                   !kv.c:11
      flush clwb, %key                      !kv.c:12
      fence sfence                          !kv.c:13
      %t1 = call i64 @hash(%key, %len)      !kv.c:14
      ret i64 %t1                           !kv.c:15
    }
"""

from __future__ import annotations

from typing import List

from ..errors import IRError
from .debuginfo import SYNTHETIC
from .function import Function
from .instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Fence,
    Flush,
    Gep,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    Trap,
)
from .module import Module
from .values import Argument, Constant, GlobalVariable, Value


def format_value(value: Value) -> str:
    """Render an operand reference (``%x``, ``@g``, or a literal)."""
    if isinstance(value, Constant):
        return str(value.value)
    if isinstance(value, GlobalVariable):
        return f"@{value.name}"
    if isinstance(value, (Argument, Instruction)):
        return f"%{value.name}"
    raise IRError(f"cannot format value {value!r}")


def _typed(value: Value) -> str:
    return f"{value.type} {format_value(value)}"


def format_instruction(instr: Instruction) -> str:
    """Render one instruction (without its debug-location suffix)."""
    if isinstance(instr, Alloca):
        body = f"alloca {instr.size}"
    elif isinstance(instr, Load):
        body = f"load {instr.type}, {format_value(instr.pointer)}"
    elif isinstance(instr, Store):
        mnemonic = "store.nt" if instr.nontemporal else "store"
        body = f"{mnemonic} {_typed(instr.value)}, {format_value(instr.pointer)}"
    elif isinstance(instr, Gep):
        body = f"gep {format_value(instr.base)}, {_typed(instr.offset)}"
    elif isinstance(instr, BinOp):
        lhs, rhs = instr.operands
        body = f"{instr.op} {instr.type} {format_value(lhs)}, {format_value(rhs)}"
    elif isinstance(instr, ICmp):
        lhs, rhs = instr.operands
        body = (
            f"icmp {instr.pred} {lhs.type} {format_value(lhs)}, {format_value(rhs)}"
        )
    elif isinstance(instr, Select):
        cond, a, b = instr.operands
        body = (
            f"select {format_value(cond)}, {a.type} "
            f"{format_value(a)}, {format_value(b)}"
        )
    elif isinstance(instr, Cast):
        body = f"cast {instr.kind} {_typed(instr.operands[0])} to {instr.type}"
    elif isinstance(instr, Branch):
        body = (
            f"br {format_value(instr.cond)}, "
            f"%{instr.then_block.name}, %{instr.else_block.name}"
        )
    elif isinstance(instr, Jump):
        body = f"jmp %{instr.target.name}"
    elif isinstance(instr, Ret):
        body = "ret" if instr.value is None else f"ret {_typed(instr.value)}"
    elif isinstance(instr, Trap):
        body = "trap"
    elif isinstance(instr, Call):
        args = ", ".join(_typed(a) for a in instr.args)
        body = f"call {instr.type} @{instr.callee}({args})"
    elif isinstance(instr, Flush):
        body = f"flush {instr.kind}, {format_value(instr.pointer)}"
    elif isinstance(instr, Fence):
        body = f"fence {instr.kind}"
    else:
        raise IRError(f"cannot print instruction {instr!r}")

    if not instr.type.is_void:
        body = f"%{instr.name} = {body}"
    if instr.loc is not SYNTHETIC and instr.loc.line:
        body = f"{body}  !{instr.loc}"
    return body


def format_function(fn: Function) -> str:
    params = ", ".join(f"%{a.name}: {a.type}" for a in fn.args)
    header = f"func @{fn.name}({params}) -> {fn.return_type}"
    if fn.is_declaration:
        return header
    lines: List[str] = [header + " {"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for instr in block:
            lines.append(f"  {format_instruction(instr)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    """Render a whole module as text."""
    parts: List[str] = [f'module "{module.name}"', ""]
    for gv in module.globals.values():
        init = f" init {gv.initializer.hex()}" if gv.initializer else ""
        parts.append(f"global @{gv.name} {gv.size} {gv.space}{init}")
    if module.globals:
        parts.append("")
    for name in sorted(module.functions):
        parts.append(format_function(module.functions[name]))
        parts.append("")
    return "\n".join(parts)
