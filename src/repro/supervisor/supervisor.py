"""The batch-repair supervisor: process supervision over the pipeline.

PR 1 made a single repair resilient *inside* the process (quarantine,
transactions, budgets).  This layer assumes the process itself is the
failure domain — a worker can hang in the Andersen fixpoint, die
silently, or be OOM-killed — and keeps the *batch* correct anyway:

- **process-per-task workers** (``python -m repro.supervisor.worker``)
  with heartbeat lines, so silent death is detected by silence, not
  only by ``waitpid``;
- a **watchdog** that SIGKILLs a worker whose heartbeats stop or whose
  task exceeds its wall-time budget, and requeues the task;
- **bounded retries** with exponential backoff and deterministic
  jitter (seeded from the task id + attempt, so schedules are
  reproducible), then **task quarantine** — one pathological task
  never stalls or starves the rest of the batch;
- **write-ahead journaling** of every transition through
  :class:`~repro.supervisor.journal.CheckpointJournal` — a hard kill of
  the *supervisor* at any checkpoint boundary is recoverable with
  ``resume=True``, which replays completed tasks from the journal and
  produces a byte-identical aggregate report;
- clean **SIGINT/SIGTERM draining**: stop dispatching, let in-flight
  tasks finish (bounded by a grace period), journal the interruption,
  and return a report that a later ``resume`` completes;
- **graceful degradation**: when subprocesses are unavailable (or
  ``mode="inprocess"``), tasks run serially in-process under the same
  journal, the same retry/quarantine ladder, and a thread-based
  watchdog — identical semantics, smaller failure domain.
"""

from __future__ import annotations

import heapq
import json
import os
import signal
import subprocess
import sys
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs.observability import NULL_OBS, Observability
from .journal import CheckpointJournal, RecoveredJournal
from .report import DONE, QUARANTINED, BatchReport, TaskOutcome
from .tasks import RepairTask, TaskResult, execute_task

#: the analysis-stats keys a batch report aggregates, and the metrics
#: counters (``analysis.<key>``) a worker's METRICS snapshot carries
#: them under
ANALYSIS_STAT_KEYS = (
    "hits",
    "misses",
    "invalidations",
    "failures_replayed",
    "disk_hits",
    "disk_misses",
)

#: execution modes
MODES = ("auto", "subprocess", "inprocess")


class SupervisorError(ReproError):
    """The supervisor was misconfigured or its journal is inconsistent."""


class SupervisorKilled(BaseException):
    """Simulated SIGKILL of the supervisor (fault injection only).

    A :class:`BaseException` so no ``except Exception`` in the dispatch
    loop can swallow it — like the real signal, nothing gets to clean
    up, finalize the journal, or write a report.
    """


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunable supervision policy (all times in seconds)."""

    mode: str = "auto"
    jobs: int = 2
    #: watchdog: max wall time for one task attempt
    task_timeout: float = 60.0
    #: watchdog: max silence between worker heartbeats
    heartbeat_timeout: float = 5.0
    #: how often workers emit heartbeats
    heartbeat_interval: float = 0.2
    #: retries after the first attempt (attempts = max_retries + 1)
    max_retries: int = 2
    #: exponential backoff base delay (doubled per retry) + cap
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: SIGINT/SIGTERM drain: how long in-flight tasks may finish
    drain_grace: float = 30.0
    heuristic: str = "full"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise SupervisorError(f"unknown mode {self.mode!r}; use {MODES}")
        if self.jobs < 1:
            raise SupervisorError("jobs must be >= 1")


def backoff_delay(config: SupervisorConfig, task_id: str, attempt: int) -> float:
    """Exponential backoff with deterministic jitter.

    The jitter is seeded from (task id, attempt) via CRC-32, so a rerun
    of the same batch produces the same retry schedule — reproducibility
    extends to the supervisor's timing decisions.
    """
    base = min(config.backoff_cap, config.backoff_base * (2 ** (attempt - 1)))
    seed = zlib.crc32(f"{task_id}#{attempt}".encode("utf-8")) & 0xFFFFFFFF
    jitter = (seed % 1000) / 2000.0  # 0.0 .. 0.4995
    return min(config.backoff_cap, base * (1.0 + jitter))


# ---------------------------------------------------------------------------
# worker handles (one in-flight task attempt)
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Common view the dispatch loop has of an in-flight attempt."""

    #: False for workers that cannot emit heartbeats (in-process mode);
    #: the watchdog then relies on the task timeout alone
    heartbeats = True

    def __init__(self, task: RepairTask, index: int, attempt: int):
        self.task = task
        self.index = index  # 1-based submission index (fault targeting)
        self.attempt = attempt
        self.started = time.monotonic()
        self.last_heartbeat = self.started
        self.result_record: Optional[Dict[str, Any]] = None
        self.outcome_obj = None  # rich CaseOutcome (in-process only)
        self.stats_record: Optional[Dict[str, Any]] = None  # volatile analysis stats
        self.metrics_record: Optional[Dict[str, Any]] = None  # METRICS snapshot
        self.fail_info: Optional[Dict[str, Any]] = None
        self.silent_death = False

    def finished(self) -> bool:
        raise NotImplementedError

    def kill(self) -> None:
        raise NotImplementedError


class _SubprocessWorker(_WorkerHandle):
    """A worker subprocess plus its stdout/stderr reader threads."""

    def __init__(self, task, index, attempt, config, fault_env: str,
                 obs: Observability = NULL_OBS):
        super().__init__(task, index, attempt)
        self._obs = obs
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_WORKER_HEARTBEAT"] = str(config.heartbeat_interval)
        if obs.enabled:
            env["REPRO_WORKER_OBS"] = "1"
        else:
            env.pop("REPRO_WORKER_OBS", None)
        if fault_env:
            env["REPRO_WORKER_FAULT"] = fault_env
        else:
            env.pop("REPRO_WORKER_FAULT", None)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.supervisor.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        self.stderr_tail: List[str] = []
        self._lock = threading.Lock()
        try:
            self.proc.stdin.write(json.dumps(task.to_spec()))
            self.proc.stdin.close()
        except OSError:
            pass  # the worker died before reading its spec; settle() classifies it
        self._stdout_thread = threading.Thread(target=self._read_stdout, daemon=True)
        self._stdout_thread.start()
        threading.Thread(target=self._read_stderr, daemon=True).start()

    def _read_stdout(self) -> None:
        for line in self.proc.stdout:
            line = line.rstrip("\n")
            with self._lock:
                if line.startswith("HB "):
                    self.last_heartbeat = time.monotonic()
                    self._obs.event(
                        "supervisor.heartbeat",
                        task=self.task.task_id,
                        attempt=self.attempt,
                    )
                elif line.startswith("METRICS "):
                    try:
                        self._ingest_metrics(json.loads(line[len("METRICS "):]))
                    except ValueError:
                        pass  # observability only; never fails the task
                elif line.startswith("OBS "):
                    try:
                        self._forward_obs(json.loads(line[len("OBS "):]))
                    except ValueError:
                        pass  # observability only; never fails the task
                elif line.startswith("RESULT "):
                    try:
                        self.result_record = json.loads(line[len("RESULT "):])
                    except ValueError:
                        self.fail_info = {
                            "error_type": "ProtocolError",
                            "error": "unparseable RESULT line",
                        }
                elif line.startswith("FAIL "):
                    try:
                        self.fail_info = json.loads(line[len("FAIL "):])
                    except ValueError:
                        self.fail_info = {
                            "error_type": "ProtocolError",
                            "error": "unparseable FAIL line",
                        }
        self.proc.stdout.close()

    def _ingest_metrics(self, snapshot: Any) -> None:
        """Keep the worker's METRICS snapshot and derive from it the
        analysis-stats dict the batch report aggregates (the typed
        replacement for the old free-form STATS line)."""
        if not isinstance(snapshot, dict):
            return
        self.metrics_record = snapshot
        counters = snapshot.get("counters") or {}
        if isinstance(counters, dict):
            self.stats_record = {
                key: int(counters.get(f"analysis.{key}", 0) or 0)
                for key in ANALYSIS_STAT_KEYS
            }

    def _forward_obs(self, record: Any) -> None:
        """Re-emit a worker's span/event record into the batch sink,
        stamped with which task attempt produced it."""
        if not isinstance(record, dict) or not self._obs.enabled:
            return
        attrs = record.setdefault("attrs", {})
        if isinstance(attrs, dict):
            attrs.setdefault("task", self.task.task_id)
            attrs.setdefault("attempt", self.attempt)
        self._obs.emit(record)

    def _read_stderr(self) -> None:
        for line in self.proc.stderr:
            with self._lock:
                self.stderr_tail.append(line.rstrip("\n"))
                del self.stderr_tail[:-50]
        self.proc.stderr.close()

    def finished(self) -> bool:
        return self.proc.poll() is not None

    def settle(self) -> None:
        """After exit: classify a worker that died without a verdict.

        Waits for the stdout reader to hit EOF first — the process can
        be reaped by ``poll()`` an instant before its final ``RESULT``
        line is consumed, and that race must not look like death.
        """
        self._stdout_thread.join(timeout=5.0)
        with self._lock:
            if self.result_record is None and self.fail_info is None:
                self.silent_death = True
                tail = "; ".join(self.stderr_tail[-3:])
                self.fail_info = {
                    "error_type": "WorkerDied",
                    "error": (
                        f"worker exited with code {self.proc.returncode} "
                        f"without a result"
                        + (f" (stderr: {tail})" if tail else "")
                    ),
                }

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


class _InprocessWorker(_WorkerHandle):
    """Serial fallback: the task runs in a daemon thread.

    The thread stands in for the subprocess: a ``hang-worker`` fault
    hangs it (the watchdog times out and abandons it — daemon threads
    die with the interpreter), and a ``kill-worker-at-nth`` fault makes
    it finish without a verdict, which the supervisor classifies as
    silent death exactly as it would a vanished subprocess.
    """

    heartbeats = False  # a thread cannot heartbeat mid-task

    def __init__(self, task, index, attempt, config, fault_env: str,
                 obs: Observability = NULL_OBS):
        super().__init__(task, index, attempt)
        self._obs = obs
        self._fault_env = fault_env
        self._done = threading.Event()
        self._abandoned = False
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self) -> None:
        try:
            if self._fault_env == "hang":
                while not self._abandoned:
                    time.sleep(0.02)
                return
            if self._fault_env == "kill":
                self.silent_death = True
                return
            # In-process workers share the supervisor's facade directly:
            # spans stream straight into the batch sink and metrics land
            # in the batch registry with no merge step.
            result: TaskResult = execute_task(self.task, obs=self._obs)
            self.result_record = result.record
            self.outcome_obj = result.outcome
            self.stats_record = result.stats
        except Exception as exc:
            import traceback as _tb

            self.fail_info = {
                "error_type": type(exc).__name__,
                "error": str(exc),
                "traceback": _tb.format_exc(),
            }
        finally:
            self.last_heartbeat = time.monotonic()
            self._done.set()

    def finished(self) -> bool:
        return self._done.is_set()

    def settle(self) -> None:
        if self.result_record is None and self.fail_info is None:
            self.silent_death = True
            self.fail_info = {
                "error_type": "WorkerDied",
                "error": "in-process worker finished without a result",
            }

    def kill(self) -> None:
        # Threads cannot be killed; the watchdog abandons this one.
        self._abandoned = True
        self._done.set()


# ---------------------------------------------------------------------------
# the supervisor
# ---------------------------------------------------------------------------


class BatchSupervisor:
    """Run a batch of repair tasks under supervision (see module docs).

    :param tasks: the batch, in submission order (order is part of the
        canonical report).
    :param journal_path: the write-ahead journal file; None disables
        journaling (library use — ``resume`` then requires a path).
    :param config: supervision policy.
    :param fault: optional fault plan (``hang-worker``,
        ``kill-worker-at-nth``, ``kill-supervisor-at-nth``) from
        :mod:`repro.faultinject.plans`; duck-typed — anything with
        ``mode``, ``nth`` and ``attempts`` attributes works.
    :param obs: an :class:`~repro.obs.observability.Observability`
        facade.  Lifecycle events (spawn, heartbeat, retry, kill,
        quarantine, resume) and worker metrics flow into it; the
        canonical report is byte-identical with it on or off.
    """

    def __init__(
        self,
        tasks: List[RepairTask],
        journal_path: Optional[str] = None,
        config: Optional[SupervisorConfig] = None,
        fault=None,
        obs: Optional[Observability] = None,
    ):
        seen = set()
        for task in tasks:
            if task.task_id in seen:
                raise SupervisorError(f"duplicate task id {task.task_id!r}")
            seen.add(task.task_id)
        self.tasks = list(tasks)
        self.journal_path = journal_path
        self.config = config or SupervisorConfig()
        self.fault = fault
        self.obs = obs if obs is not None else NULL_OBS
        self._journal: Optional[CheckpointJournal] = None
        self._draining = False
        self._drain_signal = ""
        self._mode = self.config.mode
        self.progress = None  # optional callable(event: str, task_id: str)

    # -- fault plumbing -----------------------------------------------------

    def _checkpoint_hook(self, appended: int) -> None:
        fault = self.fault
        if fault is not None and getattr(fault, "mode", "") == "kill-supervisor-at-nth":
            if appended == fault.nth:
                raise SupervisorKilled(f"simulated SIGKILL at checkpoint {appended}")

    def _worker_fault_env(self, index: int, attempt: int) -> str:
        fault = self.fault
        if fault is None or getattr(fault, "nth", 0) != index:
            return ""
        affected = getattr(fault, "attempts", 1)
        if affected and attempt > affected:
            return ""
        if fault.mode == "hang-worker":
            return "hang"
        if fault.mode == "kill-worker-at-nth":
            return "kill"
        return ""

    # -- journal helpers ----------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        if self._journal is not None:
            self._journal.append(record)

    # -- signals ------------------------------------------------------------

    def _install_signals(self):
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = {}

        def drain(signum, frame):
            self._draining = True
            self._drain_signal = signal.Signals(signum).name

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, drain)
        return previous

    @staticmethod
    def _restore_signals(previous) -> None:
        if previous:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    # -- mode resolution ----------------------------------------------------

    def _spawn(self, task: RepairTask, index: int, attempt: int) -> _WorkerHandle:
        fault_env = self._worker_fault_env(index, attempt)
        self.obs.event(
            "supervisor.spawn", task=task.task_id, attempt=attempt,
            mode=self._mode,
        )
        self.obs.count("supervisor.spawns")
        if self._mode == "subprocess":
            try:
                return _SubprocessWorker(
                    task, index, attempt, self.config, fault_env, obs=self.obs
                )
            except OSError as exc:
                raise SupervisorError(f"cannot spawn worker: {exc}") from exc
        return _InprocessWorker(
            task, index, attempt, self.config, fault_env, obs=self.obs
        )

    def _resolve_mode(self) -> None:
        if self.config.mode != "auto":
            self._mode = self.config.mode
            return
        # Graceful degradation: probe for a usable interpreter to fork.
        if sys.executable and hasattr(subprocess, "Popen"):
            try:
                probe = subprocess.run(
                    [sys.executable, "-c", "pass"],
                    capture_output=True,
                    timeout=30,
                )
                if probe.returncode == 0:
                    self._mode = "subprocess"
                    return
            except (OSError, subprocess.SubprocessError):
                pass
        self._mode = "inprocess"

    # -- resume -------------------------------------------------------------

    def _load_resume_state(self) -> Tuple[List[TaskOutcome], RecoveredJournal]:
        journal = self._journal
        assert journal is not None
        recovered = journal.recover()
        completed = recovered.completed_tasks()
        known = {task.task_id for task in self.tasks}
        stale = sorted(set(completed) - known)
        if stale:
            raise SupervisorError(
                f"journal {self.journal_path!r} records task(s) not in this "
                f"batch: {stale}; refusing to resume a different batch"
            )
        outcomes: List[TaskOutcome] = []
        for task in self.tasks:
            record = completed.get(task.task_id)
            if record is None:
                continue
            if record["type"] == "task-done":
                outcomes.append(
                    TaskOutcome(
                        task_id=task.task_id,
                        status=DONE,
                        record=record["result"],
                        attempts=recovered.attempts(task.task_id),
                        replayed=True,
                    )
                )
            else:
                outcomes.append(
                    TaskOutcome(
                        task_id=task.task_id,
                        status=QUARANTINED,
                        error=record.get("error", ""),
                        attempts=recovered.attempts(task.task_id),
                        replayed=True,
                    )
                )
        return outcomes, recovered

    # -- the run ------------------------------------------------------------

    def run(self, resume: bool = False) -> BatchReport:
        """Execute the batch; with ``resume=True``, continue a journal.

        Returns the :class:`BatchReport`.  Raises
        :class:`SupervisorError` on misuse (resume without a journal,
        journal from a different batch).  :class:`SupervisorKilled`
        (fault injection) propagates like the SIGKILL it simulates.
        """
        if resume and not self.journal_path:
            raise SupervisorError("resume requires a journal path")
        started = time.monotonic()
        self._resolve_mode()
        self.obs.event(
            "batch.start",
            tasks=len(self.tasks),
            mode=self._mode,
            resume=resume,
        )
        report = BatchReport(heuristic=self.config.heuristic, mode=self._mode)
        outcomes_by_id: Dict[str, TaskOutcome] = {}

        self._journal = (
            CheckpointJournal(self.journal_path, after_append=self._checkpoint_hook)
            if self.journal_path
            else None
        )
        previous_handlers = self._install_signals()
        try:
            if resume and self._journal is not None:
                replayed, recovered = self._load_resume_state()
                for outcome in replayed:
                    outcomes_by_id[outcome.task_id] = outcome
                pending = [
                    task for task in self.tasks if task.task_id not in outcomes_by_id
                ]
                if not recovered.records:
                    # Killed before batch-start survived: a fresh run.
                    self._append(self._batch_start_record())
                else:
                    self._append(
                        {
                            "type": "batch-resume",
                            "replayed": sorted(outcomes_by_id),
                            "pending": [task.task_id for task in pending],
                            "torn_at": recovered.torn_at,
                        }
                    )
                    self.obs.event(
                        "supervisor.resume",
                        replayed=len(outcomes_by_id),
                        pending=len(pending),
                    )
                    self.obs.count("supervisor.replayed", len(outcomes_by_id))
            else:
                pending = list(self.tasks)
                self._append(self._batch_start_record())

            interrupted = self._dispatch(pending, outcomes_by_id, report)

            report.outcomes = [
                outcomes_by_id[task.task_id]
                for task in self.tasks
                if task.task_id in outcomes_by_id
            ]
            if interrupted:
                report.interrupted = True
                report.pending = [
                    task.task_id
                    for task in self.tasks
                    if task.task_id not in outcomes_by_id
                ]
                self._append(
                    {
                        "type": "batch-interrupted",
                        "signal": self._drain_signal,
                        "pending": report.pending,
                    }
                )
            else:
                self._append({"type": "batch-end", "totals": report.totals()})
            report.elapsed_seconds = time.monotonic() - started
            self.obs.event(
                "batch.end",
                interrupted=report.interrupted,
                done=sum(1 for o in report.outcomes if o.status == DONE),
                quarantined=len(report.quarantined),
            )
            return report
        finally:
            self._restore_signals(previous_handlers)
            if self._journal is not None:
                self._journal.close()

    def _batch_start_record(self) -> Dict[str, Any]:
        return {
            "type": "batch-start",
            "tasks": [task.task_id for task in self.tasks],
            "heuristic": self.config.heuristic,
            "max_retries": self.config.max_retries,
        }

    def _notify(self, event: str, task_id: str, detail: str = "") -> None:
        if self.progress is not None:
            self.progress(event, task_id, detail)

    def _dispatch(
        self,
        pending: List[RepairTask],
        outcomes_by_id: Dict[str, TaskOutcome],
        report: BatchReport,
    ) -> bool:
        """The scheduling loop; returns True if interrupted by a signal."""
        config = self.config
        index_of = {task.task_id: i + 1 for i, task in enumerate(self.tasks)}
        # ready queue: (not_before, submission index, attempt, task)
        queue: List[Tuple[float, int, int, RepairTask]] = []
        for task in pending:
            heapq.heappush(queue, (0.0, index_of[task.task_id], 1, task))
        running: List[_WorkerHandle] = []
        jobs = config.jobs if self._mode == "subprocess" else 1
        drain_deadline: Optional[float] = None

        while queue or running:
            now = time.monotonic()
            if self._draining and drain_deadline is None:
                drain_deadline = now + config.drain_grace

            # dispatch ready tasks into free slots (not while draining)
            while (
                not self._draining
                and len(running) < jobs
                and queue
                and queue[0][0] <= now
            ):
                _, index, attempt, task = heapq.heappop(queue)
                self._append(
                    {"type": "task-start", "task": task.task_id, "attempt": attempt}
                )
                self._notify("start", task.task_id, f"attempt {attempt}")
                running.append(self._spawn(task, index, attempt))

            # poll in-flight workers
            still_running: List[_WorkerHandle] = []
            for worker in running:
                now = time.monotonic()
                if worker.finished():
                    worker.settle()
                    if worker.result_record is not None:
                        self._record_done(worker, outcomes_by_id, report)
                    else:
                        self._record_failure(
                            worker, queue, index_of, outcomes_by_id, report
                        )
                    continue
                hung = (
                    worker.heartbeats
                    and now - worker.last_heartbeat > config.heartbeat_timeout
                )
                overtime = now - worker.started > config.task_timeout
                if hung or overtime:
                    worker.kill()
                    reason = (
                        f"watchdog: no heartbeat for {config.heartbeat_timeout}s"
                        if hung
                        else f"watchdog: task exceeded {config.task_timeout}s"
                    )
                    self.obs.event(
                        "supervisor.kill",
                        task=worker.task.task_id,
                        attempt=worker.attempt,
                        reason=reason,
                    )
                    self.obs.count("supervisor.watchdog_kills")
                    worker.fail_info = {"error_type": "WatchdogTimeout", "error": reason}
                    self._record_failure(
                        worker, queue, index_of, outcomes_by_id, report
                    )
                    continue
                still_running.append(worker)
            running = still_running

            if self._draining:
                if not running:
                    return True
                if drain_deadline is not None and time.monotonic() > drain_deadline:
                    for worker in running:
                        worker.kill()
                        worker.fail_info = {
                            "error_type": "Drained",
                            "error": f"killed by {self._drain_signal or 'signal'} "
                            f"drain after {config.drain_grace}s grace",
                        }
                        self._record_failure(
                            worker, queue, index_of, outcomes_by_id, report,
                            requeue=False,
                        )
                    return True

            if queue or running:
                time.sleep(0.01)
        return self._draining

    def _record_done(
        self, worker: _WorkerHandle, outcomes_by_id, report: BatchReport
    ) -> None:
        # The journaled record excludes the volatile metrics payload: a
        # resumed batch replays results, not cache weather.
        if worker.metrics_record is not None:
            # Subprocess workers ship a full registry snapshot; fold it
            # into the batch registry (in-process workers wrote to it
            # directly, so they have nothing to merge).
            self.obs.merge_metrics(worker.metrics_record)
        self.obs.event(
            "supervisor.done",
            task=worker.task.task_id,
            attempt=worker.attempt,
        )
        self.obs.count("supervisor.tasks_done")
        self._append(
            {
                "type": "task-done",
                "task": worker.task.task_id,
                "attempt": worker.attempt,
                "result": worker.result_record,
            }
        )
        outcomes_by_id[worker.task.task_id] = TaskOutcome(
            task_id=worker.task.task_id,
            status=DONE,
            record=worker.result_record,
            attempts=worker.attempt,
            outcome_obj=worker.outcome_obj,
            stats=worker.stats_record,
        )
        report.add_analysis_stats(worker.stats_record)
        self._notify("done", worker.task.task_id)

    def _record_failure(
        self,
        worker: _WorkerHandle,
        queue,
        index_of,
        outcomes_by_id,
        report: BatchReport,
        requeue: bool = True,
    ) -> None:
        config = self.config
        info = worker.fail_info or {"error_type": "Unknown", "error": "no verdict"}
        error = f"{info.get('error_type', 'Error')}: {info.get('error', '')}"
        task_id = worker.task.task_id
        if requeue and worker.attempt <= config.max_retries:
            delay = backoff_delay(config, task_id, worker.attempt)
            self._append(
                {
                    "type": "task-failed",
                    "task": task_id,
                    "attempt": worker.attempt,
                    "error": error,
                    "retry_in": round(delay, 6),
                }
            )
            report.total_retries += 1
            self.obs.event(
                "supervisor.retry",
                task=task_id,
                attempt=worker.attempt,
                delay=round(delay, 6),
                error=error,
            )
            self.obs.count("supervisor.retries")
            self.obs.observe("supervisor.backoff_seconds", delay)
            self._notify("retry", task_id, error)
            heapq.heappush(
                queue,
                (
                    time.monotonic() + delay,
                    index_of[task_id],
                    worker.attempt + 1,
                    worker.task,
                ),
            )
            return
        self._append(
            {
                "type": "task-quarantined",
                "task": task_id,
                "attempts": worker.attempt,
                "error": error,
            }
        )
        outcomes_by_id[task_id] = TaskOutcome(
            task_id=task_id,
            status=QUARANTINED,
            error=error,
            attempts=worker.attempt,
        )
        self.obs.event(
            "supervisor.quarantine",
            task=task_id,
            attempts=worker.attempt,
            error=error,
        )
        self.obs.count("supervisor.quarantines")
        self._notify("quarantine", task_id, error)


# ---------------------------------------------------------------------------
# convenience front door
# ---------------------------------------------------------------------------


def run_batch(
    tasks: List[RepairTask],
    journal_path: Optional[str] = None,
    resume: bool = False,
    config: Optional[SupervisorConfig] = None,
    fault=None,
    progress=None,
    obs: Optional[Observability] = None,
) -> BatchReport:
    """Build a :class:`BatchSupervisor` and run it (the CLI's engine)."""
    supervisor = BatchSupervisor(
        tasks, journal_path=journal_path, config=config, fault=fault, obs=obs
    )
    supervisor.progress = progress
    return supervisor.run(resume=resume)
