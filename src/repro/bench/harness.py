"""Experiment harness: builds targets, applies Hippocrates, measures.

Everything the benchmark suite (one file per paper table/figure) needs:

- :func:`build_redis_variants` — Redis-pm / RedisH-full / RedisH-intra
  (§6.3's three stores), with the fix reports.
- :func:`run_fig4` — YCSB Load + A-F over the three variants.
- :func:`run_effectiveness` — fix-and-revalidate over the whole corpus.
- :func:`run_fig3` — qualitative fix comparison on the 11 PMDK cases.
- :func:`run_fig5` — offline overhead (size/time/memory) per target.
- :func:`run_heuristic_comparison` — Full-AA vs Trace-AA (E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..apps.kvstore import KVStore, build_kvstore
from ..core.fixes import HoistedFix
from ..core.hippocrates import FixReport, Hippocrates
from ..corpus.bugs import BugCase, all_cases, pmdk_cases
from ..detect import pmemcheck_run
from ..ir.module import Module
from ..ir.printer import format_module
from ..supervisor import (
    BatchSupervisor,
    CaseOutcome,
    SupervisorConfig,
    corpus_tasks,
    run_case,
)
from ..workloads.ycsb import (
    CORE_WORKLOADS,
    FIG4_ORDER,
    RunResult,
    execute,
    generate_load,
    generate_run,
)

#: Paper variant names.
REDIS_PM = "Redis-pm"
REDIS_FULL = "RedisH-full"
REDIS_INTRA = "RedisH-intra"


def redis_trace_workload(kv: KVStore) -> None:
    """The tracing workload used to collect Redis's pmemcheck trace.

    Exercises every operation path (insert, update, delete, lookup,
    scan) so the trace covers all durability obligations — the paper's
    equivalent of running the test suite under pmemcheck.
    """
    kv.init(64, 1 << 20)
    for i in range(30):
        kv.put(f"key{i:04d}".encode(), f"value-{i:03d}".encode() * 3)
    kv.put(b"key0003", b"UPDATEDVAL-003-XYZIJKLMNOPQ")
    kv.delete(b"key0004")
    for i in range(10):
        kv.get(f"key{i:04d}".encode())
    kv.scan(5, 4)


def build_redis_variant(heuristic: Optional[str]) -> Tuple[Module, Optional[FixReport]]:
    """One Redis build: None -> the manual baseline; otherwise the
    flush-free store repaired with the given heuristic mode."""
    if heuristic is None:
        return build_kvstore("manual"), None
    module = build_kvstore("noflush")
    kv = KVStore(module)
    redis_trace_workload(kv)
    trace = kv.finish()
    report = Hippocrates(module, trace, kv.machine, heuristic=heuristic).fix()
    return module, report


def build_redis_variants() -> Dict[str, Tuple[Module, Optional[FixReport]]]:
    return {
        REDIS_PM: build_redis_variant(None),
        REDIS_FULL: build_redis_variant("full"),
        REDIS_INTRA: build_redis_variant("off"),
    }


# ---------------------------------------------------------------------------
# Fig. 4 — YCSB throughput over the three Redis variants
# ---------------------------------------------------------------------------


@dataclass
class Fig4Result:
    """Per-(variant, workload) throughput plus the fix reports."""

    record_count: int
    operation_count: int
    value_size: int
    #: variant -> workload -> RunResult
    results: Dict[str, Dict[str, RunResult]] = field(default_factory=dict)
    reports: Dict[str, Optional[FixReport]] = field(default_factory=dict)

    def throughput(self, variant: str, workload: str) -> float:
        return self.results[variant][workload].throughput

    def speedup_full_over_intra(self) -> Dict[str, float]:
        return {
            w: self.throughput(REDIS_FULL, w) / self.throughput(REDIS_INTRA, w)
            for w in self.results[REDIS_FULL]
        }

    def full_vs_manual(self) -> Dict[str, float]:
        return {
            w: self.throughput(REDIS_FULL, w) / self.throughput(REDIS_PM, w)
            for w in self.results[REDIS_FULL]
        }


def run_fig4(
    record_count: int = 300,
    operation_count: int = 300,
    value_size: int = 96,
    seed: int = 42,
    workloads: Optional[List[str]] = None,
) -> Fig4Result:
    """Run YCSB Load + A-F on all three variants.

    The paper uses 10k records/ops on real hardware; the interpreter
    defaults to 300/300, which preserves every reported relationship
    (the generators and store are identical, only the sample is
    smaller).
    """
    outcome = Fig4Result(record_count, operation_count, value_size)
    selected = workloads or FIG4_ORDER
    for variant, (module, report) in build_redis_variants().items():
        outcome.reports[variant] = report
        per_workload: Dict[str, RunResult] = {}
        for name in selected:
            store = KVStore(module)
            store.init(max(64, record_count // 2), 1 << 23)
            load_ops = generate_load(record_count, value_size)
            load_result = execute(store, load_ops)
            if name == "Load":
                per_workload["Load"] = load_result
                continue
            run_ops = generate_run(
                CORE_WORKLOADS[name], record_count, operation_count,
                value_size, seed,
            )
            per_workload[name] = execute(store, run_ops)
        outcome.results[variant] = per_workload
    return outcome


# ---------------------------------------------------------------------------
# Effectiveness (§6.1) and accuracy (Fig. 3)
# ---------------------------------------------------------------------------


# CaseOutcome/run_case live in repro.supervisor.tasks (re-exported here
# for compatibility): the supervisor is the canonical owner of per-case
# repair so batch runs and benchmarks share one code path.


def run_effectiveness(
    heuristic: str = "full",
    analysis_cache_dir: Optional[str] = None,
) -> List[CaseOutcome]:
    """Fix and revalidate the full 23-bug corpus (§6.1).

    Routed through the :class:`BatchSupervisor` (in-process serial
    mode, no journal) so corpus runs exercise the exact scheduling path
    production batches use; the rich per-case outcomes are recovered
    from the supervisor's in-process results.  ``analysis_cache_dir``
    enables the shared on-disk analysis cache (the bench-smoke job runs
    the corpus cold and warm against one directory).
    """
    supervisor = BatchSupervisor(
        corpus_tasks(heuristic=heuristic, analysis_cache_dir=analysis_cache_dir),
        config=SupervisorConfig(
            mode="inprocess", heuristic=heuristic, max_retries=0,
            task_timeout=600.0,
        ),
    )
    report = supervisor.run()
    if report.quarantined or report.interrupted:
        bad = ", ".join(o.task_id for o in report.quarantined) or "interrupted"
        raise RuntimeError(f"corpus batch did not complete cleanly: {bad}")
    return [outcome.outcome_obj for outcome in report.outcomes]


def run_fig3() -> List[CaseOutcome]:
    """The 11 PMDK cases with developer-fix comparisons (Fig. 3)."""
    return [run_case(case) for case in pmdk_cases()]


# ---------------------------------------------------------------------------
# Fig. 5 — offline overhead
# ---------------------------------------------------------------------------


@dataclass
class OverheadRow:
    target: str
    ir_kinstr: float  # thousands of IR instructions (the KLOC analog)
    seconds: float
    peak_mb: float
    bugs_fixed: int


def _measure_target(
    name: str, builds: List[Tuple[Module, Callable]], sized: Module
) -> OverheadRow:
    total_seconds = 0.0
    peak = 0
    bugs = 0
    for module, drive in builds:
        _, trace, interp = pmemcheck_run(module, drive)
        report = Hippocrates(module, trace, interp.machine).fix(
            measure_overhead=True
        )
        total_seconds += report.elapsed_seconds
        peak = max(peak, report.peak_memory_bytes)
        bugs += report.bugs_fixed
    return OverheadRow(
        target=name,
        ir_kinstr=sized.instruction_count() / 1000.0,
        seconds=total_seconds,
        peak_mb=peak / (1024 * 1024),
        bugs_fixed=bugs,
    )


def run_fig5() -> List[OverheadRow]:
    """Offline overhead per target (Fig. 5's columns)."""
    rows: List[OverheadRow] = []

    pmdk_builds = []
    sized = None
    for case in pmdk_cases():
        module = case.build()
        if sized is None:
            sized = module
        pmdk_builds.append((module, case.drive))
    rows.append(_measure_target("PMDK (Unit Tests)", pmdk_builds, sized))

    for case in all_cases():
        if case.system == "PMDK":
            continue
        module = case.build()
        rows.append(
            _measure_target(case.case_id, [(module, case.drive)], module)
        )

    redis = build_kvstore("noflush")
    kv = KVStore(redis)
    redis_trace_workload(kv)
    trace = kv.finish()

    import time
    import tracemalloc

    tracemalloc.start()
    start = time.perf_counter()
    report = Hippocrates(redis, trace, kv.machine).fix()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rows.append(
        OverheadRow(
            target="Redis-pmem",
            ir_kinstr=redis.instruction_count() / 1000.0,
            seconds=seconds,
            peak_mb=peak / (1024 * 1024),
            bugs_fixed=report.bugs_fixed,
        )
    )
    return rows


# ---------------------------------------------------------------------------
# E7 — Full-AA vs Trace-AA
# ---------------------------------------------------------------------------


def run_heuristic_comparison() -> List[Tuple[str, bool]]:
    """For every corpus target + Redis: do Full-AA and Trace-AA produce
    identical fixed binaries?  (§6.1 reports they do.)"""
    outcomes: List[Tuple[str, bool]] = []
    for case in all_cases():
        texts = []
        for heuristic in ("full", "trace"):
            module = case.build()
            _, trace, interp = pmemcheck_run(module, case.drive)
            Hippocrates(module, trace, interp.machine, heuristic=heuristic).fix()
            texts.append(format_module(module))
        outcomes.append((case.case_id, texts[0] == texts[1]))

    texts = []
    for heuristic in ("full", "trace"):
        module = build_kvstore("noflush")
        kv = KVStore(module)
        redis_trace_workload(kv)
        trace = kv.finish()
        Hippocrates(module, trace, kv.machine, heuristic=heuristic).fix()
        texts.append(format_module(module))
    outcomes.append(("Redis", texts[0] == texts[1]))
    return outcomes
