"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from ..errors import IRError
from .instructions import Instruction

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function


class BasicBlock:
    """An ordered list of instructions with a single entry point.

    Blocks support positional insertion (used heavily by Hippocrates,
    which inserts flushes and fences *after* specific instructions).
    """

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structure ----------------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's terminator, or None if the block is unfinished."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []  # type: ignore[attr-defined]

    # -- mutation ------------------------------------------------------------

    def _bump_module_epoch(self) -> None:
        """Propagate a structural change to the owning module's epoch."""
        fn = self.parent
        if fn is not None and fn.parent is not None:
            fn.parent.bump_epoch()

    def append(self, instr: Instruction) -> Instruction:
        """Append an instruction to the end of the block."""
        if self.terminator is not None:
            raise IRError(
                f"block {self.name!r} already has a terminator; cannot append"
            )
        instr.parent = self
        self.instructions.append(instr)
        self._bump_module_epoch()
        return instr

    def insert_after(self, anchor: Instruction, instr: Instruction) -> Instruction:
        """Insert ``instr`` immediately after ``anchor``.

        This is the primitive behind intraprocedural fixes: a flush is
        inserted after the buggy store, and a fence after the flush.
        """
        idx = self.index_of(anchor)
        if anchor.is_terminator:
            raise IRError("cannot insert after a terminator")
        instr.parent = self
        self.instructions.insert(idx + 1, instr)
        self._bump_module_epoch()
        return instr

    def insert_before(self, anchor: Instruction, instr: Instruction) -> Instruction:
        """Insert ``instr`` immediately before ``anchor``."""
        idx = self.index_of(anchor)
        instr.parent = self
        self.instructions.insert(idx, instr)
        self._bump_module_epoch()
        return instr

    def remove(self, instr: Instruction) -> None:
        """Remove an instruction from the block."""
        self.instructions.remove(instr)
        instr.parent = None
        self._bump_module_epoch()

    def index_of(self, instr: Instruction) -> int:
        for i, existing in enumerate(self.instructions):
            if existing is instr:
                return i
        raise IRError(f"instruction #{instr.iid} not in block {self.name!r}")

    # -- iteration -----------------------------------------------------------

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self)} instrs)>"
