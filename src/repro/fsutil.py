"""Crash-consistent file output: the flush/fence discipline, dogfooded.

The paper's whole point is that a write is not durable until it is
flushed and fenced; the Linux-kernel PM-issues study (arXiv:2307.04095)
found most real-world persistence failures are exactly this kind of
operational omission.  This module applies the same discipline to our
own outputs: every file the pipeline writes — fixed modules, trace
logs, checkpoint journals, batch reports — goes through
:func:`atomic_write_text`, so a crash at any instant leaves either the
old file or the new file, never a torn hybrid.

The recipe is the classic one:

1. write the new content to a temp file *in the destination directory*
   (same filesystem, so the final rename is atomic),
2. ``flush`` + ``os.fsync`` the temp file (the "flush"),
3. ``os.replace`` it over the destination (the atomic pointer switch),
4. ``fsync`` the directory so the rename itself is durable (the
   "fence").
"""

from __future__ import annotations

import os
import tempfile


def fsync_dir(path: str) -> None:
    """Best-effort fsync of a directory (persists renames within it).

    Some platforms/filesystems refuse to open or fsync directories;
    that only weakens durability of the rename, never atomicity.
    """
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str) -> None:
    """Durably replace ``path`` with ``text``; never leaves a torn file.

    A crash before the ``os.replace`` leaves the old file untouched (a
    stray ``.tmp`` may remain); a crash after it leaves the complete new
    file.  There is no instant at which a reader can observe a partial
    write under ``path``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - already renamed or gone
            pass
        raise
    fsync_dir(directory)
