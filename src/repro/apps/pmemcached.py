"""memcached-pm: a slab-allocated persistent cache, in IR.

Models Lenovo's PMDK port of memcached: fixed-size items carved from a
slab area, a free list, a chained hash index, and statistics, all in
persistent memory.  Requests are staged through volatile buffers (like
the real server's connection buffers).

The paper found 10 previously-undocumented durability bugs in
memcached-pm with pmemcheck; we seed 10 of the same classes
(``mc-1`` ... ``mc-10``, all on by default).  Persistent layouts are
arranged so each seeded bug sits on its own cache line — durability
bugs that share a line with correctly-persisted data are masked by the
neighbour's flush (line-granular flushing), which is also true under
real pmemcheck.

====== ================================================================
seed   omitted persistence
====== ================================================================
mc-1   hash-table zeroing (memset at init) never persisted
mc-2   free-list links built at init never persisted
mc-3   free-list head pop not persisted (set path)
mc-4   item flags field not persisted (set path)
mc-5   item key bytes (memcpy) not persisted
mc-6   item data bytes (memcpy) not persisted (insert)
mc-7   hash-bucket head publish not persisted
mc-8   stats counter (total_sets) not persisted
mc-9   data overwrite not persisted (update path)
mc-10  chain unlink not persisted, and no fence follows on that path
       (missing-flush&fence)
====== ================================================================

Item layout (fixed ``ITEM_SIZE`` = 256 bytes, four cache lines — each
independently-persisted field group on its own line)::

    line 0:  +0 h_next  +8 hash  +16 klen  +24 vlen  +32 exptime
    line 1:  +64 flags
    line 2:  +128 key[24]
    line 3:  +192 data[64]

Pool-root layout (``pm_root(320)``; line-isolated hot fields)::

    +80 table  +88 nbuckets  +96 slabs     (one line, init-only)
    +128 free_head                          (own line)
    +192 stats_sets                         (own line)
    +256 stats_items                        (own line)
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..interp import make_interpreter
from ..interp.interpreter import ExecutionResult, Interpreter
from ..ir.builder import IRBuilder, ModuleBuilder
from ..ir.module import Module
from ..ir.types import I64, PTR
from .pmdk_mini import build_pmdk_module

MC_FILE = "memcached.c"

ITEM_SIZE = 256
IT_HNEXT = 0
IT_HASH = 8
IT_KLEN = 16
IT_VLEN = 24
IT_EXPTIME = 32
IT_FLAGS = 64
IT_KEY = 128
IT_DATA = 192
KEY_CAP = 24
DATA_CAP = 64

ROOT_SIZE = 320
OFF_TABLE = 80
OFF_NBUCKETS = 88
OFF_SLABS = 96
OFF_FREE_HEAD = 128
OFF_STATS_SETS = 192
OFF_STATS_ITEMS = 256

MC_SEEDS = frozenset({f"mc-{i}" for i in range(1, 11)})


def _persist_unless(b: IRBuilder, seeds: FrozenSet[str], seed: str, ptr, length):
    if seed not in seeds:
        b.call("pmem_persist", [ptr, length])


def _add_mc_init(mb: ModuleBuilder, seeds: FrozenSet[str]) -> None:
    b = mb.function(
        "mc_init",
        [("nbuckets", I64), ("nitems", I64)],
        source_file=MC_FILE,
    )
    nbuckets, nitems = b.function.args
    root = b.call("pm_root", [ROOT_SIZE], PTR)
    table_bytes = b.mul(nbuckets, 8)
    table = b.call("pm_alloc", [table_bytes], PTR)
    b.call("memset", [table, 0, table_bytes])
    _persist_unless(b, seeds, "mc-1", table, table_bytes)
    b.store(table, b.gep(root, OFF_TABLE), PTR)
    b.store(nbuckets, b.gep(root, OFF_NBUCKETS))
    b.call("pmem_persist", [b.gep(root, OFF_TABLE), 16])

    slabs = b.call("pm_alloc", [b.mul(nitems, ITEM_SIZE)], PTR)
    b.store(slabs, b.gep(root, OFF_SLABS), PTR)
    b.call("pmem_persist", [b.gep(root, OFF_SLABS), 8])

    # Thread every item onto the free list (last item's next = null).
    i_slot = b.alloca(8)
    b.store(0, i_slot)
    cond = b.new_block("cond")
    body = b.new_block("body")
    tail = b.new_block("tail")
    b.jmp(cond)

    b.position_at_end(cond)
    i = b.load(i_slot)
    last = b.sub(nitems, 1)
    more = b.icmp("ult", i, last)
    b.br(more, body, tail)

    b.position_at_end(body)
    i = b.load(i_slot)
    item = b.gep(slabs, b.mul(i, ITEM_SIZE))
    nxt = b.gep(slabs, b.mul(b.add(i, 1), ITEM_SIZE))
    b.store(nxt, b.gep(item, IT_HNEXT), PTR)
    b.store(b.add(i, 1), i_slot)
    b.jmp(cond)

    b.position_at_end(tail)
    i = b.load(i_slot)
    item = b.gep(slabs, b.mul(i, ITEM_SIZE))
    b.store(0, b.gep(item, IT_HNEXT))
    b.call("pmem_persist", [b.gep(item, IT_HNEXT), 8])
    _persist_unless(b, seeds, "mc-2", slabs, b.mul(nitems, ITEM_SIZE))
    b.store(slabs, b.gep(root, OFF_FREE_HEAD), PTR)
    b.store(0, b.gep(root, OFF_STATS_SETS))
    b.store(0, b.gep(root, OFF_STATS_ITEMS))
    # Covers the free_head, stats_sets, and stats_items lines.
    b.call("pmem_persist", [b.gep(root, OFF_FREE_HEAD), ROOT_SIZE - OFF_FREE_HEAD])
    b.ret()


def _add_mc_find(mb: ModuleBuilder) -> None:
    b = mb.function(
        "mc_find",
        [("key", PTR), ("klen", I64), ("h", I64)],
        return_type=PTR,
        source_file=MC_FILE,
    )
    key, klen, h = b.function.args
    root = b.call("pm_root", [ROOT_SIZE], PTR)
    table = b.load(b.gep(root, OFF_TABLE), PTR)
    nbuckets = b.load(b.gep(root, OFF_NBUCKETS))
    bucket = b.gep(table, b.mul(b.urem(h, nbuckets), 8))
    it_slot = b.alloca(8)
    b.store(b.load(bucket, PTR), it_slot, PTR)

    loop = b.new_block("loop")
    check = b.new_block("check")
    deep = b.new_block("deep")
    advance = b.new_block("advance")
    found = b.new_block("found")
    miss = b.new_block("miss")
    b.jmp(loop)

    b.position_at_end(loop)
    it = b.load(it_slot, PTR)
    is_null = b.icmp("eq", it, 0)
    b.br(is_null, miss, check)

    b.position_at_end(check)
    it = b.load(it_slot, PTR)
    ih = b.load(b.gep(it, IT_HASH))
    ikl = b.load(b.gep(it, IT_KLEN))
    h_eq = b.icmp("eq", ih, h)
    k_eq = b.icmp("eq", ikl, klen)
    both = b.and_(b.cast("zext", h_eq, I64), b.cast("zext", k_eq, I64))
    maybe = b.icmp("ne", both, 0)
    b.br(maybe, deep, advance)
    b.position_at_end(deep)
    it = b.load(it_slot, PTR)
    diff = b.call("memcmp", [b.gep(it, IT_KEY), key, klen], I64)
    same = b.icmp("eq", diff, 0)
    b.br(same, found, advance)

    b.position_at_end(advance)
    it = b.load(it_slot, PTR)
    b.store(b.load(b.gep(it, IT_HNEXT), PTR), it_slot, PTR)
    b.jmp(loop)

    b.position_at_end(found)
    b.ret(b.load(it_slot, PTR))
    b.position_at_end(miss)
    b.ret(0)


def _add_mc_set(mb: ModuleBuilder, seeds: FrozenSet[str]) -> None:
    b = mb.function(
        "mc_set",
        [("key", PTR), ("klen", I64), ("val", PTR), ("vlen", I64), ("flags", I64)],
        return_type=I64,
        source_file=MC_FILE,
    )
    key, klen, val, vlen, flags = b.function.args
    scratch = mb.module.get_global("mc_scratch")
    # Stage the request through the connection buffer (volatile).
    b.call("memcpy", [scratch, key, klen])
    scratch_val = b.gep(scratch, 64)
    b.call("memcpy", [scratch_val, val, vlen])
    h = b.call("fnv1a64", [scratch, klen], I64)
    it = b.call("mc_find", [scratch, klen, h], PTR)
    root = b.call("pm_root", [ROOT_SIZE], PTR)
    update = b.new_block("update")
    insert = b.new_block("insert")
    hit = b.icmp("ne", it, 0)
    b.br(hit, update, insert)

    # -- update in place --------------------------------------------------------
    b.position_at_end(update)
    data = b.gep(it, IT_DATA)
    b.call("memcpy", [data, scratch_val, vlen])
    _persist_unless(b, seeds, "mc-9", data, vlen)
    b.store(vlen, b.gep(it, IT_VLEN))
    b.call("pmem_persist", [b.gep(it, IT_VLEN), 8])
    b.call("checkpoint", [])
    b.ret(1)

    # -- insert: pop a free item --------------------------------------------------
    b.position_at_end(insert)
    free_head_ptr = b.gep(root, OFF_FREE_HEAD)
    item = b.load(free_head_ptr, PTR)
    has_item = b.icmp("ne", item, 0)
    fill = b.new_block("fill")
    full = b.new_block("full")
    b.br(has_item, fill, full)

    b.position_at_end(fill)
    nxt_free = b.load(b.gep(item, IT_HNEXT), PTR)
    b.store(nxt_free, free_head_ptr, PTR)
    _persist_unless(b, seeds, "mc-3", free_head_ptr, 8)

    # Header (line 0): always persisted as a unit.
    b.store(h, b.gep(item, IT_HASH))
    b.store(klen, b.gep(item, IT_KLEN))
    b.store(vlen, b.gep(item, IT_VLEN))
    b.store(0, b.gep(item, IT_EXPTIME))
    b.call("pmem_persist", [b.gep(item, IT_HASH), 32])

    # Lines 1 and 2: flags, then key bytes (seeds mc-4, mc-5).
    b.store(flags, b.gep(item, IT_FLAGS))
    _persist_unless(b, seeds, "mc-4", b.gep(item, IT_FLAGS), 8)
    b.call("memcpy", [b.gep(item, IT_KEY), scratch, klen])
    _persist_unless(b, seeds, "mc-5", b.gep(item, IT_KEY), klen)
    # Line 2: data bytes (seed mc-6).
    b.call("memcpy", [b.gep(item, IT_DATA), scratch_val, vlen])
    _persist_unless(b, seeds, "mc-6", b.gep(item, IT_DATA), vlen)

    # Link into the hash chain; the bucket-head publish is seed mc-7.
    table = b.load(b.gep(root, OFF_TABLE), PTR)
    nbuckets = b.load(b.gep(root, OFF_NBUCKETS))
    bucket = b.gep(table, b.mul(b.urem(h, nbuckets), 8))
    head = b.load(bucket, PTR)
    b.store(head, b.gep(item, IT_HNEXT), PTR)
    b.call("pmem_persist", [b.gep(item, IT_HNEXT), 8])
    b.store(item, bucket, PTR)
    _persist_unless(b, seeds, "mc-7", bucket, 8)

    sets_ptr = b.gep(root, OFF_STATS_SETS)
    b.store(b.add(b.load(sets_ptr), 1), sets_ptr)
    _persist_unless(b, seeds, "mc-8", sets_ptr, 8)
    b.call("pmem_drain", [])
    b.call("checkpoint", [])
    b.ret(0)

    b.position_at_end(full)
    b.ret(2)  # out of memory


def _add_mc_get(mb: ModuleBuilder) -> None:
    b = mb.function(
        "mc_get",
        [("key", PTR), ("klen", I64)],
        return_type=I64,
        source_file=MC_FILE,
    )
    key, klen = b.function.args
    scratch = mb.module.get_global("mc_scratch")
    reply = mb.module.get_global("mc_reply")
    b.call("memcpy", [scratch, key, klen])
    h = b.call("fnv1a64", [scratch, klen], I64)
    it = b.call("mc_find", [scratch, klen, h], PTR)
    hit = b.new_block("hit")
    miss = b.new_block("miss")
    found = b.icmp("ne", it, 0)
    b.br(found, hit, miss)

    b.position_at_end(hit)
    vlen = b.load(b.gep(it, IT_VLEN))
    b.call("memcpy", [reply, b.gep(it, IT_DATA), vlen])
    b.ret(vlen)
    b.position_at_end(miss)
    b.ret(0)


def _add_mc_delete(mb: ModuleBuilder, seeds: FrozenSet[str]) -> None:
    """Unlink an item and push it back to the free list.

    With seed mc-10 the chain unlink — deliberately ordered last on
    this path — lacks any flush, and no fence follows before the
    checkpoint: the missing-flush&fence class.
    """
    b = mb.function(
        "mc_delete",
        [("key", PTR), ("klen", I64)],
        return_type=I64,
        source_file=MC_FILE,
    )
    key, klen = b.function.args
    scratch = mb.module.get_global("mc_scratch")
    b.call("memcpy", [scratch, key, klen])
    h = b.call("fnv1a64", [scratch, klen], I64)
    root = b.call("pm_root", [ROOT_SIZE], PTR)
    table = b.load(b.gep(root, OFF_TABLE), PTR)
    nbuckets = b.load(b.gep(root, OFF_NBUCKETS))
    bucket = b.gep(table, b.mul(b.urem(h, nbuckets), 8))
    prev_slot = b.alloca(8)
    b.store(bucket, prev_slot, PTR)

    loop = b.new_block("loop")
    check = b.new_block("check")
    deep = b.new_block("deep")
    matched = b.new_block("matched")
    advance = b.new_block("advance")
    miss = b.new_block("miss")
    b.jmp(loop)

    b.position_at_end(loop)
    slot = b.load(prev_slot, PTR)
    it = b.load(slot, PTR)
    is_null = b.icmp("eq", it, 0)
    b.br(is_null, miss, check)

    b.position_at_end(check)
    slot = b.load(prev_slot, PTR)
    it = b.load(slot, PTR)
    ih = b.load(b.gep(it, IT_HASH))
    ikl = b.load(b.gep(it, IT_KLEN))
    h_eq = b.icmp("eq", ih, h)
    k_eq = b.icmp("eq", ikl, klen)
    both = b.and_(b.cast("zext", h_eq, I64), b.cast("zext", k_eq, I64))
    maybe = b.icmp("ne", both, 0)
    b.br(maybe, deep, advance)
    b.position_at_end(deep)
    slot = b.load(prev_slot, PTR)
    it = b.load(slot, PTR)
    diff = b.call("memcmp", [b.gep(it, IT_KEY), key, klen], I64)
    same = b.icmp("eq", diff, 0)
    b.br(same, matched, advance)

    b.position_at_end(matched)
    slot = b.load(prev_slot, PTR)
    it = b.load(slot, PTR)
    nxt = b.load(b.gep(it, IT_HNEXT), PTR)
    free_head_ptr = b.gep(root, OFF_FREE_HEAD)
    old_free = b.load(free_head_ptr, PTR)
    b.store(old_free, b.gep(it, IT_HNEXT), PTR)
    b.store(it, free_head_ptr, PTR)
    b.call("pmem_persist", [b.gep(it, IT_HNEXT), 8])
    b.call("pmem_persist", [free_head_ptr, 8])
    items_ptr = b.gep(root, OFF_STATS_ITEMS)
    b.store(b.sub(b.load(items_ptr), 1), items_ptr)
    b.call("pmem_persist", [items_ptr, 8])
    # The unlink itself: with seed mc-10 nothing flushes or fences it.
    b.store(nxt, slot, PTR)
    if "mc-10" not in seeds:
        b.call("pmem_persist", [slot, 8])
    b.call("checkpoint", [])
    b.ret(1)

    b.position_at_end(advance)
    slot = b.load(prev_slot, PTR)
    it = b.load(slot, PTR)
    b.store(b.gep(it, IT_HNEXT), prev_slot, PTR)
    b.jmp(loop)

    b.position_at_end(miss)
    b.ret(0)


def build_pmemcached(
    seeds: FrozenSet[str] = MC_SEEDS, name: str = "memcached"
) -> Module:
    """Build memcached-pm; the default seeds all 10 study bugs."""
    unknown = set(seeds) - MC_SEEDS
    if unknown:
        raise ValueError(f"unknown memcached seeds: {sorted(unknown)}")
    mb = build_pmdk_module(name=name)
    mb.global_("mc_req", 256, "vol")
    mb.global_("mc_scratch", 256, "vol")
    mb.global_("mc_reply", 256, "vol")
    _add_mc_init(mb, frozenset(seeds))
    _add_mc_find(mb)
    _add_mc_set(mb, frozenset(seeds))
    _add_mc_get(mb)
    _add_mc_delete(mb, frozenset(seeds))
    return mb.module


class Memcached:
    """Host driver for the memcached-pm server.

    Keys up to 24 bytes, values up to 64; the durability corpus uses
    8-byte-multiple lengths so copies stay on the memcpy chunk path.
    """

    VAL_OFF = 128

    def __init__(self, module: Module, interp: Optional[Interpreter] = None):
        self.module = module
        self.interp = interp or make_interpreter(module)
        self.req_addr = self.interp.machine.global_addrs["mc_req"]
        self.reply_addr = self.interp.machine.global_addrs["mc_reply"]

    def init(self, nbuckets: int = 64, nitems: int = 256) -> None:
        self.interp.call("mc_init", [nbuckets, nitems])

    def _write(self, key: bytes, val: bytes = b"") -> None:
        space = self.interp.machine.space
        space.write_bytes(self.req_addr, key)
        if val:
            space.write_bytes(self.req_addr + self.VAL_OFF, val)

    def set(self, key: bytes, val: bytes, flags: int = 0) -> ExecutionResult:
        if len(key) > KEY_CAP or len(val) > DATA_CAP:
            raise ValueError("key/value exceed item capacity")
        self._write(key, val)
        return self.interp.call(
            "mc_set",
            [self.req_addr, len(key), self.req_addr + self.VAL_OFF, len(val), flags],
        )

    def get(self, key: bytes) -> Optional[bytes]:
        self._write(key)
        result = self.interp.call("mc_get", [self.req_addr, len(key)])
        if result.value == 0:
            return None
        return self.interp.machine.space.read_bytes(self.reply_addr, result.value)

    def delete(self, key: bytes) -> bool:
        self._write(key)
        return bool(self.interp.call("mc_delete", [self.req_addr, len(key)]).value)

    def finish(self):
        return self.interp.finish()
