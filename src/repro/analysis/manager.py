"""An LLVM-style analysis manager: cached, invalidation-aware analyses.

Prior to this layer every consumer built its own analyses: the
orchestrator constructed a fresh :class:`PointsTo` per classification,
the subprogram transformer built its own call graph, and each applied
fix re-verified the whole module.  The manager centralizes this:
analyses are *keyed computations* registered once and cached against the
module's mutation epoch (see :class:`repro.ir.module.Module`), and the
code that mutates the module (``FixTransaction``) reports what kind of
mutation happened so exactly the right entries are dropped.

Invalidation matrix (driven by :meth:`mutation_committed`):

======================  ==========  =========  =======  ==============  =========
mutation                points_to   callgraph  locator  verified(fn)    compiled
======================  ==========  =========  =======  ==============  =========
flush/fence insertion   preserved   preserved  preserv  touched only    touched
clone / call retarget   dropped     dropped    preserv  touched only    touched
rollback (clean)        preserved   preserved  preserv  preserved       touched
rollback (failed)       stale       stale      stale    stale           touched
======================  ==========  =========  =======  ==============  =========

The compiled program (the flat engine's input, see
:mod:`repro.interp.compile`) is *content*-exact, not shape-exact: even a
flush insertion changes the code stream, so unlike points-to it can
never be re-stamped across an epoch boundary.  Its entry is dropped on
every epoch change and recomputed through
:func:`~repro.interp.compile.cached_program`, which recompiles only
functions whose :func:`~repro.interp.compile.function_signature` moved
— so "touched" above costs one signature sweep plus recompiling the
actually-edited function(s).

Flush and fence instructions create no pointers, no allocation sites,
and no calls to defined functions, so the Andersen solution and the call
graph stay exact across them — they are only *revalidated* (their epoch
stamp advanced).  Inserting a ``_PM`` clone or retargeting a call site
changes both, so those are dropped along with everything registered as
depending on them (the PM classifications).  The locator indexes
original-program locations, which no fix rewrites, so it always
survives.  A clean rollback restores content exactly, hence everything
revalidates; a *failed* rollback leaves integrity unknown, so nothing
does and every entry recomputes on next use.

Failures cache too: if computing an analysis raised (e.g. the Andersen
fixpoint exhausted its budget), the same exception is re-raised on every
lookup at the same epoch instead of re-running the doomed computation.

When a :class:`~repro.analysis.diskcache.AnalysisDiskCache` is attached,
the ``points_to`` computation first consults the content-addressed store
(and seeds the call graph from the same entry) before solving, and
persists fresh solutions for other worker processes to reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

from ..budget import Budget
from ..errors import VerificationError
from ..ir.module import Module
from ..ir.verifier import verify_function
from ..interp.compile import cached_program
from .andersen import PointsTo
from .callgraph import CallGraph
from .diskcache import AnalysisDiskCache

#: Well-known analysis keys.  Classifications use
#: :func:`classification_key`; per-function verify state uses
#: ``(VERIFIED, name)``.
POINTS_TO = "points_to"
CALLGRAPH = "callgraph"
LOCATOR = "locator"
VERIFIED = "verified"
#: The incremental-revalidation baseline (a
#: :class:`~repro.revalidate.recording.RecordedRun`): the recorded
#: detection run the engine revalidates committed fixes against.  It
#: survives *every* mutation — flush/fence and structural alike — and
#: is only computed when missing: the revalidation engine itself
#: decides per-commit-batch whether its witness supports trace
#: synthesis (flush/fence insertions, or structural fixes via
#: callee-span rewriting), snapshot replay, or a full re-record.
REVALIDATION_INDEX = "revalidation_index"
#: The flat engine's register-compiled program (a
#: :class:`~repro.interp.compile.CompiledProgram`).  Epoch-bound by
#: construction: dropped on *every* epoch change (commit or rollback)
#: and recomputed incrementally.
COMPILED = "compiled_program"

#: Analyses a structural mutation (clone insertion, call retarget)
#: invalidates; flush/fence insertion preserves them.  The
#: revalidation index is *not* among them: the recorded baseline stays
#: valid as the thing fixes are revalidated against, and the engine
#: falls back to an internal re-record exactly when the structural
#: witness cannot support synthesis.
STRUCTURE_KEYS = (POINTS_TO, CALLGRAPH)


def classification_key(mode: str) -> Tuple[str, str]:
    """The cache key for a PM classification in the given mode."""
    return ("classification", mode)


@dataclass
class AnalysisStats:
    """Hit/miss counters, reported into the batch report."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    failures_replayed: int = 0
    disk_hits: int = 0
    disk_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "failures_replayed": self.failures_replayed,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
        }


@dataclass
class _Entry:
    """One cached result (or cached failure), stamped with its epoch."""

    epoch: int
    value: object = None
    failure: Optional[BaseException] = None


@dataclass
class _Registration:
    compute: Callable[[Module], object]
    depends: Tuple[Hashable, ...] = ()


class AnalysisManager:
    """Caches keyed analyses against a module's mutation epoch."""

    def __init__(
        self,
        module: Module,
        budget: Optional[Budget] = None,
        disk_cache: Optional[AnalysisDiskCache] = None,
        metrics=None,
    ):
        self.module = module
        #: Budget charged by the points-to fixpoint; assignable after
        #: construction (fault injection does) — read at compute time.
        self.budget = budget
        self.disk_cache = disk_cache
        self.stats = AnalysisStats()
        #: optional :class:`~repro.obs.metrics.MetricsRegistry`; every
        #: stats increment is mirrored into an ``analysis.*`` counter so
        #: batch observability sees cache behaviour without a separate
        #: reporting channel.
        self.metrics = metrics
        self._registry: Dict[Hashable, _Registration] = {}
        self._entries: Dict[Hashable, _Entry] = {}
        self.register(POINTS_TO, self._compute_points_to)
        self.register(CALLGRAPH, self._compute_callgraph)
        self.register(COMPILED, cached_program)

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump one stats counter (and its metrics mirror)."""
        setattr(self.stats, name, getattr(self.stats, name) + amount)
        if self.metrics is not None and amount:
            self.metrics.counter(f"analysis.{name}").inc(amount)

    # -- registration ---------------------------------------------------------

    def register(
        self,
        key: Hashable,
        compute: Callable[[Module], object],
        depends: Iterable[Hashable] = (),
        keep_cached: bool = False,
    ) -> None:
        """Register (or replace) the computation behind ``key``.

        ``depends`` names keys whose invalidation cascades to this one.
        Replacing a registration drops any cached entry unless
        ``keep_cached`` says the new computation is result-compatible.
        """
        self._registry[key] = _Registration(compute, tuple(depends))
        if not keep_cached:
            self._entries.pop(key, None)

    def registered(self, key: Hashable) -> bool:
        return key in self._registry

    # -- lookup ---------------------------------------------------------------

    def get(self, key: Hashable):
        """The analysis result for ``key``, computing it if the cached
        entry is missing or stale.  A cached *failure* re-raises."""
        entry = self._entries.get(key)
        if entry is not None and entry.epoch == self.module.epoch:
            if entry.failure is not None:
                self._count("failures_replayed")
                raise entry.failure
            self._count("hits")
            return entry.value
        registration = self._registry.get(key)
        if registration is None:
            raise KeyError(f"no analysis registered for key {key!r}")
        self._count("misses")
        epoch = self.module.epoch
        try:
            value = registration.compute(self.module)
        except Exception as exc:
            self._entries[key] = _Entry(epoch=epoch, failure=exc)
            raise
        self._entries[key] = _Entry(epoch=epoch, value=value)
        return value

    def cached(self, key: Hashable):
        """The cached value if present and current, else None (never
        computes, never replays failures)."""
        entry = self._entries.get(key)
        if (
            entry is not None
            and entry.epoch == self.module.epoch
            and entry.failure is None
        ):
            return entry.value
        return None

    # -- invalidation ---------------------------------------------------------

    def _dependents(self, seeds: Iterable[Hashable]) -> set:
        """Transitive closure of ``seeds`` over declared dependencies."""
        closed = set(seeds)
        changed = True
        while changed:
            changed = False
            for key, registration in self._registry.items():
                if key in closed:
                    continue
                if closed.intersection(registration.depends):
                    closed.add(key)
                    changed = True
        return closed

    def invalidate(self, keys: Iterable[Hashable]) -> None:
        """Drop the given entries and everything depending on them."""
        for key in self._dependents(keys):
            if self._entries.pop(key, None) is not None:
                self._count("invalidations")

    def invalidate_all(self) -> None:
        self._count("invalidations", len(self._entries))
        self._entries.clear()

    def _revalidate_surviving(self) -> None:
        # Cached *failures* describe a computation attempted against one
        # exact content state; carrying them across an epoch boundary
        # would e.g. keep replaying a verify failure of a rolled-back
        # mutation.  Values revalidate; failures drop.
        epoch = self.module.epoch
        for key in [k for k, e in self._entries.items() if e.failure is not None]:
            del self._entries[key]
        # The compiled program embeds the epoch it was built from and
        # tracks content exactly (a flush insertion changes it, a clean
        # rollback's epoch bump orphans it): never re-stamp it —
        # recompute (incrementally) on next use.
        compiled = self._entries.get(COMPILED)
        if compiled is not None and compiled.epoch != epoch:
            del self._entries[COMPILED]
            self._count("invalidations")
        for entry in self._entries.values():
            entry.epoch = epoch

    # -- mutation notifications (called by FixTransaction) -------------------

    def mutation_committed(
        self,
        touched_functions: Iterable[str] = (),
        structural: bool = False,
    ) -> None:
        """A transaction committed.

        ``touched_functions`` lose their per-function verified state;
        ``structural`` mutations (clone insertion, call retargeting)
        additionally drop the points-to solution, the call graph, and
        their dependents.  Everything else is revalidated at the new
        epoch — the invalidation matrix in the module docs.
        """
        epoch = self.module.epoch
        for name in touched_functions:
            entry = self._entries.get((VERIFIED, name))
            # Drop verified state computed against the *pre-mutation*
            # content; a scoped verify that already ran against the
            # post-mutation content (same epoch) stays valid.
            if entry is not None and entry.epoch != epoch:
                del self._entries[(VERIFIED, name)]
                self._count("invalidations")
        if structural:
            self.invalidate(STRUCTURE_KEYS)
        self._revalidate_surviving()

    def mutation_rolled_back(self, clean: bool = True) -> None:
        """A transaction rolled back.

        A clean rollback restored the exact prior content, so every
        cached entry is still correct and revalidates.  A failed
        rollback (partial undo) leaves the module in an unknown state:
        entries keep their stale epoch and recompute on next use.
        """
        if clean:
            self._revalidate_surviving()

    # -- scoped verification --------------------------------------------------

    def verify_scope(self, function_names: Iterable[str]) -> None:
        """Verify just the named functions, caching per-function passes.

        The fast path behind per-fix verification: a committed fix only
        drops the verified state of the functions it touched, so a batch
        of fixes to one function re-verifies one function, not the
        module.  Raises :class:`VerificationError` on the first failure
        (and caches it — a broken function stays broken at this epoch).
        """
        for name in sorted(set(function_names)):
            if not self.module.has_function(name):
                continue
            key = (VERIFIED, name)
            entry = self._entries.get(key)
            if entry is not None and entry.epoch == self.module.epoch:
                if entry.failure is not None:
                    self._count("failures_replayed")
                    raise entry.failure
                self._count("hits")
                continue
            self._count("misses")
            epoch = self.module.epoch
            try:
                verify_function(self.module.get_function(name))
            except VerificationError as exc:
                self._entries[key] = _Entry(epoch=epoch, failure=exc)
                raise
            self._entries[key] = _Entry(epoch=epoch, value=True)

    # -- built-in computations -------------------------------------------------

    def _compute_points_to(self, module: Module) -> PointsTo:
        if self.disk_cache is not None:
            restored = self.disk_cache.load(module)
            if restored is not None:
                points_to, callgraph = restored
                self._count("disk_hits")
                self._seed(CALLGRAPH, callgraph)
                return points_to
            self._count("disk_misses")
        points_to = PointsTo(module, budget=self.budget)
        if self.disk_cache is not None:
            self.disk_cache.store(module, points_to, self.get(CALLGRAPH))
        return points_to

    def _compute_callgraph(self, module: Module) -> CallGraph:
        return CallGraph(module)

    def seed(self, key: Hashable, value: object) -> None:
        """Install an externally computed value for ``key`` at the
        current epoch (e.g. a revalidation baseline recorded before the
        manager existed).  A current cached entry wins."""
        self._seed(key, value)

    def _seed(self, key: Hashable, value: object) -> None:
        """Install a value obtained as a by-product (disk-cache load)
        unless a current entry already exists."""
        entry = self._entries.get(key)
        if (
            entry is None
            or entry.epoch != self.module.epoch
            or entry.failure is not None
        ):
            self._entries[key] = _Entry(epoch=self.module.epoch, value=value)
