"""Synthesizing a post-fix trace from the baseline trace.

Flush and fence insertions are *observationally linear*: they change no
register value, no branch decision, no load result, and no store — so
the fixed module's execution visits exactly the baseline's instruction
sequence, plus the inserted instructions immediately after each dynamic
execution of their anchor.  The post-fix trace is therefore a pure
function of the baseline trace:

1. after every PM store event of a store anchor, splice the fix's
   flush events (and fence, for flush&fence fixes);
2. after every PM flush event of a flush anchor, splice the fence;
3. anchors can also execute against *volatile* targets (a shared helper
   like ``memcpy``): those executions record no store/flush event, but
   an inserted **fence still executes and records**.  The recording
   run's volatile-op side channel (:class:`VolAnchorOp` entries noted
   by the recording trace recorder) pins where those fences land;
4. renumber sequence ids densely (every recorded event consumes one
   ``seq``, exactly as a live recorder would);
5. recompute every flush event's ``had_work`` bit by replaying the
   cache-line durability state machine over the synthesized stream —
   an inserted flush can turn a later baseline flush redundant, and the
   redundant-flush *performance* reports key on that bit.

**Structural fixes** (a call site retargeted at a persistent clone
tree, paper §4.2.4) extend the same argument: a clone executes the same
instructions on the same values — allocas replay in the same order, so
even stack addresses coincide — and only the iids, the function names,
and the inserted covering flushes / trailing sfence differ.
:func:`synthesize_structural_trace` therefore *rewrites* the recorded
callee spans (:class:`~repro.revalidate.recording.CalleeSpan`) of each
retargeted call site instead of re-executing:

- events inside a span are re-mapped through the clone closure's
  original→clone iid map; stack frames at index >= the span's call
  depth (the cloned suffix of each stack) get clone names and iids;
- the clones' covering flushes splice after each re-mapped PM store,
  and earlier-committed flush fixes *copied into* the clones splice as
  re-keyed derived specs (a fix committed after the clone was cut is
  not in the clone body, and its original anchor iid no longer matches
  inside the span — exactly re-execution's behaviour);
- the call site's inserted sfence splices at span exit, after volatile
  ops inside the span's window and before those outside it;
- spans of *other* retargeted call sites nested inside a rewritten span
  are skipped: the outer clone carries its own retargeted copy of the
  inner call site (with no trailing fence), and the outer iid map
  already covers those events.

Field fidelity: events that exist in the baseline keep their recorded
stacks; synthesized flush/fence events derive theirs from the anchor
event (same caller frames, innermost frame swapped for the inserted
instruction).  Fences synthesized for *volatile* anchor executions have
no anchor event to borrow a stack from and get a single-frame stack;
the span-exit sfence borrows the outer frames from the first event
inside its span (single-frame when the span recorded none) — the
detector never reads fence stacks, so detection results (and every
canonical record derived from them) are still byte-identical to a real
re-execution; only those stack fields are approximate.

The returned ``changed_from`` index is the synthesized-stream position
of the first inserted *or re-mapped* event: every event before it is
the identical baseline object, which lets the engine resume the checker
from a memoized fork instead of re-feeding the prefix.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..memory.layout import line_of, lines_covering
from ..trace.events import (
    FenceEvent,
    FlushEvent,
    StackFrame,
    StoreEvent,
    TraceEvent,
)
from ..trace.trace import PMTrace
from .witness import (
    CloneSpec,
    InsertionSpec,
    StructuralSpec,
    SynthFence,
    SynthFlush,
)


class StructuralSynthesisError(ValueError):
    """The span record cannot be rewritten soundly (the engine falls
    back to a full re-record; synthesis never guesses)."""


class SynthesisResult:
    """A synthesized post-fix trace plus what it disturbed."""

    def __init__(
        self,
        trace: PMTrace,
        affected_lines: Set[int],
        changed_from: int,
        inserted_events: int,
    ):
        self.trace = trace
        #: cache lines (chains) whose durability history the mutations
        #: touch: the lines inserted flushes cover, every line with
        #: pending (dirty or queued) state at each inserted fence, and
        #: every line a re-mapped in-span store or flush touches.  Bug
        #: verdicts outside these chains cannot change.
        self.affected_lines = affected_lines
        #: first synthesized-stream index that differs from the
        #: baseline (== len(trace) when nothing changed)
        self.changed_from = changed_from
        self.inserted_events = inserted_events


class _Site:
    """One retargeted call site's rewrite state."""

    __slots__ = ("iid_map", "fn_map", "fence", "caller_function")

    def __init__(
        self,
        iid_map: Dict[int, int],
        fn_map: Dict[str, str],
        fence: Optional[SynthFence],
        caller_function: str,
    ):
        self.iid_map = iid_map
        self.fn_map = fn_map
        self.fence = fence
        self.caller_function = caller_function


def _rewrite_event(event: TraceEvent, site: _Site, depth: int) -> TraceEvent:
    """Re-map one in-span event through a site's clone closure.

    Frames at index >= ``depth`` (the callee frame and everything above
    it) belong to the cloned execution; frames below are the unchanged
    caller chain.  Instructions of non-cloned helpers called from a
    clone are not in the maps and pass through untouched — re-execution
    runs the very same helper.
    """
    iid_map = site.iid_map
    fn_map = site.fn_map
    stack = event.stack
    if len(stack) > depth:
        frames = list(stack[:depth])
        for frame in stack[depth:]:
            frames.append(
                StackFrame(
                    fn_map.get(frame.function, frame.function),
                    iid_map.get(frame.iid, frame.iid),
                    frame.loc,
                )
            )
        stack = tuple(frames)
    return replace(
        event,
        iid=iid_map.get(event.iid, event.iid),
        function=fn_map.get(event.function, event.function),
        stack=stack,
    )


def _synthesize_stream(
    baseline: PMTrace,
    vol_ops: Iterable,  # Iterable[VolAnchorOp]
    specs: Sequence[InsertionSpec],
    sites: Dict[int, _Site],
    outer_spans: Sequence,  # Sequence[CalleeSpan], disjoint, entry-sorted
) -> SynthesisResult:
    """The shared synthesis engine (flush/fence and structural tiers)."""
    store_plans: Dict[int, List[InsertionSpec]] = {}
    flush_plans: Dict[int, List[InsertionSpec]] = {}
    for spec in specs:
        plans = store_plans if spec.anchor_kind == "store" else flush_plans
        plans.setdefault(spec.anchor_iid, []).append(spec)

    events = baseline.events
    out: List[TraceEvent] = []
    affected: Set[int] = set()
    changed_from: Optional[int] = None
    inserted_events = 0
    #: line address -> [dirty, flushing] (mirrors CacheModel semantics;
    #: the checker only needs the booleans, never the store-seq sets)
    lines: Dict[int, List[bool]] = {}
    seq = 0

    def mark_changed() -> None:
        nonlocal changed_from
        if changed_from is None:
            changed_from = len(out)

    def sim_flush(line_addr: int, kind: str) -> bool:
        """Apply one flush to the simulation; return its had_work bit."""
        state = lines.get(line_addr)
        if state is None:
            return False
        dirty, flushing = state
        if dirty:
            if kind == "clflush":
                state[0] = state[1] = False
            else:
                state[0] = False
                state[1] = True
        # A clean line is redundant (no work) unless already queued
        # (coalesced); either way the state does not change.
        return dirty or flushing

    def pending_lines() -> List[int]:
        return [addr for addr, st in lines.items() if st[0] or st[1]]

    def emit_base(event: TraceEvent) -> None:
        nonlocal seq
        seq += 1
        if isinstance(event, StoreEvent):
            if event.space == "pm":
                which = 1 if event.nontemporal else 0
                for line_addr in lines_covering(event.addr, event.size):
                    lines.setdefault(line_addr, [False, False])[which] = True
        elif isinstance(event, FlushEvent):
            had_work = sim_flush(event.line_addr, event.flush_kind)
            if event.seq != seq or event.had_work != had_work:
                event = replace(event, seq=seq, had_work=had_work)
            out.append(event)
            return
        elif isinstance(event, FenceEvent):
            for state in lines.values():
                state[1] = False
        if event.seq != seq:
            event = replace(event, seq=seq)
        out.append(event)

    def emit_synth(spec: InsertionSpec, anchor_event: Optional[TraceEvent]) -> None:
        """Splice one fix's inserted events after an anchor execution.

        ``anchor_event`` is None for a volatile-target execution: the
        inserted flushes then flush volatile lines (no event, no PM
        effect) and only the fences record.
        """
        nonlocal seq, inserted_events
        for op in spec.ops:
            if isinstance(op, SynthFlush):
                if anchor_event is None:
                    continue
                mark_changed()
                addr = anchor_event.addr + op.offset
                line_addr = line_of(addr)
                affected.add(line_addr)
                had_work = sim_flush(line_addr, op.flush_kind)
                seq += 1
                inserted_events += 1
                out.append(
                    FlushEvent(
                        seq=seq,
                        iid=op.iid,
                        loc=op.loc,
                        function=anchor_event.function,
                        stack=anchor_event.stack[:-1]
                        + (StackFrame(anchor_event.function, op.iid, op.loc),),
                        addr=addr,
                        line_addr=line_addr,
                        flush_kind=op.flush_kind,
                        had_work=had_work,
                    )
                )
            else:
                assert isinstance(op, SynthFence)
                mark_changed()
                affected.update(pending_lines())
                for state in lines.values():
                    state[1] = False
                seq += 1
                inserted_events += 1
                if anchor_event is not None:
                    function = anchor_event.function
                    stack = anchor_event.stack[:-1] + (
                        StackFrame(function, op.iid, op.loc),
                    )
                else:
                    function = spec.function
                    stack = (StackFrame(function, op.iid, op.loc),)
                out.append(
                    FenceEvent(
                        seq=seq,
                        iid=op.iid,
                        loc=op.loc,
                        function=function,
                        stack=stack,
                        fence_kind=op.fence_kind,
                    )
                )

    def emit_vol_anchor(op) -> None:
        plans = store_plans if op.kind == "store" else flush_plans
        for spec in plans.get(op.iid, ()):
            emit_synth(spec, None)

    pending_vol = sorted(vol_ops, key=lambda op: op.pos)
    vol_index = 0

    # -- the span rewriter state ----------------------------------------------
    span_idx = 0
    active = None  # the CalleeSpan currently being rewritten
    active_site: Optional[_Site] = None
    #: caller frames below the active span's call site, captured from
    #: the first event inside the span (for the exit-fence stack)
    outer_stack: Optional[Tuple[StackFrame, ...]] = None

    def close_active() -> None:
        """Leave the active span: splice the call site's sfence."""
        nonlocal active, active_site, outer_stack, seq, inserted_events
        site = active_site
        assert site is not None
        fence = site.fence
        if fence is not None:
            mark_changed()
            affected.update(pending_lines())
            for state in lines.values():
                state[1] = False
            seq += 1
            inserted_events += 1
            stack = (outer_stack or ()) + (
                StackFrame(site.caller_function, fence.iid, fence.loc),
            )
            out.append(
                FenceEvent(
                    seq=seq,
                    iid=fence.iid,
                    loc=fence.loc,
                    function=site.caller_function,
                    stack=stack,
                    fence_kind=fence.fence_kind,
                )
            )
        active = None
        active_site = None
        outer_stack = None

    def drain(position: int) -> None:
        """Emit every action ordered before the base event at
        ``position``: pending volatile anchors, span exits (the sfence
        lands after volatile ops inside the span's window and before
        those outside it), and span entries."""
        nonlocal vol_index, span_idx, active, active_site
        while True:
            vol_ready = (
                vol_index < len(pending_vol)
                and pending_vol[vol_index].pos <= position
            )
            if active is not None:
                if active.exit <= position and not (
                    vol_ready and vol_index < active.vol_exit
                ):
                    close_active()
                    continue
            elif (
                span_idx < len(outer_spans)
                and outer_spans[span_idx].entry <= position
            ):
                span = outer_spans[span_idx]
                if not (vol_ready and vol_index < span.vol_entry):
                    active = span
                    active_site = sites[span.call_iid]
                    span_idx += 1
                    continue
            if vol_ready:
                op = pending_vol[vol_index]
                if active_site is not None:
                    mapped = active_site.iid_map.get(op.iid)
                    if mapped is not None:
                        op = replace(op, iid=mapped)
                emit_vol_anchor(op)
                vol_index += 1
                continue
            break

    for position, event in enumerate(events):
        drain(position)
        if active is not None:
            if outer_stack is None and len(event.stack) >= active.depth:
                outer_stack = event.stack[: active.depth - 1]
            rewritten = _rewrite_event(event, active_site, active.depth)
            mark_changed()
            if isinstance(event, StoreEvent):
                if event.space == "pm":
                    affected.update(lines_covering(event.addr, event.size))
            elif isinstance(event, FlushEvent):
                affected.add(event.line_addr)
            emit_base(rewritten)
            anchor_iid = rewritten.iid
        else:
            emit_base(event)
            anchor_iid = event.iid
        emitted = out[-1]
        if isinstance(event, StoreEvent) and anchor_iid in store_plans:
            for spec in store_plans[anchor_iid]:
                emit_synth(spec, emitted if event.space == "pm" else None)
        elif isinstance(event, FlushEvent) and anchor_iid in flush_plans:
            for spec in flush_plans[anchor_iid]:
                emit_synth(spec, emitted)
    drain(len(events))

    return SynthesisResult(
        trace=PMTrace(out),
        affected_lines=affected,
        changed_from=changed_from if changed_from is not None else len(out),
        inserted_events=inserted_events,
    )


def synthesize_fixed_trace(
    baseline: PMTrace,
    vol_ops: Iterable,  # Iterable[VolAnchorOp]
    specs: Iterable[InsertionSpec],
) -> SynthesisResult:
    """Build the trace the fixed module's re-execution would record."""
    return _synthesize_stream(baseline, vol_ops, list(specs), {}, ())


def synthesize_structural_trace(
    baseline: PMTrace,
    vol_ops: Iterable,  # Iterable[VolAnchorOp]
    spans: Iterable,  # Iterable[CalleeSpan]
    struct_specs: Iterable[StructuralSpec],
    specs: Iterable[InsertionSpec],
) -> SynthesisResult:
    """Build the post-fix trace for a commit batch containing hoisted
    (structural) fixes, without any execution.

    ``struct_specs`` are the committed call-site retargets with their
    clone closures; ``specs`` the batch's ordinary flush/fence
    insertions (applied outside spans by their original anchors, and
    inside spans as re-keyed derived specs when the fix pre-dates the
    clone).  Raises :class:`StructuralSynthesisError` when the span
    record cannot be rewritten soundly — the engine then falls back to
    a full re-record.
    """
    struct_specs = list(struct_specs)
    specs = list(specs)

    # The clone cache is shared across call sites (paper §6.4), so two
    # closures may carry the same clone: dedupe by name, and refuse
    # conflicting witnesses for one name (cannot happen through the
    # transformer, but synthesis never guesses).
    unique_clones: Dict[str, CloneSpec] = {}
    for sspec in struct_specs:
        for clone in sspec.clones:
            prev = unique_clones.setdefault(clone.clone_name, clone)
            if prev is not clone and prev != clone:
                raise StructuralSynthesisError(
                    f"conflicting witnesses for clone @{clone.clone_name}"
                )

    # Splice plans.  Per re-mapped store anchor, program order inside a
    # clone is: the store, its covering flushes (inserted directly
    # after), then any *copied* earlier-fix instructions — so clone
    # flush specs register before derived specs.
    all_specs: List[InsertionSpec] = list(specs)
    for clone in unique_clones.values():
        all_specs.extend(clone.flush_specs)
    for clone in unique_clones.values():
        iid_map = dict(clone.iid_map)
        for spec in specs:
            if spec.anchor_iid in iid_map and all(
                op.iid in iid_map for op in spec.ops
            ):
                all_specs.append(
                    InsertionSpec(
                        anchor_iid=iid_map[spec.anchor_iid],
                        anchor_kind=spec.anchor_kind,
                        function=(
                            clone.clone_name
                            if spec.function == clone.orig_name
                            else spec.function
                        ),
                        ops=tuple(
                            replace(op, iid=iid_map[op.iid]) for op in spec.ops
                        ),
                    )
                )

    sites: Dict[int, _Site] = {}
    for sspec in struct_specs:
        iid_map: Dict[int, int] = {}
        fn_map: Dict[str, str] = {}
        for clone in sspec.clones:
            iid_map.update(clone.iid_map)
            fn_map[clone.orig_name] = clone.clone_name
        if sspec.call_iid in sites:
            raise StructuralSynthesisError(
                f"two structural fixes at call #{sspec.call_iid}"
            )
        sites[sspec.call_iid] = _Site(
            iid_map, fn_map, sspec.fence, sspec.caller_function
        )

    # Keep only the outermost span per dynamic nest: an inner relevant
    # span sits inside the outer clone's own retargeted (and unfenced)
    # copy of its call site, which the outer iid map already rewrites.
    # Anything else that overlaps is a malformed record.
    relevant = [s for s in spans if s.call_iid in sites]
    relevant.sort(key=lambda s: (s.entry, s.vol_entry, -s.exit, -s.vol_exit))
    outer: List = []
    for span in relevant:
        if span.entry > span.exit or span.vol_entry > span.vol_exit:
            raise StructuralSynthesisError("inverted callee span")
        if outer and span.entry < outer[-1].exit:
            prev = outer[-1]
            if (
                span.exit > prev.exit
                or span.vol_entry < prev.vol_entry
                or span.vol_exit > prev.vol_exit
            ):
                raise StructuralSynthesisError("overlapping callee spans")
            continue
        if outer and span.vol_entry < outer[-1].vol_exit:
            raise StructuralSynthesisError("overlapping volatile windows")
        outer.append(span)

    return _synthesize_stream(baseline, vol_ops, all_specs, sites, outer)
