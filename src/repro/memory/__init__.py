"""Persistent-memory hardware model.

Provides the simulated address space (volatile heap / stack / PM pool),
the CPU cache durability model (dirty lines, weakly ordered flushes,
fences), the durable PM image, and crash-state enumeration.
"""

from .cache import CacheModel, LineState
from .crash import CrashExplorer, CrashState
from .layout import (
    AddressSpace,
    CACHE_LINE,
    PM_BASE,
    Region,
    STACK_BASE,
    VOL_BASE,
    line_of,
    lines_covering,
)
from .persistence import PersistentImage
from .pool import MachinePool

__all__ = [
    "AddressSpace",
    "CACHE_LINE",
    "CacheModel",
    "CrashExplorer",
    "CrashState",
    "LineState",
    "line_of",
    "lines_covering",
    "MachinePool",
    "PersistentImage",
    "PM_BASE",
    "Region",
    "STACK_BASE",
    "VOL_BASE",
]
