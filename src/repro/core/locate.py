"""Step 2 of the pipeline: mapping trace events back to IR instructions.

The paper calls this "the main engineering challenge ... mapping from
source lines to LLVM IR using debug information".  Trace events carry
both the instruction id and the debug location; the locator prefers the
id (exact when fixing the very module that was traced) and falls back
to debug-location matching (necessary when the module was re-parsed
from text, which renumbers instruction ids — the analog of rebuilding
the bitcode).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type, TypeVar

from ..errors import LocateError
from ..ir.debuginfo import DebugLoc
from ..ir.instructions import Call, Flush, Instruction, Store
from ..ir.module import Module
from ..trace.events import StackFrame, TraceEvent

T = TypeVar("T", bound=Instruction)


class Locator:
    """Resolves (function, location, iid) triples to instructions."""

    def __init__(self, module: Module):
        self.module = module
        self._by_iid: Dict[int, Instruction] = {}
        self._by_loc: Dict[Tuple[str, DebugLoc], List[Instruction]] = {}
        for fn in module.functions.values():
            for instr in fn.instructions():
                self._by_iid[instr.iid] = instr
                self._by_loc.setdefault((fn.name, instr.loc), []).append(instr)

    def _resolve(
        self, function: str, loc: DebugLoc, iid: int, expect: Type[T]
    ) -> T:
        instr = self._by_iid.get(iid)
        if (
            instr is not None
            and isinstance(instr, expect)
            and instr.function is not None
            and instr.function.name == function
            and instr.loc == loc
        ):
            return instr
        candidates = [
            i for i in self._by_loc.get((function, loc), []) if isinstance(i, expect)
        ]
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise LocateError(
                f"no {expect.__name__} at {function}:{loc} (trace iid {iid})"
            )
        raise LocateError(
            f"ambiguous {expect.__name__} at {function}:{loc}: "
            f"{len(candidates)} candidates"
        )

    # -- public API -------------------------------------------------------------

    def locate_event(self, event: TraceEvent, expect: Type[T]) -> T:
        """The instruction that produced a trace event.

        Re-raises :class:`LocateError` with the event's trace sequence
        number attached, so a quarantine record names the exact record
        of a multi-hundred-MB log that failed to resolve.
        """
        try:
            return self._resolve(event.function, event.loc, event.iid, expect)
        except LocateError as exc:
            raise LocateError(f"trace seq {event.seq}: {exc}") from exc

    def locate_store(self, event: TraceEvent) -> Store:
        return self.locate_event(event, Store)

    def locate_flush(self, event: TraceEvent) -> Flush:
        return self.locate_event(event, Flush)

    def locate_call_site(self, frame: StackFrame) -> Optional[Call]:
        """The call instruction of a (caller) stack frame.

        Returns None for host frames (``<exit>`` or driver-level calls
        that have no IR call site).
        """
        if frame.function not in self.module.functions:
            return None
        try:
            return self._resolve(frame.function, frame.loc, frame.iid, Call)
        except LocateError:
            return None
