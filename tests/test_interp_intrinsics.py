"""Unit tests for interpreter intrinsics and the Machine registry."""

import pytest

from repro.errors import InterpreterError, TrapError
from repro.interp import Interpreter, SimulatedCrash, intrinsic_names, is_intrinsic
from repro.ir import I64, ModuleBuilder, PTR


def interp_for(build):
    mb = ModuleBuilder("t")
    build(mb)
    return Interpreter(mb.module)


class TestAllocation:
    def test_pm_alloc_returns_pm_address(self):
        def build(mb):
            b = mb.function("main", [], PTR)
            b.ret(b.call("pm_alloc", [64], PTR))

        interp = interp_for(build)
        addr = interp.call("main").value
        assert interp.machine.space.is_pm(addr)

    def test_vol_alloc_returns_volatile_address(self):
        def build(mb):
            b = mb.function("main", [], PTR)
            b.ret(b.call("vol_alloc", [64], PTR))

        interp = interp_for(build)
        addr = interp.call("main").value
        assert not interp.machine.space.is_pm(addr)

    def test_allocation_registry_records_sites(self):
        def build(mb):
            b = mb.function("main", [], PTR)
            b.ret(b.call("pm_alloc", [64], PTR))

        interp = interp_for(build)
        addr = interp.call("main").value
        site = interp.machine.site_of_addr(addr)
        assert site is not None and site.startswith("call:")
        assert interp.machine.site_of_addr(addr + 63) == site
        assert interp.machine.site_of_addr(addr + 64) != site

    def test_pm_root_idempotent(self):
        def build(mb):
            b = mb.function("main", [], I64)
            r1 = b.call("pm_root", [128], PTR)
            r2 = b.call("pm_root", [128], PTR)
            same = b.icmp("eq", r1, r2)
            b.ret(b.cast("zext", same, I64))

        assert interp_for(build).call("main").value == 1

    def test_pm_root_regrow_rejected(self):
        def build(mb):
            b = mb.function("main", [], I64)
            b.call("pm_root", [64], PTR)
            b.call("pm_root", [128], PTR)
            b.ret(0)

        with pytest.raises(InterpreterError, match="pm_root"):
            interp_for(build).call("main")


class TestObservability:
    def test_emit_collects_output(self):
        def build(mb):
            b = mb.function("main", [], I64)
            b.call("emit", [11])
            b.call("emit", [22])
            b.ret(0)

        interp = interp_for(build)
        result = interp.call("main")
        assert result.output == [11, 22]
        assert interp.output == [11, 22]

    def test_require_passes_and_fails(self):
        def build(mb):
            b = mb.function("main", [("x", I64)], I64)
            b.call("require", [b.function.args[0]])
            b.ret(1)

        interp = interp_for(build)
        assert interp.call("main", [5]).value == 1
        with pytest.raises(TrapError):
            interp.call("main", [0])

    def test_crash_now(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            b.store(9, p)
            b.call("crash_now", [])
            b.ret(0)

        interp = interp_for(build)
        with pytest.raises(SimulatedCrash):
            interp.call("main")
        # the store never became durable
        assert interp.machine.image.line_divergence() != []
        # and the crash recorded a boundary event
        assert interp.machine.trace.boundaries()[-1].label == "crash"

    def test_fnv1a64_matches_reference(self):
        def build(mb):
            mb.global_("data", 8, "vol", b"abcdefgh")
            b = mb.function("main", [], I64)
            b.ret(b.call("fnv1a64", [mb.module.get_global("data"), 8], I64))

        reference = 0xCBF29CE484222325
        for byte in b"abcdefgh":
            reference = ((reference ^ byte) * 0x100000001B3) & ((1 << 64) - 1)
        assert interp_for(build).call("main").value == reference


class TestCheckpointAndPMTest:
    def test_checkpoint_records_boundary(self):
        def build(mb):
            b = mb.function("main", [], I64)
            b.call("checkpoint", [7])
            b.ret(0)

        interp = interp_for(build)
        interp.call("main")
        trace = interp.finish()
        labels = [e.label for e in trace.boundaries()]
        assert labels == ["ckpt7", "exit"]

    def test_pmtest_assertion_label(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [64], PTR)
            addr = b.cast("ptrtoint", p, I64)
            back = b.cast("inttoptr", addr, PTR)
            b.call("pmtest_assert_persisted", [back, 16])
            b.ret(0)

        interp = interp_for(build)
        interp.call("main")
        trace = interp.finish()
        pmtest = [e for e in trace.boundaries() if e.label.startswith("pmtest:")]
        assert len(pmtest) == 1
        assert pmtest[0].label.endswith(":16")


class TestRegistry:
    def test_is_intrinsic(self):
        assert is_intrinsic("pm_alloc")
        assert not is_intrinsic("memcpy")  # memcpy is IR, not intrinsic

    def test_names_listing(self):
        names = intrinsic_names()
        assert "checkpoint" in names and "emit" in names

    def test_finish_is_terminal(self):
        def build(mb):
            b = mb.function("main", [], I64)
            b.ret(0)

        interp = interp_for(build)
        interp.call("main")
        interp.finish()
        with pytest.raises(InterpreterError, match="finished"):
            interp.call("main")
