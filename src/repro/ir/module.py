"""Modules: the unit of analysis, transformation, and execution."""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import IRError
from .function import Function
from .instructions import Instruction
from .types import Type, VOID
from .values import GlobalVariable


class Module:
    """A collection of functions and globals — a whole program.

    Hippocrates operates on whole-program IR ("whole-program LLVM" in
    the paper); all of its passes take a :class:`Module`.

    Every structural mutation — function add/remove, global add, block
    creation, instruction insert/remove anywhere in the module — bumps a
    monotonic **mutation epoch** (:attr:`epoch`).  Cached analyses (see
    :class:`~repro.analysis.manager.AnalysisManager`) are validated
    against it: equal epoch means the module provably has not changed
    since the analysis ran.  The complementary :meth:`fingerprint` is a
    deterministic *content* hash — equal across processes, builders, and
    parser→printer round trips — used to key the content-addressed
    on-disk analysis cache.
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self._epoch = 0
        self._fingerprint: Optional[Tuple[int, str]] = None

    # -- mutation tracking ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; bumped by every structural change."""
        return self._epoch

    def bump_epoch(self) -> None:
        """Record a structural mutation (invalidates cached analyses).

        Called by every mutation primitive (module-level construction,
        block insertion/removal, builder emission, call retargeting);
        manual passes mutating IR through other means must call it
        themselves.
        """
        self._epoch += 1

    def fingerprint(self) -> str:
        """Deterministic SHA-256 of the module's textual content.

        Content-addressed and process-independent: two modules that
        print identically — including a module re-parsed from its own
        printed text — share a fingerprint, regardless of instruction
        ids or construction order.  Cached against :attr:`epoch`, so
        repeated calls between mutations are free.
        """
        if self._fingerprint is None or self._fingerprint[0] != self._epoch:
            from .printer import format_module

            digest = hashlib.sha256(
                format_module(self).encode("utf-8")
            ).hexdigest()
            self._fingerprint = (self._epoch, digest)
        return self._fingerprint[1]

    # -- construction -----------------------------------------------------------

    def add_function(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]] = (),
        return_type: Type = VOID,
        source_file: str = "",
    ) -> Function:
        if name in self.functions:
            raise IRError(f"duplicate function {name!r}")
        fn = Function(name, params, return_type, source_file or f"{self.name}.c")
        fn.parent = self
        self.functions[name] = fn
        self.bump_epoch()
        return fn

    def insert_function(self, fn: Function) -> Function:
        """Insert an already-built function (used by cloning)."""
        if fn.name in self.functions:
            raise IRError(f"duplicate function {fn.name!r}")
        fn.parent = self
        self.functions[fn.name] = fn
        self.bump_epoch()
        return fn

    def remove_function(self, name: str) -> Optional[Function]:
        """Remove a function by name (used by fix rollback).

        Returns the removed function, or None if it was not present.
        """
        fn = self.functions.pop(name, None)
        if fn is not None:
            fn.parent = None
            self.bump_epoch()
        return fn

    def add_global(
        self,
        name: str,
        size: int,
        space: str = "vol",
        initializer: Optional[bytes] = None,
    ) -> GlobalVariable:
        if name in self.globals:
            raise IRError(f"duplicate global {name!r}")
        gv = GlobalVariable(name, size, space, initializer)
        self.globals[name] = gv
        self.bump_epoch()
        return gv

    # -- lookup -------------------------------------------------------------------

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function {name!r} in module {self.name!r}") from None

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"no global {name!r} in module {self.name!r}") from None

    def find_instruction(self, iid: int) -> Optional[Instruction]:
        for fn in self.functions.values():
            instr = fn.find_instruction(iid)
            if instr is not None:
                return instr
        return None

    # -- metrics --------------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for fn in self.functions.values():
            yield from fn.instructions()

    def instruction_count(self) -> int:
        """Total instruction count — the module's "lines of IR".

        Used for the code-bloat measurements (paper §6.4) and the KLOC
        column of the offline-overhead table (Fig 5).
        """
        return sum(fn.instruction_count() for fn in self.functions.values())

    def function_names(self) -> List[str]:
        return sorted(self.functions)

    def __repr__(self) -> str:
        return (
            f"<Module {self.name!r}: {len(self.functions)} functions, "
            f"{self.instruction_count()} instructions>"
        )
