"""E7 — §6.1: Full-AA and Trace-AA produce identical fixes.

The paper: "Both of these heuristics produced the same set of fixes on
all the systems we test, resulting in identical end binaries."  We
compare the complete fixed-module text for every corpus target plus
Redis.
"""

from repro.analysis import classify_full_aa, classify_trace_aa
from repro.apps import KVStore, build_kvstore
from repro.bench import heuristic_table, redis_trace_workload, run_heuristic_comparison

from conftest import save_table


def test_fig7_heuristic_equivalence(benchmark):
    outcomes = run_heuristic_comparison()
    save_table("fig7_heuristics.txt", heuristic_table(outcomes))

    assert len(outcomes) == 14  # 13 corpus cases + Redis
    for target, identical in outcomes:
        assert identical, f"{target}: Full-AA and Trace-AA diverged"

    # Benchmark kernel: one classification pass of each flavor.
    module = build_kvstore("noflush")
    store = KVStore(module)
    redis_trace_workload(store)
    trace = store.finish()
    machine = store.machine

    def classify_both():
        classify_full_aa(module)
        classify_trace_aa(module, trace, machine)

    benchmark(classify_both)
