"""Worker subprocess entry: ``python -m repro.supervisor.worker``.

One worker runs one task and exits — process-per-task keeps the blast
radius of a crash, hang, or leak to a single task, and lets the
supervisor's watchdog use plain SIGKILL with no cleanup protocol.

Protocol (line-oriented, over stdio):

- stdin: a single JSON object — the :class:`~repro.supervisor.tasks.
  RepairTask` spec.
- stdout: ``HB <n>`` heartbeat lines every ``REPRO_WORKER_HEARTBEAT``
  seconds from a daemon thread (so a worker stuck in a long Andersen
  fixpoint still heartbeats, while a *dead* one goes silent);
  optionally one ``STATS <json>`` line — volatile analysis-cache
  counters (hit/miss), reported separately from the result precisely so
  they never enter the deterministic record or the journal — then
  exactly one terminal line:

  - ``RESULT <json>`` — the deterministic task result record, or
  - ``FAIL <json>`` — ``{"error_type", "error", "traceback"}``.

Exit codes: 0 after ``RESULT``, 3 after ``FAIL``, 2 on a protocol
error (bad spec).  The supervisor trusts the *lines*, not the exit
code — a worker that dies after ``RESULT`` already delivered its work.

Fault injection (for the resilience harness) rides on environment
variables so production specs stay clean:

- ``REPRO_WORKER_FAULT=hang``  — heartbeat normally but never finish
  (a stuck fixpoint; the watchdog must kill us);
- ``REPRO_WORKER_FAULT=kill``  — SIGKILL ourselves mid-task (silent
  death; heartbeat tracking must notice, not just waitpid).
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
import traceback


def _start_heartbeats(interval: float) -> None:
    def beat() -> None:
        n = 0
        while True:
            n += 1
            print(f"HB {n}", flush=True)
            time.sleep(interval)

    thread = threading.Thread(target=beat, name="heartbeat", daemon=True)
    thread.start()


def _inject_fault() -> None:
    fault = os.environ.get("REPRO_WORKER_FAULT", "")
    if fault == "hang":
        while True:  # pragma: no cover - killed by the watchdog
            time.sleep(0.5)
    if fault == "kill":
        os.kill(os.getpid(), signal.SIGKILL)


def main() -> int:
    from .tasks import RepairTask, execute_task

    interval = float(os.environ.get("REPRO_WORKER_HEARTBEAT", "0.2"))
    try:
        spec = json.loads(sys.stdin.read())
        task = RepairTask.from_spec(spec)
    except Exception as exc:
        print(f"FAIL {json.dumps({'error_type': type(exc).__name__, 'error': str(exc), 'traceback': ''})}",
              flush=True)
        return 2
    _start_heartbeats(interval)
    _inject_fault()
    try:
        result = execute_task(task)
    except Exception as exc:
        payload = {
            "error_type": type(exc).__name__,
            "error": str(exc),
            "traceback": traceback.format_exc(),
        }
        print(f"FAIL {json.dumps(payload)}", flush=True)
        return 3
    if result.stats is not None:
        print(f"STATS {json.dumps(result.stats, sort_keys=True)}", flush=True)
    print(f"RESULT {json.dumps(result.record, sort_keys=True)}", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
