"""The fault-injection harness: plans, injectors, and the campaign."""

from __future__ import annotations

import pytest

from conftest import build_listing5_module, drive_main
from repro.corpus.bugs import all_cases
from repro.detect import pmemcheck_run
from repro.faultinject import (
    FaultPlan,
    corrupt_trace_text,
    default_plans,
    run_campaign,
)
from repro.faultinject.campaign import run_one
from repro.trace import dump_trace, load_trace
from repro.errors import TraceError


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan("flux-capacitor")
    with pytest.raises(ValueError):
        FaultPlan("locator", mode="explode")
    plan = FaultPlan("locator", nth=3)
    assert plan.name == "locator:raise@3"
    assert "locator" in str(plan.exception())


def test_default_plans_cover_every_component():
    plans = default_plans()
    assert {p.target for p in plans} == {
        "parser", "locator", "classifier", "transformer", "budget",
    }
    assert {p.mode for p in plans} == {
        "raise-at-nth", "corrupt-trace-line", "budget-exhaustion",
    }


# ---------------------------------------------------------------------------
# trace corruption
# ---------------------------------------------------------------------------


def _listing5_trace_text():
    module = build_listing5_module()
    _, trace, _ = pmemcheck_run(module, drive_main)
    return dump_trace(trace)


def test_corruption_is_deterministic_and_unparseable():
    text = _listing5_trace_text()
    a, damaged_a = corrupt_trace_text(text, seed=5, lines=2)
    b, damaged_b = corrupt_trace_text(text, seed=5, lines=2)
    assert a == b and damaged_a == damaged_b  # seeded => reproducible
    c, _ = corrupt_trace_text(text, seed=6, lines=2)
    assert c != a  # different seed => different damage

    with pytest.raises(TraceError):
        load_trace(a)  # strict ingestion must refuse the damage
    warnings = []
    survivors = load_trace(a, strict=False, warnings=warnings)
    assert [w.line for w in warnings] == damaged_a
    assert len(survivors) == len(load_trace(text)) - len(damaged_a)


def test_corruption_never_touches_boundaries():
    text = _listing5_trace_text()
    corrupted, damaged = corrupt_trace_text(text, seed=1, lines=99)
    rows = text.splitlines()
    for line_no in damaged:
        assert not rows[line_no - 1].startswith("BOUNDARY;")
    # every BOUNDARY record survives verbatim
    assert sum(r.startswith("BOUNDARY;") for r in corrupted.splitlines()) == sum(
        r.startswith("BOUNDARY;") for r in rows
    )


# ---------------------------------------------------------------------------
# the campaign
# ---------------------------------------------------------------------------


def test_run_one_locator_fault_quarantines_exactly_one_bug():
    case = next(c for c in all_cases() if c.case_id == "P-CLHT")
    record = run_one(case, FaultPlan("locator", nth=1))
    assert record.ok, record.describe()
    assert record.fault_fired
    assert record.quarantined == 1
    assert record.bugs_remaining == 1
    assert record.bugs_detected == 2


def test_run_one_dormant_fault_is_a_clean_run():
    case = all_cases()[0]  # PMDK-447 has a single bug
    record = run_one(case, FaultPlan("locator", nth=99))
    assert record.ok, record.describe()
    assert not record.fault_fired
    assert record.bugs_remaining == 0


def test_full_campaign_holds_every_invariant():
    """The ISSUE's acceptance gate: every fault plan over the whole
    23-bug corpus completes, quarantines only the targeted bugs, fixes
    all others, and never harms the module."""
    progress = []
    result = run_campaign(progress=progress.append)
    failing = "\n".join(r.describe() for r in result.failures())
    assert result.ok, failing
    assert len(result.records) == len(all_cases()) * len(default_plans())
    assert len(progress) == len(result.records)
    # the matrix is not vacuous: most plans actually fire
    assert result.fired_count >= len(result.records) // 2
    assert "all invariants held" in result.summary()
