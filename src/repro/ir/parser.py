"""Parser for the textual IR form produced by :mod:`repro.ir.printer`.

The parser is line-oriented: every instruction occupies one line, block
labels end with ``:``, and functions are delimited by ``func ... {`` /
``}``.  Forward references to blocks are resolved with a fixup pass;
forward references to values are an error (the IR requires definition
before use in textual order, which the builder guarantees).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import IRParseError
from .basicblock import BasicBlock
from .debuginfo import DebugLoc
from .function import Function
from .instructions import (
    Alloca,
    BINARY_OPS,
    BinOp,
    Branch,
    Call,
    Cast,
    Fence,
    Flush,
    Gep,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    Trap,
)
from .module import Module
from .types import Type, VOID, type_from_name
from .values import Constant, Value

_MODULE_RE = re.compile(r'^module\s+"([^"]+)"$')
_GLOBAL_RE = re.compile(
    r"^global\s+@(\w[\w.]*)\s+(\d+)\s+(pm|vol)(?:\s+init\s+([0-9a-fA-F]+))?$"
)
_FUNC_RE = re.compile(r"^func\s+@([\w.$]+)\((.*)\)\s*->\s*(\w+)\s*(\{)?$")
_PARAM_RE = re.compile(r"^%(\w[\w.]*)\s*:\s*(\w+)$")
_LABEL_RE = re.compile(r"^([\w.]+):$")
_LOC_RE = re.compile(r"\s+!([^\s!]+:\d+)\s*$")
_CALL_RE = re.compile(r"^call\s+(\w+)\s+@([\w.$]+)\((.*)\)$")


class _FunctionParser:
    """Parses the body of a single function."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.values: Dict[str, Value] = {a.name: a for a in fn.args}
        self.blocks: Dict[str, BasicBlock] = {}
        self.current: Optional[BasicBlock] = None
        # (branch-instr, attr-name, label) fixups for forward block refs
        self.fixups: List[Tuple[Instruction, str, str]] = []

    def block(self, label: str) -> BasicBlock:
        if label not in self.blocks:
            block = BasicBlock(label, self.fn)
            self.blocks[label] = block
            self.fn.blocks.append(block)
        return self.blocks[label]

    def _placeholder_block(self, label: str) -> BasicBlock:
        """Return the block if it exists, else a placeholder resolved later."""
        return self.blocks.get(label) or self.block(label)

    def value(self, text: str, type_: Type, lineno: int) -> Value:
        text = text.strip()
        if text.startswith("%"):
            name = text[1:]
            if name not in self.values:
                raise IRParseError(f"use of undefined value %{name}", lineno)
            return self.values[name]
        if text.startswith("@"):
            module = self.fn.parent
            if module is None or text[1:] not in module.globals:
                raise IRParseError(f"unknown global {text}", lineno)
            return module.globals[text[1:]]
        try:
            literal = int(text, 0)
        except ValueError:
            raise IRParseError(f"bad operand {text!r}", lineno) from None
        return Constant(literal, type_)

    def typed_value(self, text: str, lineno: int) -> Value:
        """Parse ``<type> <operand>``."""
        parts = text.strip().split(None, 1)
        if len(parts) != 2:
            raise IRParseError(f"expected 'type value', got {text!r}", lineno)
        return self.value(parts[1], type_from_name(parts[0]), lineno)

    def define(self, name: str, value: Value, lineno: int) -> None:
        if name in self.values:
            raise IRParseError(f"redefinition of %{name}", lineno)
        value.name = name
        self.values[name] = value

    # -- instruction parsing ---------------------------------------------------

    def parse_line(self, line: str, lineno: int) -> None:
        loc: Optional[DebugLoc] = None
        loc_match = _LOC_RE.search(line)
        if loc_match:
            loc = DebugLoc.parse(loc_match.group(1))
            line = line[: loc_match.start()].rstrip()

        label = _LABEL_RE.match(line)
        if label:
            self.current = self.block(label.group(1))
            return
        if self.current is None:
            raise IRParseError("instruction outside any block", lineno)

        result_name = None
        if line.startswith("%"):
            result_name, _, rest = line.partition("=")
            result_name = result_name.strip()[1:]
            line = rest.strip()

        instr = self._parse_instruction(line, lineno)
        if loc is not None:
            instr.loc = loc
        if result_name is not None:
            if instr.type.is_void:
                raise IRParseError("void instruction cannot define a value", lineno)
            self.define(result_name, instr, lineno)
        self.current.append(instr)

    def _parse_instruction(self, line: str, lineno: int) -> Instruction:
        op, _, rest = line.partition(" ")
        rest = rest.strip()
        if op == "alloca":
            return Alloca(int(rest))
        if op == "load":
            type_text, _, ptr_text = rest.partition(",")
            return Load(
                self.value(ptr_text, type_from_name("ptr"), lineno),
                type_from_name(type_text.strip()),
            )
        if op in ("store", "store.nt"):
            value_text, _, ptr_text = rest.partition(",")
            value = self.typed_value(value_text, lineno)
            return Store(
                value,
                self.value(ptr_text, type_from_name("ptr"), lineno),
                nontemporal=(op == "store.nt"),
            )
        if op == "gep":
            base_text, _, off_text = rest.partition(",")
            base = self.value(base_text, type_from_name("ptr"), lineno)
            return Gep(base, self.typed_value(off_text, lineno))
        if op in BINARY_OPS:
            type_text, _, operands = rest.partition(" ")
            lhs_text, _, rhs_text = operands.partition(",")
            type_ = type_from_name(type_text)
            return BinOp(
                op,
                self.value(lhs_text, type_, lineno),
                self.value(rhs_text, type_, lineno),
            )
        if op == "icmp":
            pred, _, rest2 = rest.partition(" ")
            type_text, _, operands = rest2.strip().partition(" ")
            lhs_text, _, rhs_text = operands.partition(",")
            type_ = type_from_name(type_text)
            return ICmp(
                pred,
                self.value(lhs_text, type_, lineno),
                self.value(rhs_text, type_, lineno),
            )
        if op == "select":
            cond_text, _, rest2 = rest.partition(",")
            cond = self.value(cond_text, type_from_name("i1"), lineno)
            arm_text = rest2.strip()
            type_text, _, arms = arm_text.partition(" ")
            a_text, _, b_text = arms.partition(",")
            type_ = type_from_name(type_text)
            return Select(
                cond,
                self.value(a_text, type_, lineno),
                self.value(b_text, type_, lineno),
            )
        if op == "cast":
            match = re.match(r"^(\w+)\s+(\w+)\s+(\S+)\s+to\s+(\w+)$", rest)
            if not match:
                raise IRParseError(f"bad cast: {rest!r}", lineno)
            kind, from_type, value_text, to_type = match.groups()
            return Cast(
                kind,
                self.value(value_text, type_from_name(from_type), lineno),
                type_from_name(to_type),
            )
        if op == "br":
            cond_text, _, targets = rest.partition(",")
            then_text, _, else_text = targets.partition(",")
            cond = self.value(cond_text, type_from_name("i1"), lineno)
            instr = Branch(
                cond,
                self._placeholder_block(then_text.strip().lstrip("%")),
                self._placeholder_block(else_text.strip().lstrip("%")),
            )
            return instr
        if op == "jmp":
            return Jump(self._placeholder_block(rest.strip().lstrip("%")))
        if op == "ret" or line == "ret":
            if not rest:
                return Ret()
            return Ret(self.typed_value(rest, lineno))
        if line == "trap":
            return Trap()
        if op == "call":
            match = _CALL_RE.match(line)
            if not match:
                raise IRParseError(f"bad call: {line!r}", lineno)
            ret_type, callee, args_text = match.groups()
            args = []
            if args_text.strip():
                depth = 0
                current: List[str] = []
                pieces: List[str] = []
                for ch in args_text:
                    if ch == "," and depth == 0:
                        pieces.append("".join(current))
                        current = []
                    else:
                        if ch == "(":
                            depth += 1
                        elif ch == ")":
                            depth -= 1
                        current.append(ch)
                pieces.append("".join(current))
                args = [self.typed_value(p, lineno) for p in pieces]
            return Call(callee, args, type_from_name(ret_type))
        if op == "flush":
            kind, _, ptr_text = rest.partition(",")
            return Flush(
                self.value(ptr_text, type_from_name("ptr"), lineno), kind.strip()
            )
        if op == "fence":
            return Fence(rest.strip())
        raise IRParseError(f"unknown instruction: {line!r}", lineno)


def parse_module(text: str) -> Module:
    """Parse a textual module (the inverse of ``format_module``)."""
    module = Module()
    fn_parser: Optional[_FunctionParser] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip() if raw.lstrip().startswith(";") else raw.strip()
        if not line:
            continue

        if fn_parser is not None:
            if line == "}":
                fn_parser = None
                continue
            fn_parser.parse_line(line, lineno)
            continue

        module_match = _MODULE_RE.match(line)
        if module_match:
            module.name = module_match.group(1)
            continue
        global_match = _GLOBAL_RE.match(line)
        if global_match:
            name, size, space, init_hex = global_match.groups()
            initializer = bytes.fromhex(init_hex) if init_hex else None
            module.add_global(name, int(size), space, initializer)
            continue
        func_match = _FUNC_RE.match(line)
        if func_match:
            name, params_text, ret_name, has_body = func_match.groups()
            params = []
            if params_text.strip():
                for piece in params_text.split(","):
                    param_match = _PARAM_RE.match(piece.strip())
                    if not param_match:
                        raise IRParseError(f"bad parameter {piece!r}", lineno)
                    params.append(
                        (param_match.group(1), type_from_name(param_match.group(2)))
                    )
            fn = module.add_function(name, params, type_from_name(ret_name))
            if has_body:
                fn_parser = _FunctionParser(fn)
            continue
        raise IRParseError(f"unexpected top-level line: {line!r}", lineno)

    if fn_parser is not None:
        raise IRParseError("unterminated function body (missing '}')")
    return module
