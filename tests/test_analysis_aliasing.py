"""Unit tests for the PM classifiers and heuristic scoring."""

from repro.analysis import (
    CallGraph,
    PointsTo,
    classify_full_aa,
    classify_trace_aa,
)
from repro.detect import pmemcheck_run
from repro.ir import I64, ModuleBuilder, PTR


def mixed_module():
    """The paper's Listing 5/6 pointer structure."""
    mb = ModuleBuilder("mix")
    b = mb.function("update", [("addr", PTR)], I64)
    b.store(7, b.function.args[0])
    b.ret(0)
    b = mb.function("main", [], I64)
    vol = b.call("vol_alloc", [64], PTR)
    pm = b.call("pm_alloc", [64], PTR)
    b.call("update", [vol], I64)
    b.call("update", [pm], I64)
    b.ret(0)
    return mb.module


class TestFullAA:
    def test_scores_match_listing6(self):
        module = mixed_module()
        cls = classify_full_aa(module)
        main = module.get_function("main")
        update = module.get_function("update")
        vol_value, pm_value = main.calls()[0], main.calls()[1]
        assert cls.score(vol_value) == -1
        assert cls.score(pm_value) == 1
        # update's parameter aliases both: mixed -> 0
        assert cls.score(update.args[0]) == 0

    def test_may_be_pm(self):
        module = mixed_module()
        cls = classify_full_aa(module)
        main = module.get_function("main")
        update = module.get_function("update")
        assert not cls.may_be_pm(main.calls()[0])
        assert cls.may_be_pm(main.calls()[1])
        assert cls.may_be_pm(update.args[0])  # mixed is maybe-PM
        assert cls.store_may_be_pm(update.stores()[0])

    def test_pm_globals_included(self):
        mb = ModuleBuilder("g")
        table = mb.global_("table", 64, "pm")
        scratch = mb.global_("scratch", 64, "vol")
        b = mb.function("main", [], I64)
        b.store(1, b.gep(table, 0))
        b.store(1, b.gep(scratch, 0))
        b.ret(0)
        cls = classify_full_aa(mb.module)
        assert "global:table" in cls.pm_keys
        assert "global:scratch" not in cls.pm_keys

    def test_functions_with_pm_stores_transitive(self):
        module = mixed_module()
        cls = classify_full_aa(module)
        pm_fns = cls.functions_with_pm_stores(CallGraph(module))
        assert "update" in pm_fns and "main" in pm_fns


class TestTraceAA:
    def test_agrees_with_full_on_executed_program(self):
        module = mixed_module()
        _, trace, interp = pmemcheck_run(module, lambda i: i.call("main"))
        full = classify_full_aa(module)
        traced = classify_trace_aa(module, trace, interp.machine)
        main = module.get_function("main")
        update = module.get_function("update")
        for value in (main.calls()[0], main.calls()[1], update.args[0]):
            assert full.score(value) == traced.score(value)

    def test_name(self):
        module = mixed_module()
        _, trace, interp = pmemcheck_run(module, lambda i: i.call("main"))
        assert classify_trace_aa(module, trace, interp.machine).name == "Trace-AA"
        assert classify_full_aa(module).name == "Full-AA"


class TestScoreSemantics:
    def test_untracked_pointer_scores_zero(self):
        mb = ModuleBuilder("u")
        b = mb.function("f", [("p", PTR)], I64)
        b.ret(0)
        module = mb.module
        cls = classify_full_aa(module)
        assert cls.score(module.get_function("f").args[0]) == 0

    def test_unknown_site_neither_pm_nor_volatile(self):
        mb = ModuleBuilder("u")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [8], PTR)
        back = b.cast("inttoptr", b.cast("ptrtoint", p, I64), PTR)
        b.ret(0)
        cls = classify_full_aa(mb.module)
        # points-to = {UNKNOWN}: score 0, but maybe-PM for safety
        assert cls.score(back) == 0
        assert cls.may_be_pm(back)
