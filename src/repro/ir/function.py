"""Functions: named, typed collections of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..errors import IRError
from .basicblock import BasicBlock
from .instructions import Call, Instruction, Store
from .types import Type, VOID
from .values import Argument

if TYPE_CHECKING:  # pragma: no cover
    from .module import Module


class Function:
    """An IR function.

    :param name: the function's symbol name (unique within a module).
    :param params: ``(name, type)`` pairs for the formal parameters.
    :param return_type: the return type (``VOID`` by default).
    :param source_file: pseudo source file used for debug locations.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]] = (),
        return_type: Type = VOID,
        source_file: str = "",
    ):
        self.name = name
        self.return_type = return_type
        self.source_file = source_file or f"{name}.c"
        self.args: List[Argument] = []
        for index, (pname, ptype) in enumerate(params):
            arg = Argument(pname, ptype, index)
            arg.parent = self
            self.args.append(arg)
        self.blocks: List[BasicBlock] = []
        self.parent: Optional["Module"] = None
        #: Set by the persistent-subprogram transformation on clones:
        #: the name of the function this one was cloned from.
        self.cloned_from: Optional[str] = None

    # -- structure ------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    def add_block(self, name: str = "") -> BasicBlock:
        """Create a new basic block with a unique name and append it."""
        base = name or f"bb{len(self.blocks)}"
        existing = {b.name for b in self.blocks}
        candidate, suffix = base, 0
        while candidate in existing:
            suffix += 1
            candidate = f"{base}.{suffix}"
        block = BasicBlock(candidate, self)
        self.blocks.append(block)
        if self.parent is not None:
            self.parent.bump_epoch()
        return block

    def get_block(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise IRError(f"no block {name!r} in function {self.name!r}")

    # -- queries ---------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks:
            yield from block

    def stores(self) -> List[Store]:
        """All store instructions (the potential durability obligations)."""
        return [i for i in self.instructions() if isinstance(i, Store)]

    def calls(self) -> List[Call]:
        """All call instructions."""
        return [i for i in self.instructions() if isinstance(i, Call)]

    def find_instruction(self, iid: int) -> Optional[Instruction]:
        for instr in self.instructions():
            if instr.iid == iid:
                return instr
        return None

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def value_names(self) -> Dict[str, int]:
        """How many times each local value name is used (for uniquing)."""
        counts: Dict[str, int] = {}
        for arg in self.args:
            counts[arg.name] = counts.get(arg.name, 0) + 1
        for instr in self.instructions():
            if instr.name:
                counts[instr.name] = counts.get(instr.name, 0) + 1
        return counts

    def __repr__(self) -> str:
        kind = "decl" if self.is_declaration else f"{len(self.blocks)} blocks"
        return f"<Function @{self.name} ({kind})>"
