"""The write-ahead checkpoint journal: crash-consistent batch progress.

Every state transition of a batch run — batch start, task start, task
completion, retry, quarantine, batch end — is appended to a JSONL
journal *before* the supervisor acts on it, so a hard kill at any
instant loses at most the record being written.  The format dogfoods
the paper's flush/fence discipline on ordinary files:

- one record per line: ``<crc32-hex8> <canonical-json>``, where the CRC
  covers the JSON bytes — a torn or bit-rotted tail is detectable;
- every append is flushed and ``fsync``'d before the supervisor
  proceeds (the journal is *write-ahead*: the durable record precedes
  the externally visible action);
- recovery (:meth:`CheckpointJournal.recover`) truncates at the first
  bad record — exactly how PM systems discard a torn log tail — and
  re-opens for append at the good prefix;
- compaction rewrites the journal through a temp file + ``os.replace``
  (:func:`~repro.fsutil.atomic_write_text`), so rotation can never
  destroy the only copy of the log.

Record types (the ``type`` field):

====================  =====================================================
``batch-start``       task ids in submission order + run configuration
``task-start``        a task attempt was dispatched (task, attempt)
``task-done``         terminal success: the deterministic result record
``task-failed``       one attempt failed (task, attempt, error, retry delay)
``task-quarantined``  terminal failure after bounded retries
``batch-interrupted`` SIGINT/SIGTERM drain completed
``batch-end``         the aggregate report's canonical totals
====================  =====================================================
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from ..fsutil import atomic_write_text, fsync_dir

#: record types that end a task's lifecycle (resume skips these tasks)
TERMINAL_TYPES = ("task-done", "task-quarantined")


class JournalError(ReproError):
    """The checkpoint journal was misused (not a torn tail — those are
    tolerated by recovery, never raised)."""


def encode_record(record: Dict[str, Any]) -> str:
    """Render one record as a CRC-guarded journal line (no newline)."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}"


def decode_record(line: str) -> Optional[Dict[str, Any]]:
    """Parse one journal line; None if torn, corrupt, or mis-framed."""
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, payload = line[:8], line[9:]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(payload)
    except ValueError:  # pragma: no cover - CRC already guards this
        return None
    return record if isinstance(record, dict) else None


@dataclass
class RecoveredJournal:
    """What :meth:`CheckpointJournal.recover` found on disk."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    #: 1-based line number of the first bad record (0 = clean tail)
    torn_at: int = 0
    #: the discarded tail text (for diagnostics), "" when clean
    torn_text: str = ""

    @property
    def torn(self) -> bool:
        return self.torn_at > 0

    def completed_tasks(self) -> Dict[str, Dict[str, Any]]:
        """task id -> terminal record, for resume replay."""
        done: Dict[str, Dict[str, Any]] = {}
        for record in self.records:
            if record.get("type") in TERMINAL_TYPES:
                done[record["task"]] = record
        return done

    def task_order(self) -> List[str]:
        """Submission order from the batch-start record (empty if the
        journal was killed before batch-start survived)."""
        for record in self.records:
            if record.get("type") == "batch-start":
                return list(record.get("tasks", []))
        return []

    def attempts(self, task_id: str) -> int:
        """How many attempts of ``task_id`` were dispatched."""
        return sum(
            1
            for r in self.records
            if r.get("type") == "task-start" and r.get("task") == task_id
        )


class CheckpointJournal:
    """Append-only, CRC-guarded, fsync'd JSONL journal.

    :param path: the journal file; created (with its directory) on the
        first append.
    :param after_append: optional hook called with the 1-based count of
        appended records *after* each durable append — the
        fault-injection campaign uses it to kill the supervisor at
        every checkpoint boundary.
    """

    def __init__(self, path: str, after_append=None):
        self.path = path
        self.after_append = after_append
        self._handle = None
        self.appended = 0

    # -- writing ------------------------------------------------------------

    def _open(self):
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (write + flush + fsync), then run
        the checkpoint hook.

        The hook runs strictly *after* the record is durable: a kill at
        the hook boundary loses nothing, which is what makes
        kill-at-every-checkpoint resume exact.
        """
        handle = self._open()
        handle.write(encode_record(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        self.appended += 1
        if self.after_append is not None:
            self.after_append(self.appended)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recovery -----------------------------------------------------------

    @staticmethod
    def read(path: str) -> RecoveredJournal:
        """Read a journal, stopping at the first bad record.

        Torn tails are *expected* (a kill mid-``write``); everything
        after the first undecodable line is untrusted and ignored, even
        if later lines happen to decode — a write-ahead log has no
        holes, so a bad record ends the trusted prefix.
        """
        recovered = RecoveredJournal()
        if not os.path.exists(path):
            return recovered
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            text = handle.read()
        offset = 0
        for line_no, line in enumerate(text.splitlines(keepends=True), start=1):
            body = line.rstrip("\n")
            record = decode_record(body)
            # A final line without its newline is a torn write even if
            # the CRC happens to validate a prefix-framed payload.
            if record is None or not line.endswith("\n"):
                recovered.torn_at = line_no
                recovered.torn_text = text[offset:]
                break
            recovered.records.append(record)
            offset += len(line)
        return recovered

    def recover(self) -> RecoveredJournal:
        """Read the journal and physically truncate any torn tail, so
        subsequent appends extend the trusted prefix, not the garbage."""
        if self._handle is not None:
            raise JournalError("recover() must run before the first append")
        recovered = self.read(self.path)
        if recovered.torn and os.path.exists(self.path):
            good = "".join(
                encode_record(record) + "\n" for record in recovered.records
            )
            with open(self.path, "r+", encoding="utf-8") as handle:
                handle.truncate(0)
                handle.write(good)
                handle.flush()
                os.fsync(handle.fileno())
        return recovered

    # -- rotation -----------------------------------------------------------

    def compact(self) -> int:
        """Atomically rewrite the journal keeping only batch metadata
        and terminal task records; returns the number of records kept.

        Uses temp-file + fsync + ``os.replace`` (and a directory fsync),
        so a crash mid-rotation leaves either the old journal or the
        compacted one — never neither.
        """
        self.close()
        recovered = self.read(self.path)
        kept = [
            record
            for record in recovered.records
            if record.get("type") in TERMINAL_TYPES
            or record.get("type") in ("batch-start", "batch-end", "batch-interrupted")
        ]
        text = "".join(encode_record(record) + "\n" for record in kept)
        atomic_write_text(self.path, text)
        fsync_dir(os.path.dirname(os.path.abspath(self.path)))
        return len(kept)
