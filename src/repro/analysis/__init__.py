"""Static analysis substrate: call graphs, Andersen points-to, and the
PM pointer classifiers feeding the hoisting heuristic."""

from .aliasing import PMClassification, classify_full_aa, classify_trace_aa
from .andersen import AllocSite, PointsTo, UNKNOWN_SITE, analyze
from .callgraph import CallGraph

__all__ = [
    "AllocSite",
    "analyze",
    "CallGraph",
    "classify_full_aa",
    "classify_trace_aa",
    "PMClassification",
    "PointsTo",
    "UNKNOWN_SITE",
]
