"""Repair tasks: the unit of work the batch supervisor schedules.

A :class:`RepairTask` is pure, JSON-serializable data — a worker
subprocess can rebuild everything it needs from the spec alone:

- ``corpus`` tasks name a case from the 23-bug corpus by id; the worker
  rebuilds the module, re-collects the trace, repairs, and revalidates
  (the supervisor-scheduled form of :func:`run_case`).
- ``file`` tasks name a module file + pmemcheck trace file (+ optional
  output path): the ``repro fix`` workflow, batchable.

Execution is **deterministic**: :func:`execute_task` returns a
:class:`TaskResult` whose ``record`` contains only reproducible facts
(counts, fix kinds, a SHA-256 of the fixed module's IR) — no wall-clock
time, no memory numbers, no attempt counters.  That determinism is what
lets a resumed batch replay completed tasks from the journal and still
produce a byte-identical aggregate report.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.hippocrates import FixReport, Hippocrates
from ..corpus.bugs import BugCase, all_cases, classify_fix, compare_fix_kinds
from ..detect import pmemcheck_run
from ..errors import ReproError
from ..interp import ENGINES, get_default_engine
from ..ir.printer import format_module
from ..memory.pool import MachinePool
from ..obs.observability import NULL_OBS, Observability
from ..revalidate import IncrementalRevalidator

#: task kinds
KINDS = ("corpus", "file")


class TaskError(ReproError):
    """A task spec was malformed or named an unknown corpus case."""


# ---------------------------------------------------------------------------
# per-case repair (previously bench.harness.run_case; the supervisor is
# now the canonical owner so corpus runs route through one code path)
# ---------------------------------------------------------------------------


@dataclass
class CaseOutcome:
    """Detect-fix-revalidate outcome for one corpus case."""

    case: BugCase
    reports_found: int
    reports_after_fix: int
    fix_report: FixReport
    fix_kinds: List[str]
    comparison: Optional[str] = None
    #: the repaired module (for digesting / further inspection)
    module: Any = None
    #: analysis-manager hit/miss counters (volatile — never journaled)
    analysis_stats: Optional[Dict[str, int]] = None
    #: how revalidation ran (mode, segments replayed, chains rechecked)
    #: — volatile diagnostics, never journaled
    revalidation: Optional[Dict[str, Any]] = None

    @property
    def fixed(self) -> bool:
        return self.reports_found > 0 and self.reports_after_fix == 0


def run_case(
    case: BugCase,
    heuristic: str = "full",
    analysis_cache_dir: Optional[str] = None,
    obs: Optional[Observability] = None,
    incremental_revalidate: bool = True,
    engine_kind: Optional[str] = None,
    machine_pool: Any = True,
) -> CaseOutcome:
    """Detect, fix, and revalidate one corpus case.

    With ``incremental_revalidate`` (the default) the detection run is
    recorded and the post-fix check goes through the
    :class:`~repro.revalidate.engine.IncrementalRevalidator` — same
    detection results, byte-identical canonical reports, but witnessed
    repairs revalidate without re-executing the workload.
    ``incremental_revalidate=False`` (the
    ``--no-incremental-revalidate`` escape hatch) re-runs everything
    from scratch.  ``engine_kind`` picks the execution engine for every
    run this case makes (detection, replay, revalidation); results are
    byte-identical across engines.  ``machine_pool`` controls machine
    buffer reuse across this case's runs: True (the default) builds a
    private :class:`~repro.memory.pool.MachinePool`, a pool instance is
    used directly (cross-case reuse — callers own thread safety), and
    False allocates fresh buffers per run; results are byte-identical
    either way.
    """
    obs = obs if obs is not None else NULL_OBS
    metrics = obs.metrics if obs.enabled else None
    if isinstance(machine_pool, MachinePool):
        pool: Optional[MachinePool] = machine_pool
    elif machine_pool:
        pool = MachinePool()
    else:
        pool = None
    module = case.build()
    engine: Optional[IncrementalRevalidator] = None
    if incremental_revalidate:
        engine = IncrementalRevalidator(
            case.drive, metrics=metrics, engine=engine_kind, pool=pool
        )
    with obs.span("detect", case=case.case_id):
        if engine is not None:
            detection, trace, interp = engine.record(module)
        else:
            detection, trace, interp = pmemcheck_run(
                module, case.drive, metrics=metrics, engine=engine_kind,
                pool=pool,
            )
    try:
        fixer = Hippocrates(
            module,
            trace,
            interp.machine,
            heuristic=heuristic,
            analysis_cache_dir=analysis_cache_dir,
            obs=obs,
            revalidator=engine,
        )
        plan = fixer.compute_fixes()
        fix_report = fixer.apply(plan)
        revalidation: Optional[Dict[str, Any]] = None
        with obs.span("revalidate", case=case.case_id):
            if engine is not None:
                outcome = fixer.revalidate()
                after = outcome.detection
                revalidation = outcome.as_stats()
            else:
                after, _, replay_interp = pmemcheck_run(
                    module, case.drive, metrics=metrics, engine=engine_kind,
                    pool=pool,
                )
                if pool is not None:
                    pool.release(replay_interp.machine)
    finally:
        # The detection machine outlives the fix phase (Hippocrates
        # reads it for Trace-AA and observable-output checks); it is
        # dead once the case is done.
        if pool is not None:
            pool.release(interp.machine)
    kinds = sorted({classify_fix(f) for f in plan.fixes})
    comparison = None
    if case.developer_fix:
        hippocrates_kind = kinds[0] if len(kinds) == 1 else ",".join(kinds)
        comparison = compare_fix_kinds(hippocrates_kind, case.developer_fix)
    return CaseOutcome(
        case=case,
        reports_found=detection.bug_count,
        reports_after_fix=after.bug_count,
        fix_report=fix_report,
        fix_kinds=kinds,
        comparison=comparison,
        module=module,
        analysis_stats=fixer.manager.stats.as_dict(),
        revalidation=revalidation,
    )


# ---------------------------------------------------------------------------
# task specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RepairTask:
    """One schedulable unit of repair work (pure data).

    :param task_id: unique within the batch; corpus tasks use the case
        id, file tasks default to the module path.
    :param kind: ``"corpus"`` or ``"file"``.
    :param case_id: for corpus tasks: the :class:`BugCase` id.
    :param module_path: for file tasks: the textual-IR module.
    :param trace_path: for file tasks: the pmemcheck-style log.
    :param output_path: for file tasks: where the fixed module goes
        (None = repair in memory only, report the result).
    :param heuristic: hoisting heuristic mode.
    :param lenient: skip malformed trace lines (file tasks).
    :param analysis_cache_dir: directory of the shared on-disk analysis
        cache (None = no cross-process analysis sharing).  The cache is
        content-addressed, so it never changes *what* a task computes —
        only whether the Andersen fixpoint is re-solved — and is
        deliberately excluded from the journaled result record.
    :param incremental_revalidate: route post-fix revalidation through
        the incremental engine (corpus tasks).  Results are
        byte-identical either way (the differential suite enforces it),
        so — like the analysis cache — the flag is excluded from the
        journaled record.
    :param engine: execution engine kind (``"flat"`` or
        ``"reference"``).  Results are byte-identical across engines
        (differential suite again), so the flag is likewise excluded
        from the journaled record — a resumed batch may finish under a
        different engine than it started with.
    :param machine_pool: reuse pooled machine buffers across the task's
        runs (detect, replay, re-record).  Pure construction-cost
        optimisation — pooled and fresh machines start byte-identical
        (the differential suite enforces it) — so, like the engine
        flag, it is excluded from the journaled record.
    """

    task_id: str
    kind: str = "corpus"
    case_id: str = ""
    module_path: str = ""
    trace_path: str = ""
    output_path: Optional[str] = None
    heuristic: str = "full"
    lenient: bool = False
    analysis_cache_dir: Optional[str] = None
    incremental_revalidate: bool = True
    engine: str = "flat"
    machine_pool: bool = True

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise TaskError(f"unknown task kind {self.kind!r}; use {KINDS}")
        if self.engine not in ENGINES:
            raise TaskError(
                f"unknown engine {self.engine!r}; use {ENGINES}"
            )
        if self.kind == "corpus" and not self.case_id:
            raise TaskError("corpus task needs a case_id")
        if self.kind == "file" and not (self.module_path and self.trace_path):
            raise TaskError("file task needs module_path and trace_path")

    def to_spec(self) -> Dict[str, Any]:
        """The JSON form shipped to a worker subprocess."""
        return {
            "task_id": self.task_id,
            "kind": self.kind,
            "case_id": self.case_id,
            "module_path": self.module_path,
            "trace_path": self.trace_path,
            "output_path": self.output_path,
            "heuristic": self.heuristic,
            "lenient": self.lenient,
            "analysis_cache_dir": self.analysis_cache_dir,
            "incremental_revalidate": self.incremental_revalidate,
            "engine": self.engine,
            "machine_pool": self.machine_pool,
        }

    @staticmethod
    def from_spec(spec: Dict[str, Any]) -> "RepairTask":
        return RepairTask(
            task_id=spec["task_id"],
            kind=spec.get("kind", "corpus"),
            case_id=spec.get("case_id", ""),
            module_path=spec.get("module_path", ""),
            trace_path=spec.get("trace_path", ""),
            output_path=spec.get("output_path"),
            heuristic=spec.get("heuristic", "full"),
            lenient=bool(spec.get("lenient", False)),
            analysis_cache_dir=spec.get("analysis_cache_dir"),
            incremental_revalidate=bool(
                spec.get("incremental_revalidate", True)
            ),
            engine=spec.get("engine", get_default_engine()),
            machine_pool=bool(spec.get("machine_pool", True)),
        )


def corpus_tasks(
    case_ids: Optional[List[str]] = None,
    heuristic: str = "full",
    analysis_cache_dir: Optional[str] = None,
    incremental_revalidate: bool = True,
    engine: Optional[str] = None,
    machine_pool: bool = True,
) -> List[RepairTask]:
    """Build the corpus batch (default: every case, corpus order)."""
    known = {case.case_id: case for case in all_cases()}
    if case_ids is None:
        case_ids = list(known)
    tasks = []
    for case_id in case_ids:
        if case_id not in known:
            raise TaskError(
                f"unknown corpus case {case_id!r}; known: {sorted(known)}"
            )
        tasks.append(
            RepairTask(task_id=case_id, kind="corpus", case_id=case_id,
                       heuristic=heuristic,
                       analysis_cache_dir=analysis_cache_dir,
                       incremental_revalidate=incremental_revalidate,
                       engine=engine or get_default_engine(),
                       machine_pool=machine_pool)
        )
    return tasks


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


@dataclass
class TaskResult:
    """What one task execution produced.

    ``record`` is the deterministic, journal-able form; ``outcome`` is
    the rich in-memory object (available only when the task ran
    in-process — it never crosses a subprocess boundary).  ``stats``
    carries the analysis-manager counters: volatile observability data
    that must never leak into ``record`` (cache hits vary run to run,
    and the journal replay must stay byte-identical).
    """

    record: Dict[str, Any]
    outcome: Optional[CaseOutcome] = None
    stats: Optional[Dict[str, int]] = None


def _module_digest(module) -> str:
    return hashlib.sha256(format_module(module).encode("utf-8")).hexdigest()


def _corpus_record(task: RepairTask, outcome: CaseOutcome, digest: str) -> Dict[str, Any]:
    report = outcome.fix_report
    record = report.as_record()
    record.update(
        task=task.task_id,
        kind=task.kind,
        bugs_detected=outcome.reports_found,
        bugs_remaining=outcome.reports_after_fix,
        fixed=outcome.fixed,
        fix_kinds=outcome.fix_kinds,
        comparison=outcome.comparison,
        module_sha256=digest,
    )
    return record


def execute_task(task: RepairTask, obs: Optional[Observability] = None) -> TaskResult:
    """Run one task to completion and return its deterministic result.

    Corpus tasks rebuild everything from the case id, so re-executing a
    task (after a worker death, say) starts from pristine state — the
    module a retry repairs is never the half-repaired module of the
    failed attempt.  File tasks write their output atomically
    (:func:`~repro.fsutil.atomic_write_text`), so a kill mid-task never
    tears the output module on disk.

    ``obs`` instruments the execution (a ``task`` span around the whole
    run, phase spans inside); it never changes ``record``.
    """
    obs = obs if obs is not None else NULL_OBS
    with obs.span("task", task=task.task_id, kind=task.kind):
        if task.kind == "corpus":
            case = _find_case(task.case_id)
            outcome = run_case(
                case,
                heuristic=task.heuristic,
                analysis_cache_dir=task.analysis_cache_dir,
                obs=obs,
                incremental_revalidate=task.incremental_revalidate,
                engine_kind=task.engine,
                machine_pool=task.machine_pool,
            )
            digest = _module_digest(outcome.module)
            return TaskResult(
                record=_corpus_record(task, outcome, digest),
                outcome=outcome,
                stats=outcome.analysis_stats,
            )
        return _execute_file_task(task, obs)


def _find_case(case_id: str) -> BugCase:
    for case in all_cases():
        if case.case_id == case_id:
            return case
    raise TaskError(f"unknown corpus case {case_id!r}")


def _execute_file_task(task: RepairTask, obs: Observability = NULL_OBS) -> TaskResult:
    from ..fsutil import atomic_write_text
    from ..ir.parser import parse_module
    from ..ir.verifier import verify_module

    with open(task.module_path) as handle:
        module = parse_module(handle.read())
    verify_module(module)
    with open(task.trace_path) as handle:
        trace_text = handle.read()
    fixer = Hippocrates(
        module,
        trace_text,
        heuristic=task.heuristic,
        lenient=task.lenient,
        trace_source=task.trace_path,
        analysis_cache_dir=task.analysis_cache_dir,
        obs=obs,
    )
    plan = fixer.compute_fixes()
    report = fixer.apply(plan)
    fixed_text = format_module(module)
    if task.output_path:
        atomic_write_text(task.output_path, fixed_text)
    record = report.as_record()
    record.update(
        task=task.task_id,
        kind=task.kind,
        bugs_detected=len(fixer.detection.bugs),
        # file tasks have no replayable workload; quarantined bugs are
        # the ones known to remain unfixed
        bugs_remaining=len(report.quarantined),
        fixed=not report.quarantined,
        fix_kinds=sorted({classify_fix(f) for f in plan.fixes}),
        comparison=None,
        module_sha256=hashlib.sha256(fixed_text.encode("utf-8")).hexdigest(),
    )
    return TaskResult(record=record, stats=fixer.manager.stats.as_dict())
