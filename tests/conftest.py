"""Shared test fixtures: canonical modules from the paper's listings."""

from __future__ import annotations

import pytest

from repro.detect import pmemcheck_run
from repro.ir import I64, I8, ModuleBuilder, PTR


def build_listing5_module():
    """The paper's Listing 5 program (pre-fix).

    ``update`` stores through a pointer that is volatile on the hot
    loop path and persistent on the final call; the fence in ``foo``
    exists but nothing flushes the PM store.
    """
    mb = ModuleBuilder("listing5")
    b = mb.function(
        "update", [("addr", PTR), ("idx", I64), ("val", I64)], source_file="listing5.c"
    )
    p = b.gep(b.function.args[0], b.function.args[1])
    b.store(b.function.args[2], p, I8)
    b.ret()

    b = mb.function("modify", [("addr", PTR)], source_file="listing5.c")
    b.call("update", [b.function.args[0], 0, 7])
    b.ret()

    b = mb.function(
        "foo", [("vol_addr", PTR), ("pm_addr", PTR)], source_file="listing5.c"
    )
    loop_i = b.alloca(8)
    b.store(0, loop_i)
    cond_bb = b.new_block("cond")
    body_bb = b.new_block("body")
    done_bb = b.new_block("done")
    b.jmp(cond_bb)
    b.position_at_end(cond_bb)
    b.br(b.icmp("ult", b.load(loop_i), 3), body_bb, done_bb)
    b.position_at_end(body_bb)
    b.call("modify", [b.function.args[0]])
    b.store(b.add(b.load(loop_i), 1), loop_i)
    b.jmp(cond_bb)
    b.position_at_end(done_bb)
    b.call("modify", [b.function.args[1]])
    b.fence()
    b.ret()

    b = mb.function("main", [], I64, source_file="listing5.c")
    vol = b.call("vol_alloc", [64], PTR)
    pm = b.call("pm_alloc", [64], PTR)
    b.call("foo", [vol, pm])
    b.ret(0)
    return mb.module


def drive_main(interp):
    interp.call("main")


@pytest.fixture
def listing5():
    """(module, detection, trace, interpreter) for Listing 5."""
    module = build_listing5_module()
    detection, trace, interp = pmemcheck_run(module, drive_main)
    return module, detection, trace, interp
