"""Andersen's inclusion-based points-to analysis.

The paper uses "an implementation of Andersen's alias analysis for the
whole-program alias analysis we perform to compute our heuristic" (§5).
This is that analysis for our IR: flow- and context-insensitive,
field-insensitive, with one abstract heap object per allocation site.

Abstract locations (:class:`AllocSite`) are created for:

- ``alloca`` instructions (space ``stack``),
- calls to ``pm_alloc`` / ``vol_alloc`` (space ``pm`` / ``vol``),
- calls to ``pm_root`` (a single shared site — every call returns the
  same root object),
- globals (space from their declaration),
- a distinguished UNKNOWN site for pointers the analysis cannot track
  (``inttoptr`` results, unknown intrinsic returns).

Constraints:

====================  =====================================
IR construct          constraint
====================  =====================================
``p = alloca``        {site} ⊆ pts(p)
``p = pm_alloc(n)``   {site} ⊆ pts(p)
``p = gep q, off``    pts(q) ⊆ pts(p)   (field-insensitive)
``p = select c,a,b``  pts(a) ∪ pts(b) ⊆ pts(p)
``p = cast …``        pts(src) ⊆ pts(p) (or UNKNOWN)
``store q, p``        ∀s ∈ pts(p): pts(q) ⊆ heap(s)
``p = load q``        ∀s ∈ pts(q): heap(s) ⊆ pts(p)
``call f(a…)``        pts(aᵢ) ⊆ pts(paramᵢ); returns flow back
====================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..budget import Budget
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    Call,
    Cast,
    Gep,
    Load,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, Value

#: Intrinsics that allocate; mapped to the space they allocate in.
_ALLOC_INTRINSICS = {"pm_alloc": "pm", "vol_alloc": "vol"}


@dataclass(frozen=True)
class AllocSite:
    """An abstract memory object."""

    key: str
    space: str  # "pm" | "vol" | "stack" | "unknown"

    def __repr__(self) -> str:
        return f"<{self.key}:{self.space}>"


UNKNOWN_SITE = AllocSite("unknown", "unknown")


class PointsTo:
    """Solved points-to information for one module."""

    def __init__(self, module: Module, budget: Optional[Budget] = None):
        """Solve the module's constraints to a fixpoint.

        ``budget`` (items = constraint evaluations, optionally seconds)
        bounds the fixpoint: when it runs out, :class:`~repro.errors.
        BudgetExceeded` propagates from here.  A partial Andersen result
        would be an *under*-approximation — unsafe to act on — so the
        orchestrator must catch the signal and downgrade to a cheaper
        heuristic rather than read a half-solved analysis.
        """
        self.module = module
        self.budget = budget
        self.sites: Dict[str, AllocSite] = {}
        self._var_pts: Dict[Value, Set[AllocSite]] = {}
        self._heap_pts: Dict[AllocSite, Set[AllocSite]] = {}
        self._solve()

    @classmethod
    def from_solution(
        cls,
        module: Module,
        sites: Dict[str, AllocSite],
        var_pts: Dict[Value, Set[AllocSite]],
        heap_pts: Dict[AllocSite, Set[AllocSite]],
    ) -> "PointsTo":
        """Rebuild a solved instance without re-running the fixpoint.

        Used by the content-addressed on-disk analysis cache: the
        serialized fixpoint of an identical-fingerprint module is
        translated back onto this module's values (see
        :mod:`repro.analysis.diskcache`) and installed directly.  No
        budget is attached — restoring a solution costs no analysis
        work, so none is charged.
        """
        self = cls.__new__(cls)
        self.module = module
        self.budget = None
        self.sites = sites
        self._var_pts = var_pts
        self._heap_pts = heap_pts
        return self

    # -- public queries -----------------------------------------------------------

    def sites_of(self, value: Value) -> FrozenSet[AllocSite]:
        """The abstract objects ``value`` may point to."""
        if isinstance(value, GlobalVariable):
            return frozenset({self._global_site(value)})
        return frozenset(self._var_pts.get(value, set()))

    def may_alias(self, a: Value, b: Value) -> bool:
        """True if the two pointers may reference the same object."""
        sa, sb = self.sites_of(a), self.sites_of(b)
        if not sa or not sb:
            return True  # untracked: be conservative
        if UNKNOWN_SITE in sa or UNKNOWN_SITE in sb:
            return True
        return bool(sa & sb)

    def may_point_to_space(self, value: Value, space: str) -> bool:
        """True if ``value`` may point into the given space ("pm"/"vol").

        Empty or unknown points-to sets answer True (conservative).
        """
        sites = self.sites_of(value)
        if not sites:
            return True
        for site in sites:
            if site.space == space or site.space == "unknown":
                return True
        return False

    # -- solving ---------------------------------------------------------------------

    def _site(self, key: str, space: str) -> AllocSite:
        if key not in self.sites:
            self.sites[key] = AllocSite(key, space)
        return self.sites[key]

    def _global_site(self, gv: GlobalVariable) -> AllocSite:
        return self._site(f"global:{gv.name}", gv.space)

    def _pts(self, value: Value) -> Set[AllocSite]:
        if value not in self._var_pts:
            self._var_pts[value] = set()
        return self._var_pts[value]

    def _heap(self, site: AllocSite) -> Set[AllocSite]:
        if site not in self._heap_pts:
            self._heap_pts[site] = set()
        return self._heap_pts[site]

    def _solve(self) -> None:
        copies: List[Tuple[Value, Value]] = []  # pts(dst) ⊇ pts(src)
        loads: List[Tuple[Value, Value]] = []  # pts(dst) ⊇ heap(pts(src))
        stores: List[Tuple[Value, Value]] = []  # heap(pts(ptr)) ⊇ pts(src)
        returns: Dict[str, List[Value]] = {}

        def base_set(value: Value) -> Set[AllocSite]:
            if isinstance(value, GlobalVariable):
                return {self._global_site(value)}
            if isinstance(value, Constant):
                return set()
            return self._pts(value)

        # -- constraint generation --------------------------------------------
        for fn in self.module.functions.values():
            for instr in fn.instructions():
                if isinstance(instr, Alloca):
                    self._pts(instr).add(self._site(f"alloca:{instr.iid}", "stack"))
                elif isinstance(instr, Gep):
                    copies.append((instr.base, instr))
                elif isinstance(instr, Select) and instr.type.is_pointer:
                    copies.append((instr.operands[1], instr))
                    copies.append((instr.operands[2], instr))
                elif isinstance(instr, Cast) and instr.type.is_pointer:
                    if instr.kind == "inttoptr":
                        src = instr.operands[0]
                        # Round-tripping ptr->int->ptr is untrackable
                        # field-insensitively; give up to UNKNOWN.
                        self._pts(instr).add(UNKNOWN_SITE)
                        del src
                    else:
                        copies.append((instr.operands[0], instr))
                elif isinstance(instr, Load) and instr.type.is_pointer:
                    loads.append((instr.pointer, instr))
                elif isinstance(instr, Store) and instr.value.type.is_pointer:
                    stores.append((instr.value, instr.pointer))
                elif isinstance(instr, Ret) and instr.value is not None:
                    if instr.value.type.is_pointer:
                        returns.setdefault(fn.name, []).append(instr.value)
                elif isinstance(instr, Call):
                    self._call_constraints(instr, copies)

        # Return-value flow: call results ⊇ callee returns.
        for fn in self.module.functions.values():
            for call in fn.calls():
                if not call.type.is_pointer:
                    continue
                if self.module.has_function(call.callee):
                    for ret_value in returns.get(call.callee, []):
                        copies.append((ret_value, call))

        # -- fixpoint ------------------------------------------------------------
        per_pass = len(copies) + len(loads) + len(stores)
        changed = True
        while changed:
            if self.budget is not None:
                self.budget.charge(per_pass)
            changed = False
            for src, dst in copies:
                before = len(self._pts(dst))
                self._pts(dst).update(base_set(src))
                changed |= len(self._pts(dst)) != before
            for ptr, dst in loads:
                target = self._pts(dst)
                before = len(target)
                for site in list(base_set(ptr)):
                    target.update(self._heap(site))
                changed |= len(target) != before
            for src, ptr in stores:
                src_sites = base_set(src)
                for site in list(base_set(ptr)):
                    heap = self._heap(site)
                    before = len(heap)
                    heap.update(src_sites)
                    changed |= len(heap) != before

    def _call_constraints(
        self, call: Call, copies: List[Tuple[Value, Value]]
    ) -> None:
        callee_name = call.callee
        if self.module.has_function(callee_name):
            callee = self.module.get_function(callee_name)
            for formal, actual in zip(callee.args, call.args):
                if formal.type.is_pointer:
                    copies.append((actual, formal))
            return
        if callee_name in _ALLOC_INTRINSICS:
            self._pts(call).add(
                self._site(f"call:{call.iid}", _ALLOC_INTRINSICS[callee_name])
            )
            return
        if callee_name == "pm_root":
            self._pts(call).add(self._site("pm_root", "pm"))
            return
        if call.type.is_pointer:
            # Unknown intrinsic returning a pointer: untrackable.
            self._pts(call).add(UNKNOWN_SITE)


def analyze(module: Module, budget: Optional[Budget] = None) -> PointsTo:
    """Run Andersen's analysis over a module."""
    return PointsTo(module, budget=budget)
