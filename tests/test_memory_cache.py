"""Unit tests for the CPU cache durability model."""

import pytest

from repro.memory import AddressSpace, CacheModel, PersistentImage


@pytest.fixture
def machine_parts():
    space = AddressSpace()
    image = PersistentImage(space)
    cache = CacheModel(space, image)
    addr = space.alloc_pm(256, align=64)
    return space, image, cache, addr


class TestStoreFlushFenceLifecycle:
    def test_store_dirties_line(self, machine_parts):
        _, _, cache, addr = machine_parts
        cache.on_store(addr, 8, seq=1)
        assert cache.pending_lines() == [addr]
        assert cache.dirty_store_seqs() == {1}

    def test_clwb_queues_until_fence(self, machine_parts):
        space, image, cache, addr = machine_parts
        space.write_int(addr, 8, 42)
        cache.on_store(addr, 8, seq=1)
        status = cache.on_flush(addr, "clwb")
        assert status == "writeback"
        # still not durable: weakly ordered
        assert image.durable_bytes(addr, 8) != space.read_bytes(addr, 8)
        assert cache.flushing_store_seqs() == {1}
        completed = cache.on_fence("sfence")
        assert completed == [addr]
        assert image.durable_bytes(addr, 8) == space.read_bytes(addr, 8)
        assert not cache.pending_lines()

    def test_clflush_is_immediately_durable(self, machine_parts):
        space, image, cache, addr = machine_parts
        space.write_int(addr, 8, 7)
        cache.on_store(addr, 8, seq=1)
        status = cache.on_flush(addr, "clflush")
        assert status == "writeback"
        assert image.durable_bytes(addr, 8) == space.read_bytes(addr, 8)
        assert not cache.pending_lines()

    def test_redundant_flush_of_clean_line(self, machine_parts):
        _, _, cache, addr = machine_parts
        assert cache.on_flush(addr, "clwb") == "redundant"
        assert cache.clean_flush_count == 1

    def test_coalesced_flush(self, machine_parts):
        _, _, cache, addr = machine_parts
        cache.on_store(addr, 8, seq=1)
        assert cache.on_flush(addr, "clwb") == "writeback"
        cache.on_store(addr + 8, 8, seq=2)
        # Same line, already queued: the WPQ entry absorbs it.
        assert cache.on_flush(addr, "clwb") == "coalesced"
        cache.on_fence("sfence")
        assert not cache.pending_lines()

    def test_flush_of_queued_line_without_new_store(self, machine_parts):
        _, _, cache, addr = machine_parts
        cache.on_store(addr, 8, seq=1)
        cache.on_flush(addr, "clwb")
        assert cache.on_flush(addr, "clwb") == "coalesced"

    def test_store_spanning_lines(self, machine_parts):
        _, _, cache, addr = machine_parts
        cache.on_store(addr + 60, 8, seq=5)
        assert cache.pending_lines() == [addr, addr + 64]

    def test_fence_with_nothing_queued(self, machine_parts):
        _, _, cache, _ = machine_parts
        assert cache.on_fence("sfence") == []

    def test_dirty_not_drained_by_fence(self, machine_parts):
        """A fence only completes *flushed* lines; dirty-but-unflushed
        lines stay pending — that is the missing-flush bug."""
        _, image, cache, addr = machine_parts
        cache.on_store(addr, 8, seq=1)
        cache.on_fence("sfence")
        assert cache.pending_lines() == [addr]
        assert cache.dirty_store_seqs() == {1}

    def test_clflush_completes_queued_stores_too(self, machine_parts):
        _, _, cache, addr = machine_parts
        cache.on_store(addr, 8, seq=1)
        cache.on_flush(addr, "clwb")  # queued
        cache.on_store(addr, 8, seq=2)
        cache.on_flush(addr, "clflush")
        assert not cache.pending_lines()


class TestStatistics:
    def test_counts(self, machine_parts):
        _, _, cache, addr = machine_parts
        cache.on_store(addr, 8, seq=1)
        cache.on_flush(addr, "clwb")
        cache.on_flush(addr, "clwb")
        cache.on_fence("sfence")
        assert cache.flush_count == 2
        assert cache.fence_count == 1

    def test_pending_store_seqs_union(self, machine_parts):
        _, _, cache, addr = machine_parts
        cache.on_store(addr, 8, seq=1)
        cache.on_flush(addr, "clwb")
        cache.on_store(addr + 64, 8, seq=2)
        assert cache.pending_store_seqs() == {1, 2}
