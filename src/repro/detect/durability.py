"""The durability checker: a pmemcheck-style PM bug finder.

Replays a PM trace through the cache-line durability state machine and,
at every durability boundary (``checkpoint`` calls and process exit),
reports stores whose durability obligation is unmet:

- store never flushed, no later fence either -> *missing-flush&fence*
- store never flushed, but a fence occurs before the boundary (so an
  inserted flush would be ordered) -> *missing-flush*
- store flushed with a weakly-ordered flush that no fence drains before
  the boundary -> *missing-fence*

Redundant flushes of clean lines are reported separately as performance
diagnostics (never fixed; paper §7).

The checker is *streaming*: its per-trace mutable state lives in a
:class:`CheckerState` that events are fed into one at a time, and which
can be :meth:`forked <CheckerState.fork>` at any event boundary.  The
incremental revalidation engine (:mod:`repro.revalidate`) exploits this
to resume checking from a mid-trace point — the forked state continues
exactly where a full pass would be, so report ids, occurrence counts,
and orderings stay byte-identical with a from-scratch check.  Plain
:meth:`DurabilityChecker.check` is a feed loop over one state.

An optional :class:`ChainIndex` collector records, per durability chain
(PM cache line), the instruction iids the chain depends on and the bug
keys attributed to it — the *dependency index* consumed by incremental
revalidation and its equivalence tests.  Collection is observational
only: it never changes what the checker reports.
"""

from __future__ import annotations

import bisect
import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..memory.layout import lines_covering
from ..trace.events import (
    BoundaryEvent,
    FenceEvent,
    FlushEvent,
    StoreEvent,
    TraceEvent,
)
from ..trace.trace import PMTrace
from .reports import BugKind, BugReport, DetectionResult, PerfReport

#: (store event, flush event or None) pending on a line
_Pending = Tuple[StoreEvent, Optional[FlushEvent]]

#: A stable identity for one reported bug: (store iid, kind, caller
#: path).  Unlike ``report_id`` (assigned in discovery order) this is
#: comparable *across* detection runs, which is what the differential
#: revalidation tests key on.
BugKey = Tuple[int, BugKind, Tuple[int, ...]]

#: A boundary policy maps a boundary event to either None (skip), the
#: string "all" (check every pending store), or an address range
#: ``(lo, hi)`` restricting the check.
BoundaryPolicy = Callable[[BoundaryEvent], Optional[object]]


def _pmemcheck_policy(boundary: BoundaryEvent) -> Optional[object]:
    """pmemcheck checks everything at every boundary except PMTest tags."""
    if boundary.label.startswith("pmtest:"):
        return None
    return "all"


def _pmtest_policy(boundary: BoundaryEvent) -> Optional[object]:
    """PMTest checks only its own assertions, each over a range."""
    if not boundary.label.startswith("pmtest:"):
        return None
    _, addr_text, size_text = boundary.label.split(":")
    lo = int(addr_text, 16)
    return (lo, lo + int(size_text))


def bug_key(report: BugReport) -> BugKey:
    """The run-independent identity of a report (see :data:`BugKey`)."""
    path = tuple(frame.iid for frame in report.store.caller_frames)
    return (report.store.iid, report.kind, path)


class ChainIndex:
    """The dependency index: per-chain iids and bug attribution.

    A *chain* is one PM cache line's durability history — the unit the
    checker's state machine tracks (``dirty``/``flushing`` per line).
    For each chain the index records every instruction iid that
    contributed an event to it (stores, flushes, fences that drained or
    ordered it, boundaries that checked it) plus the call-path iids of
    those events, and the :data:`BugKey`\\ s of bugs attributed to it.
    """

    def __init__(self) -> None:
        #: line address -> iids of instructions the chain depends on
        self.chain_iids: Dict[int, Set[int]] = {}
        #: line address -> bug keys attributed to stores on the line
        self.bugs_by_line: Dict[int, Set[BugKey]] = {}
        #: total events observed (cheap cost accounting)
        self.events_observed = 0

    def observe_event(self, event: TraceEvent, line_addrs: Iterable[int]) -> None:
        self.events_observed += 1
        path = [frame.iid for frame in event.stack[:-1]]
        for line_addr in line_addrs:
            deps = self.chain_iids.setdefault(line_addr, set())
            deps.add(event.iid)
            deps.update(path)

    def observe_bug(
        self, key: BugKey, store: StoreEvent, line_addrs: Iterable[int]
    ) -> None:
        for line_addr in line_addrs:
            self.bugs_by_line.setdefault(line_addr, set()).add(key)

    # -- queries --------------------------------------------------------------

    def chains(self) -> Set[int]:
        """All chain (line) addresses with at least one observed event."""
        return set(self.chain_iids)

    def chains_depending_on(self, iids: Iterable[int]) -> Set[int]:
        """Chains whose dependency set intersects ``iids``."""
        wanted = set(iids)
        return {
            line_addr
            for line_addr, deps in self.chain_iids.items()
            if deps & wanted
        }

    def bug_keys_for(self, line_addr: int) -> Set[BugKey]:
        return set(self.bugs_by_line.get(line_addr, ()))


@dataclass
class CheckerState:
    """The checker's complete mutable state after some event prefix.

    Forking deep-copies every mutable layer (the per-line event lists,
    the report objects whose ``occurrences`` mutate on re-attribution),
    so feeding events into a fork never disturbs the original — the
    invariant the incremental engine's memoized forks rely on.
    """

    dirty: Dict[int, List[StoreEvent]] = field(default_factory=dict)
    flushing: Dict[int, List[_Pending]] = field(default_factory=dict)
    fence_seqs: List[int] = field(default_factory=list)
    reports: Dict[BugKey, BugReport] = field(default_factory=dict)
    attributed_seqs: Set[int] = field(default_factory=set)
    perf: Dict[int, PerfReport] = field(default_factory=dict)

    def fork(self) -> "CheckerState":
        return CheckerState(
            dirty={line: list(stores) for line, stores in self.dirty.items()},
            flushing={line: list(pairs) for line, pairs in self.flushing.items()},
            fence_seqs=list(self.fence_seqs),
            reports={key: copy.copy(bug) for key, bug in self.reports.items()},
            attributed_seqs=set(self.attributed_seqs),
            perf={iid: copy.copy(note) for iid, note in self.perf.items()},
        )


class DurabilityChecker:
    """Offline trace analysis (the detector half of Fig. 2's pipeline)."""

    def __init__(
        self,
        boundary_policy: BoundaryPolicy = _pmemcheck_policy,
        collector: Optional[ChainIndex] = None,
    ):
        self.boundary_policy = boundary_policy
        self.collector = collector

    # -- streaming API --------------------------------------------------------

    def new_state(self) -> CheckerState:
        return CheckerState()

    def feed(self, state: CheckerState, event: TraceEvent) -> None:
        """Advance ``state`` by one trace event."""
        dirty, flushing = state.dirty, state.flushing
        collector = self.collector
        if isinstance(event, StoreEvent):
            if event.space != "pm":
                return
            lines = lines_covering(event.addr, event.size)
            for line_addr in lines:
                if event.nontemporal:
                    # MOVNT: already write-combining-queued; it
                    # needs no flush, only an ordering fence.
                    flushing.setdefault(line_addr, []).append((event, None))
                else:
                    dirty.setdefault(line_addr, []).append(event)
            if collector is not None:
                collector.observe_event(event, lines)
        elif isinstance(event, FlushEvent):
            line_addr = event.line_addr
            if not event.had_work:
                note = state.perf.get(event.iid)
                if note is None:
                    state.perf[event.iid] = PerfReport(event)
                else:
                    note.occurrences += 1
            pending = dirty.pop(line_addr, [])
            if event.flush_kind == "clflush":
                # Strongly ordered: line durable immediately.
                flushing.pop(line_addr, None)
            else:
                if pending:
                    flushing.setdefault(line_addr, []).extend(
                        (store, event) for store in pending
                    )
            if collector is not None:
                collector.observe_event(event, (line_addr,))
        elif isinstance(event, FenceEvent):
            if collector is not None:
                # A fence drains the queued lines and, by existing at
                # all, decides the flush-vs-flush&fence classification
                # of every dirty store — both depend on it.
                collector.observe_event(
                    event, list(flushing.keys()) + list(dirty.keys())
                )
            state.fence_seqs.append(event.seq)
            flushing.clear()
        elif isinstance(event, BoundaryEvent):
            scope = self.boundary_policy(event)
            if scope is None:
                return
            if collector is not None:
                collector.observe_event(
                    event, list(dirty.keys()) + list(flushing.keys())
                )

            def in_scope(store: StoreEvent) -> bool:
                if scope == "all":
                    return True
                lo, hi = scope  # type: ignore[misc]
                return store.addr < hi and store.addr + store.size > lo

            for stores in dirty.values():
                for store in stores:
                    if not in_scope(store):
                        continue
                    fence_after = (
                        bisect.bisect_right(state.fence_seqs, store.seq)
                        < len(state.fence_seqs)
                    )
                    kind = (
                        BugKind.MISSING_FLUSH
                        if fence_after
                        else BugKind.MISSING_FLUSH_FENCE
                    )
                    self._report(state, kind, store, event, None)
            for pairs in flushing.values():
                for store, flush in pairs:
                    if in_scope(store):
                        self._report(
                            state, BugKind.MISSING_FENCE, store, event, flush
                        )

    def _report(
        self,
        state: CheckerState,
        kind: BugKind,
        store: StoreEvent,
        boundary: BoundaryEvent,
        flush: Optional[FlushEvent],
    ) -> None:
        if store.seq in state.attributed_seqs:
            return
        state.attributed_seqs.add(store.seq)
        # One report per (store instruction, bug kind, *call path*).
        # The call path matters: the same store inside a shared helper
        # like memcpy reached through different call sites is a
        # distinct bug with a distinct (hoisted) fix location.
        path = tuple(frame.iid for frame in store.caller_frames)
        key = (store.iid, kind, path)
        existing = state.reports.get(key)
        if existing is None:
            state.reports[key] = BugReport(
                kind=kind,
                store=store,
                boundary=boundary,
                flush=flush,
                report_id=len(state.reports) + 1,
            )
        else:
            existing.occurrences += 1
        if self.collector is not None:
            self.collector.observe_bug(
                key, store, lines_covering(store.addr, store.size)
            )

    def finalize(self, state: CheckerState) -> DetectionResult:
        """Package a state's accumulated findings (state is unchanged)."""
        result = DetectionResult()
        result.bugs = sorted(
            state.reports.values(), key=lambda b: (b.store.seq, b.kind.value)
        )
        result.perf = sorted(state.perf.values(), key=lambda p: p.flush.seq)
        return result

    # -- one-shot API ---------------------------------------------------------

    def check(self, trace: PMTrace) -> DetectionResult:
        state = self.new_state()
        for event in trace:
            self.feed(state, event)
        return self.finalize(state)


def check_trace(trace: PMTrace) -> DetectionResult:
    """Run the pmemcheck-style checker over a trace."""
    return DurabilityChecker().check(trace)


def check_trace_pmtest(trace: PMTrace) -> DetectionResult:
    """Run the PMTest-style assertion checker over a trace."""
    return DurabilityChecker(_pmtest_policy).check(trace)


def check_trace_with_dependencies(
    trace: PMTrace, boundary_policy: BoundaryPolicy = _pmemcheck_policy
) -> Tuple[DetectionResult, ChainIndex]:
    """Check a trace while collecting the chain dependency index."""
    index = ChainIndex()
    checker = DurabilityChecker(boundary_policy, collector=index)
    return checker.check(trace), index
