"""The durable image of persistent memory.

The address space's PM region (:class:`~repro.memory.layout.Region`)
holds the *cache view*: what the program observes through loads, i.e.
the most recent stores, whether flushed or not.  This module maintains
the *durable view*: the bytes that have actually reached the PM media.
A store's journey (the paper's §4.2 lifecycle) is::

    store X        -> cache view updated, line dirty
    flush F(X)     -> line queued for write-back (weakly ordered)
    fence M        -> write-back completes: durable view updated

On a crash, the program (and the cache view) is lost; only the durable
view survives — plus, nondeterministically, any pending line (dirty or
queued) that the hardware happened to evict in time.  The checker is
adversarial: it assumes pending lines did *not* survive.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .layout import AddressSpace, CACHE_LINE, line_of


class PersistentImage:
    """Tracks the durable bytes of the PM region."""

    def __init__(self, space: AddressSpace):
        self.space = space
        self._durable = bytearray(space.pm.data)  # starts in sync
        #: number of line write-backs performed (a persistence-traffic
        #: counter used by performance benchmarks)
        self.writebacks = 0
        # Highest durable offset that may hold a nonzero byte.  The
        # initial copy is nonzero only below the cache view's high-water
        # mark, and every later mutation raises the bound, so a pooled
        # reset only has to zero this prefix instead of all 16 MiB.
        self._dirty_high = space.pm.high_water

    # -- write-back ------------------------------------------------------------

    def write_back_line(self, line_addr: int) -> None:
        """Copy one cache line from the cache view to the durable view."""
        offset = line_addr - self.space.pm.base
        self._durable[offset : offset + CACHE_LINE] = self.space.pm.data[
            offset : offset + CACHE_LINE
        ]
        if offset + CACHE_LINE > self._dirty_high:
            self._dirty_high = offset + CACHE_LINE
        self.writebacks += 1

    def write_back_lines(self, line_addrs: Iterable[int]) -> None:
        for line_addr in sorted(line_addrs):
            self.write_back_line(line_addr)

    # -- inspection -------------------------------------------------------------

    def durable_bytes(self, addr: int, size: int) -> bytes:
        """Read from the durable view (what a post-crash program sees)."""
        offset = addr - self.space.pm.base
        if offset < 0 or offset + size > len(self._durable):
            raise IndexError(f"durable read out of range at {addr:#x}")
        return bytes(self._durable[offset : offset + size])

    def cache_bytes(self, addr: int, size: int) -> bytes:
        """Read from the cache view (what the running program sees)."""
        return self.space.read_bytes(addr, size)

    def line_divergence(self) -> List[int]:
        """Lines whose cache view differs from the durable view."""
        diverged = []
        data, durable = self.space.pm.data, self._durable
        for offset in range(0, len(durable), CACHE_LINE):
            if data[offset : offset + CACHE_LINE] != durable[offset : offset + CACHE_LINE]:
                diverged.append(self.space.pm.base + offset)
        return diverged

    def is_line_durable(self, addr: int) -> bool:
        """True if the line containing ``addr`` is identical in both views."""
        offset = line_of(addr) - self.space.pm.base
        return (
            self.space.pm.data[offset : offset + CACHE_LINE]
            == self._durable[offset : offset + CACHE_LINE]
        )

    # -- crash ---------------------------------------------------------------------

    def crash(self, surviving_lines: Iterable[int] = ()) -> bytes:
        """Simulate a crash and return the post-crash PM contents.

        ``surviving_lines`` models the hardware nondeterminism: pending
        lines that happened to be written back before power was lost.
        The adversarial default is that none survive.
        """
        image = bytearray(self._durable)
        for line_addr in surviving_lines:
            offset = line_addr - self.space.pm.base
            image[offset : offset + CACHE_LINE] = self.space.pm.data[
                offset : offset + CACHE_LINE
            ]
        return bytes(image)

    def snapshot_durable(self) -> bytes:
        return bytes(self._durable)

    def restore(self, image: bytes) -> None:
        """Load a post-crash image as the durable contents.

        Used when rebooting a machine from a crash state: the durable
        view becomes the image and nothing is pending.
        """
        if len(image) > len(self._durable):
            raise IndexError("restore image larger than the PM region")
        self._durable[: len(image)] = image
        if len(image) > self._dirty_high:
            self._dirty_high = len(image)

    # -- pooled reuse ---------------------------------------------------------------

    def restore_prefix(self, durable: bytes) -> None:
        """Make the durable view exactly ``durable`` padded with zeroes.

        Equivalent to constructing a fresh image over an all-zero PM
        region and then writing ``durable`` at offset 0, but reuses the
        existing buffer: stale bytes between ``len(durable)`` and the
        previous dirty bound are zeroed explicitly.
        """
        if len(durable) > len(self._durable):
            raise IndexError("restore image larger than the PM region")
        if self._dirty_high > len(durable):
            self._durable[len(durable) : self._dirty_high] = bytes(
                self._dirty_high - len(durable)
            )
        self._durable[: len(durable)] = durable
        self._dirty_high = len(durable)

    def reset(self) -> None:
        """Return the image to its freshly constructed, all-zero state.

        Valid only when the owning :class:`AddressSpace` has been (or is
        about to be) reset too: both views become all zeroes, in sync.
        """
        if self._dirty_high:
            self._durable[: self._dirty_high] = bytes(self._dirty_high)
        self._dirty_high = 0
        self.writebacks = 0
