"""Unit tests for the IR type system."""

import pytest

from repro.ir import I1, I8, I16, I32, I64, IntType, PTR, VOID, type_from_name
from repro.ir.types import PointerType, VoidType


class TestIntType:
    def test_interning(self):
        assert IntType(64) is I64
        assert IntType(8) is I8

    def test_sizes(self):
        assert I8.size == 1
        assert I16.size == 2
        assert I32.size == 4
        assert I64.size == 8
        assert I1.size == 1  # books a full byte

    def test_masks(self):
        assert I8.mask == 0xFF
        assert I64.mask == (1 << 64) - 1
        assert I1.mask == 1

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(13)

    def test_predicates(self):
        assert I64.is_integer
        assert not I64.is_pointer
        assert not I64.is_void

    def test_repr(self):
        assert repr(I32) == "i32"


class TestPointerAndVoid:
    def test_pointer_singleton(self):
        assert PointerType() is PTR
        assert PTR.size == 8
        assert PTR.is_pointer

    def test_void_singleton(self):
        assert VoidType() is VOID
        assert VOID.is_void
        assert VOID.size == 0

    def test_equality_across_instances(self):
        assert IntType(64) == I64
        assert PTR != I64


class TestTypeFromName:
    @pytest.mark.parametrize(
        "name,expected",
        [("i1", I1), ("i8", I8), ("i16", I16), ("i32", I32), ("i64", I64),
         ("ptr", PTR), ("void", VOID)],
    )
    def test_known_names(self, name, expected):
        assert type_from_name(name) is expected

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            type_from_name("i128")
