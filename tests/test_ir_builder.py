"""Unit tests for IRBuilder / ModuleBuilder."""

import pytest

from repro.errors import IRError
from repro.ir import (
    DebugLoc,
    I8,
    I64,
    IRBuilder,
    ModuleBuilder,
    PTR,
    verify_module,
)


def test_builder_emits_into_entry():
    mb = ModuleBuilder("m")
    b = mb.function("f", [("x", I64)], I64)
    result = b.add(b.function.args[0], 1)
    b.ret(result)
    fn = mb.module.get_function("f")
    assert [i.opcode for i in fn.entry] == ["add", "ret"]


def test_auto_value_names_unique():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    v1 = b.add(1, 2)
    v2 = b.add(3, 4)
    assert v1.name != v2.name
    b.ret(v1)


def test_debug_lines_increase_per_file():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64, source_file="app.c")
    first = b.add(1, 2)
    second = b.add(3, 4)
    assert first.loc.file == "app.c"
    assert second.loc.line == first.loc.line + 1
    b.ret(second)
    # A second function in the same pseudo file continues numbering.
    b2 = mb.function("g", [], I64, source_file="app.c")
    third = b2.add(5, 6)
    assert third.loc.line > second.loc.line
    b2.ret(third)


def test_explicit_loc_pinning():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    b.set_loc(DebugLoc("pinned.c", 99))
    v = b.add(1, 1)
    assert v.loc == DebugLoc("pinned.c", 99)
    b.set_loc(None)
    w = b.add(2, 2)
    assert w.loc.file != "pinned.c"
    b.ret(w)


def test_int_operands_wrapped_as_constants():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    v = b.add(1, 2)
    assert all(op.type is I64 for op in v.operands)
    b.ret(0)


def test_store_with_type():
    mb = ModuleBuilder("m")
    b = mb.function("f", [("p", PTR)], I64)
    store = b.store(0xAB, b.function.args[0], I8)
    assert store.size == 1
    b.ret(0)


def test_blocks_and_positioning():
    mb = ModuleBuilder("m")
    b = mb.function("f", [("c", I64)], I64)
    then_b = b.new_block("then")
    else_b = b.new_block("else")
    cond = b.icmp("ne", b.function.args[0], 0)
    b.br(cond, then_b, else_b)
    b.position_at_end(then_b)
    b.ret(1)
    b.position_at_end(else_b)
    b.ret(0)
    verify_module(mb.module)


def test_append_after_terminator_rejected():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    b.ret(0)
    with pytest.raises(IRError):
        b.add(1, 2)


def test_builder_requires_block():
    from repro.ir import Function

    fn = Function("orphan", [], I64)
    builder = IRBuilder(fn)
    with pytest.raises(IRError):
        builder.add(1, 2)


def test_duplicate_function_rejected():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    b.ret(0)
    with pytest.raises(IRError):
        mb.function("f", [], I64)


def test_block_name_uniquing():
    mb = ModuleBuilder("m")
    b = mb.function("f", [], I64)
    block1 = b.new_block("loop")
    block2 = b.new_block("loop")
    assert block1.name != block2.name
    b.jmp(block1)
    b.position_at_end(block1)
    b.jmp(block2)
    b.position_at_end(block2)
    b.ret(0)
    verify_module(mb.module)


def test_globals():
    mb = ModuleBuilder("m")
    gv = mb.global_("buf", 64, "pm")
    assert mb.module.get_global("buf") is gv
