"""Observability smoke check: ``python -m repro.obs.smoke``.

Runs a small corpus batch twice — observability off, then on — and
checks the whole contract end to end:

1. the two canonical batch reports are **byte-identical** (metrics and
   spans never leak into the deterministic output);
2. the spans JSONL parses and every record matches the documented
   schema;
3. the metrics snapshot validates and contains the pipeline's core
   counters;
4. the metrics artifact is written (for CI upload).

Exit code 0 on success, 1 with a diagnostic on any violation.  This is
the CI ``obs-smoke`` job's entry point, but it runs anywhere the
package does.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List, Optional

from .observability import Observability
from .sink import JsonlSink, load_metrics, validate_spans_file

#: counters an instrumented corpus batch must have touched
REQUIRED_COUNTERS = ("pipeline.bugs", "pipeline.fixes_applied", "interp.steps")


def run_smoke(
    cases: int = 3,
    metrics_out: Optional[str] = None,
    spans_out: Optional[str] = None,
    mode: str = "inprocess",
) -> List[str]:
    """Run the smoke check; returns a list of problems (empty = pass)."""
    from ..supervisor import SupervisorConfig, corpus_tasks, run_batch

    problems: List[str] = []
    config = SupervisorConfig(mode=mode, jobs=2)
    case_ids = [task.task_id for task in corpus_tasks()][:cases]

    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as tmp:
        spans_path = spans_out or os.path.join(tmp, "spans.jsonl")
        metrics_path = metrics_out or os.path.join(tmp, "metrics.json")

        baseline = run_batch(
            corpus_tasks(case_ids),
            journal_path=os.path.join(tmp, "off.journal"),
            config=config,
        )
        baseline_bytes = baseline.canonical_json()

        sink = JsonlSink(spans_path)
        obs = Observability(sink=sink)
        try:
            instrumented = run_batch(
                corpus_tasks(case_ids),
                journal_path=os.path.join(tmp, "on.journal"),
                config=config,
                obs=obs,
            )
        finally:
            obs.close()
        obs.write_metrics(metrics_path)

        if instrumented.canonical_json() != baseline_bytes:
            problems.append(
                "canonical report differs with observability enabled"
            )
        if sink.dropped:
            problems.append(f"sink dropped {sink.dropped} record(s)")

        try:
            count = validate_spans_file(spans_path)
        except Exception as exc:
            problems.append(f"spans file invalid: {exc}")
        else:
            if count == 0:
                problems.append("spans file is empty")
            else:
                print(f"spans: {count} valid record(s) in {spans_path}")

        try:
            payload = load_metrics(metrics_path)
        except Exception as exc:
            problems.append(f"metrics file invalid: {exc}")
        else:
            counters = payload.get("counters", {})
            for name in REQUIRED_COUNTERS:
                if not counters.get(name):
                    problems.append(f"metrics missing counter {name!r}")
            print(
                f"metrics: {len(counters)} counter(s) in {metrics_path}"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke",
        description="observability smoke check: byte-identity + schema",
    )
    parser.add_argument("--cases", type=int, default=3,
                        help="corpus cases to run (default: %(default)s)")
    parser.add_argument("--metrics-out", help="keep the metrics artifact here")
    parser.add_argument("--spans-out", help="keep the spans artifact here")
    parser.add_argument(
        "--mode",
        choices=("auto", "subprocess", "inprocess"),
        default="inprocess",
        help="supervisor worker mode (default: %(default)s)",
    )
    ns = parser.parse_args(argv)
    problems = run_smoke(
        cases=ns.cases,
        metrics_out=ns.metrics_out,
        spans_out=ns.spans_out,
        mode=ns.mode,
    )
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("obs smoke: canonical bytes identical, schema valid")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
