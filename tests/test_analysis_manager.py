"""The analysis manager: caching, invalidation, disk sharing, and the
cache-on/cache-off differential.

Covers the invalidation matrix (flush/fence insertion preserves the
whole-program analyses; clones/retargets drop them; clean rollbacks
preserve everything), failure memoization (a budget-exhausted Andersen
solves once, not once per mode per fix), the content-addressed on-disk
round trip (including the UNKNOWN site's identity), and the contract
that matters most: enabling the cache never changes repair output —
byte-identical batch reports, including across a mid-run kill/resume.
"""

import json
import os

import pytest

from repro.analysis import CallGraph, PointsTo, UNKNOWN_SITE
from repro.analysis.diskcache import AnalysisDiskCache
from repro.analysis.manager import (
    CALLGRAPH,
    POINTS_TO,
    VERIFIED,
    AnalysisManager,
    classification_key,
)
from repro.budget import Budget
from repro.core import Hippocrates
from repro.core.transaction import FixTransaction
from repro.detect import pmemcheck_run
from repro.errors import BudgetExceeded
from repro.faultinject.resume import run_kill_resume
from repro.ir import (
    I64,
    ModuleBuilder,
    PTR,
    format_module,
    parse_module,
)
from repro.supervisor import corpus_tasks, run_batch, SupervisorConfig

from conftest import build_listing5_module, drive_main


def build_module():
    mb = ModuleBuilder("mgr")
    b = mb.function("main", [], I64, source_file="m.c")
    p = b.call("pm_alloc", [64], PTR)
    b.store(7, p)
    b.ret(0)
    return mb.module


# ---------------------------------------------------------------------------
# caching basics
# ---------------------------------------------------------------------------


def test_repeated_lookup_hits_the_cache():
    module = build_module()
    manager = AnalysisManager(module)
    first = manager.get(POINTS_TO)
    assert manager.get(POINTS_TO) is first
    assert manager.stats.misses == 1
    assert manager.stats.hits == 1


def test_mutation_without_notification_recomputes():
    module = build_module()
    manager = AnalysisManager(module)
    first = manager.get(POINTS_TO)
    module.bump_epoch()  # a mutation nobody revalidated
    assert manager.get(POINTS_TO) is not first
    assert manager.stats.misses == 2


def test_unknown_key_raises():
    manager = AnalysisManager(build_module())
    with pytest.raises(KeyError):
        manager.get("no-such-analysis")


# ---------------------------------------------------------------------------
# the invalidation matrix
# ---------------------------------------------------------------------------


def test_flush_fence_commit_preserves_whole_program_analyses():
    module = build_module()
    manager = AnalysisManager(module)
    points_to = manager.get(POINTS_TO)
    callgraph = manager.get(CALLGRAPH)

    txn = FixTransaction(module, manager=manager)
    txn.touch("main")
    module.bump_epoch()  # the inserted flush/fence
    txn.commit()

    assert manager.get(POINTS_TO) is points_to
    assert manager.get(CALLGRAPH) is callgraph


def test_structural_commit_drops_points_to_and_callgraph():
    module = build_module()
    manager = AnalysisManager(module)
    points_to = manager.get(POINTS_TO)
    callgraph = manager.get(CALLGRAPH)

    txn = FixTransaction(module, manager=manager)
    call = next(i for i in module.get_function("main").entry if i.opcode == "call")
    txn.track_attr(call, "callee")  # marks the mutation structural
    call.callee = "pm_alloc_PM"
    module.bump_epoch()
    txn.commit()

    assert manager.get(POINTS_TO) is not points_to
    assert manager.get(CALLGRAPH) is not callgraph


def test_structural_commit_cascades_to_dependents():
    module = build_module()
    manager = AnalysisManager(module)
    manager.register(
        classification_key("full"),
        lambda m: object(),
        depends=(POINTS_TO,),
    )
    first = manager.get(classification_key("full"))

    txn = FixTransaction(module, manager=manager)
    txn.track_attr(module.get_function("main"), "name")  # any structural witness
    module.bump_epoch()
    txn.commit()

    assert manager.get(classification_key("full")) is not first


def test_commit_drops_only_touched_verified_state():
    module = build_listing5_module()
    manager = AnalysisManager(module)
    manager.verify_scope(["update", "modify"])
    baseline_misses = manager.stats.misses

    txn = FixTransaction(module, manager=manager)
    txn.touch("update")
    module.bump_epoch()
    txn.commit()

    manager.verify_scope(["update", "modify"])
    # "update" re-verified (one more miss); "modify" was revalidated.
    assert manager.stats.misses == baseline_misses + 1


def test_clean_rollback_preserves_everything():
    module = build_module()
    manager = AnalysisManager(module)
    points_to = manager.get(POINTS_TO)

    txn = FixTransaction(module, manager=manager)
    call = next(i for i in module.get_function("main").entry if i.opcode == "call")
    txn.track_attr(call, "callee")
    call.callee = "pm_alloc_PM"
    module.bump_epoch()
    txn.rollback()

    assert call.callee == "pm_alloc"
    assert manager.get(POINTS_TO) is points_to
    assert manager.stats.misses == 1


# ---------------------------------------------------------------------------
# failure memoization
# ---------------------------------------------------------------------------


def test_failures_replay_without_recomputing():
    module = build_module()
    manager = AnalysisManager(module)
    calls = []

    def doomed(_module):
        calls.append(1)
        raise BudgetExceeded("analysis budget exhausted")

    manager.register("doomed", doomed)
    with pytest.raises(BudgetExceeded):
        manager.get("doomed")
    with pytest.raises(BudgetExceeded):
        manager.get("doomed")
    assert len(calls) == 1
    assert manager.stats.failures_replayed == 1


def test_failures_do_not_survive_revalidation():
    module = build_module()
    manager = AnalysisManager(module)
    attempts = []

    def flaky(_module):
        attempts.append(1)
        if len(attempts) == 1:
            raise BudgetExceeded("first attempt dies")
        return "ok"

    manager.register("flaky", flaky)
    with pytest.raises(BudgetExceeded):
        manager.get("flaky")

    # A clean rollback revalidates cached *values* but must drop the
    # cached failure: the failed attempt described a different content
    # state and replaying it here would wedge the analysis forever.
    txn = FixTransaction(module, manager=manager)
    txn.track_attr(module.get_function("main"), "name")
    module.bump_epoch()
    txn.rollback()

    assert manager.get("flaky") == "ok"


def test_exhausted_budget_solves_andersen_exactly_once(monkeypatch):
    """The satellite bugfix: a budget-exhausted Full-AA downgrades
    through trace to off with exactly one fixpoint attempt — the cached
    failure replays for the trace mode instead of re-solving."""
    module = build_listing5_module()
    detection, trace, interp = pmemcheck_run(module, drive_main)

    import repro.analysis.manager as manager_module

    constructions = []
    real_points_to = manager_module.PointsTo

    def counting_points_to(*args, **kwargs):
        constructions.append(1)
        return real_points_to(*args, **kwargs)

    monkeypatch.setattr(manager_module, "PointsTo", counting_points_to)

    fixer = Hippocrates(
        module,
        trace,
        interp.machine,
        analysis_budget=Budget(max_items=1, label="andersen"),
    )
    report = fixer.fix()

    assert len(constructions) == 1
    assert fixer.effective_heuristic == "off"
    assert [d.to_mode for d in report.downgrades] == ["trace", "off"]
    # Degraded all the way down, the always-safe baseline still repairs.
    assert report.bugs_fixed == detection.bug_count


# ---------------------------------------------------------------------------
# the on-disk cache
# ---------------------------------------------------------------------------


def build_disk_module():
    mb = ModuleBuilder("disk")
    b = mb.function("make", [("n", I64)], PTR, source_file="d.c")
    raw = b.cast("inttoptr", b.function.args[0], PTR)  # -> UNKNOWN site
    pm = b.call("pm_alloc", [64], PTR)
    cond = b.icmp("eq", b.function.args[0], 0)
    b.ret(b.select(cond, pm, raw))
    b = mb.function("main", [], I64, source_file="d.c")
    p = b.call("make", [3], PTR)
    slot = b.alloca(8)
    b.store(p, slot)
    b.store(5, b.load(slot, PTR))
    b.ret(0)
    return mb.module


def test_disk_round_trip_preserves_solution(tmp_path):
    module = build_disk_module()
    cache = AnalysisDiskCache(str(tmp_path))
    assert cache.load(module) is None  # empty cache -> miss
    solved = PointsTo(module)
    assert cache.store(module, solved, CallGraph(module))

    reparsed = parse_module(format_module(module))
    restored = cache.load(reparsed)
    assert restored is not None
    points_to, callgraph = restored
    assert callgraph.summary() == CallGraph(module).summary()

    for fn_name in module.function_names():
        original_fn = module.get_function(fn_name)
        restored_fn = reparsed.get_function(fn_name)
        for a, b in zip(original_fn.instructions(), restored_fn.instructions()):
            sites_a = solved.sites_of(a)
            sites_b = points_to.sites_of(b)
            assert len(sites_a) == len(sites_b)
            assert {s.space for s in sites_a} == {s.space for s in sites_b}


def test_disk_round_trip_keeps_unknown_site_identity(tmp_path):
    module = build_disk_module()
    cache = AnalysisDiskCache(str(tmp_path))
    cache.store(module, PointsTo(module), CallGraph(module))
    reparsed = parse_module(format_module(module))
    points_to, _ = cache.load(reparsed)

    unknowns = [
        site
        for instr in reparsed.instructions()
        for site in points_to.sites_of(instr)
        if site.space == "unknown"
    ]
    assert unknowns
    # Classifiers compare against the singleton by identity.
    assert all(site is UNKNOWN_SITE for site in unknowns)


def test_corrupt_or_stale_entries_load_as_misses(tmp_path):
    module = build_disk_module()
    cache = AnalysisDiskCache(str(tmp_path))
    cache.store(module, PointsTo(module), CallGraph(module))
    entry_path = os.path.join(str(tmp_path), f"{module.fingerprint()}.json")

    with open(entry_path) as handle:
        payload = json.load(handle)
    payload["schema"] = "some-other-schema"
    with open(entry_path, "w") as handle:
        json.dump(payload, handle)
    assert cache.load(module) is None

    with open(entry_path, "w") as handle:
        handle.write("{ torn mid-wri")
    assert cache.load(module) is None


def test_manager_seeds_callgraph_from_disk_hit(tmp_path):
    module = build_disk_module()
    warmer = AnalysisManager(module, disk_cache=AnalysisDiskCache(str(tmp_path)))
    warmer.get(POINTS_TO)
    assert warmer.stats.disk_misses == 1

    reparsed = parse_module(format_module(module))
    manager = AnalysisManager(
        reparsed, disk_cache=AnalysisDiskCache(str(tmp_path))
    )
    manager.get(POINTS_TO)
    assert manager.stats.disk_hits == 1
    # The call graph came along with the entry: no extra miss for it.
    misses_before = manager.stats.misses
    manager.get(CALLGRAPH)
    assert manager.stats.misses == misses_before


# ---------------------------------------------------------------------------
# scoped verification
# ---------------------------------------------------------------------------


def test_verify_scope_caches_per_function():
    module = build_listing5_module()
    manager = AnalysisManager(module)
    manager.verify_scope(["update", "modify"])
    assert manager.stats.misses == 2
    manager.verify_scope(["update", "modify"])
    assert manager.stats.misses == 2
    assert manager.stats.hits == 2


def test_verify_scope_skips_unknown_functions():
    manager = AnalysisManager(build_module())
    manager.verify_scope(["main", "not-a-function"])
    assert manager.cached((VERIFIED, "main"))
    assert manager.cached((VERIFIED, "not-a-function")) is None


# ---------------------------------------------------------------------------
# the differential: cache on == cache off, byte for byte
# ---------------------------------------------------------------------------


def _config():
    return SupervisorConfig(
        mode="inprocess", jobs=1, max_retries=0, task_timeout=600.0
    )


def test_corpus_cache_on_vs_off_is_byte_identical(tmp_path):
    cache_dir = str(tmp_path / "acache")
    off = run_batch(corpus_tasks(), config=_config())
    cold = run_batch(
        corpus_tasks(analysis_cache_dir=cache_dir), config=_config()
    )
    warm = run_batch(
        corpus_tasks(analysis_cache_dir=cache_dir), config=_config()
    )
    assert cold.canonical_json() == off.canonical_json()
    assert warm.canonical_json() == off.canonical_json()
    assert warm.analysis_stats["disk_hits"] == len(warm.outcomes)
    assert "analysis cache" in warm.summary()


def test_resume_after_kill_with_cache_is_byte_identical(tmp_path):
    cases = ["PMDK-447", "PMDK-452", "PMDK-458"]
    cache_dir = str(tmp_path / "acache")
    baseline = run_batch(corpus_tasks(cases), config=_config())
    record = run_kill_resume(
        corpus_tasks(cases, analysis_cache_dir=cache_dir),
        str(tmp_path / "kill.journal"),
        boundary=3,  # right after the first task-done checkpoint
        baseline_bytes=baseline.canonical_json(),
        torn=False,
    )
    assert record.ok, record.problems
