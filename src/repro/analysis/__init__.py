"""Static analysis substrate: call graphs, Andersen points-to, and the
PM pointer classifiers feeding the hoisting heuristic."""

from .aliasing import PMClassification, classify_full_aa, classify_trace_aa
from .andersen import AllocSite, PointsTo, UNKNOWN_SITE, analyze
from .callgraph import CallGraph
from .diskcache import AnalysisDiskCache
from .manager import (
    AnalysisManager,
    AnalysisStats,
    CALLGRAPH,
    LOCATOR,
    POINTS_TO,
    VERIFIED,
    classification_key,
)

__all__ = [
    "AllocSite",
    "analyze",
    "AnalysisDiskCache",
    "AnalysisManager",
    "AnalysisStats",
    "CallGraph",
    "CALLGRAPH",
    "classification_key",
    "classify_full_aa",
    "classify_trace_aa",
    "LOCATOR",
    "PMClassification",
    "POINTS_TO",
    "PointsTo",
    "UNKNOWN_SITE",
    "VERIFIED",
]
