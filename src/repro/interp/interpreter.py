"""The IR interpreter: executes modules against the PM hardware model.

This is the reproduction's stand-in for running the compiled program on
an Optane-equipped machine under pmemcheck: every executed PM store,
flush, and fence both updates the cache/persistence model and emits a
trace event carrying the source location and call stack — the exact
input Hippocrates consumes.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from ..errors import FuelExhausted, InterpreterError, TrapError
from ..ir.debuginfo import DebugLoc
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Fence,
    Flush,
    Gep,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    Trap,
)
from ..ir.module import Module
from ..ir.types import IntType
from ..ir.values import Argument, Constant, GlobalVariable, Value
from ..memory.cache import CacheModel
from ..memory.layout import AddressSpace, line_of
from ..memory.persistence import PersistentImage
from ..trace.events import StackFrame
from ..trace.trace import PMTrace, TraceRecorder
from .costs import CostCounter, CostModel
from .frame import Frame
from .intrinsics import is_intrinsic, lookup

_U64 = (1 << 64) - 1


@dataclass
class Allocation:
    """A dynamic allocation, tagged with its allocation site.

    The site key feeds the Trace-AA PM classifier: a traced PM store
    address resolves (through this registry) to the allocation site
    whose points-to node the heuristic marks as persistent.
    """

    start: int
    size: int
    site: str

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


class Machine:
    """Hardware state: address space, cache model, durable image, trace."""

    # Allocation-site index state.  Class-level defaults (not set in
    # ``__init__``) because snapshot restore materializes machines via
    # ``Machine.__new__`` — those instances must also start unindexed.
    _site_source: Optional[List[Allocation]] = None
    _site_count = -1
    _site_starts: List[int] = []
    _site_allocs: List[Allocation] = []

    def __init__(
        self,
        record_volatile_stores: bool = False,
        pm_size: int = 1 << 24,
        space: Optional[AddressSpace] = None,
        image: Optional[PersistentImage] = None,
    ):
        # ``space``/``image`` accept clean pooled buffers (see
        # :class:`~repro.memory.pool.MachinePool.acquire`); they must be
        # indistinguishable from freshly constructed ones, so the
        # resulting machine is too.  When ``space`` is given,
        # ``pm_size`` is ignored.
        if space is None:
            space = AddressSpace(pm_size=pm_size)
        self.space = space
        self.image = image if image is not None else PersistentImage(space)
        self.cache = CacheModel(self.space, self.image)
        self._stack_provider = lambda: ()
        self.recorder = TraceRecorder(
            lambda: self._stack_provider(), record_volatile_stores
        )
        self.allocations: List[Allocation] = []
        self.global_addrs: Dict[str, int] = {}
        self.pm_root_addr: Optional[int] = None
        self.pm_root_size = 0
        #: flushes issued against volatile addresses (legal, wasteful)
        self.volatile_flushes = 0

    # -- allocation registry -----------------------------------------------------

    def register_allocation(self, start: int, size: int, site: str) -> None:
        self.allocations.append(Allocation(start, size, site))

    def site_of_addr(self, addr: int) -> Optional[str]:
        """Allocation-site key owning ``addr``.

        Backed by a lazily-(re)built sorted interval index: one
        ``bisect`` per query instead of a linear scan over every
        allocation — this sits on the addr→site path the Trace-AA
        classifier walks for every traced PM store.  Allocations come
        from bump allocators and never overlap, so the predecessor
        interval is the only candidate.
        """
        allocations = self.allocations
        if (
            self._site_source is not allocations
            or self._site_count != len(allocations)
        ):
            ordered = sorted(allocations, key=lambda alloc: alloc.start)
            self._site_starts = [alloc.start for alloc in ordered]
            self._site_allocs = ordered
            self._site_source = allocations
            self._site_count = len(allocations)
        index = bisect_right(self._site_starts, addr) - 1
        if index >= 0:
            alloc = self._site_allocs[index]
            if alloc.contains(addr):
                return alloc.site
        return None

    # -- module loading -------------------------------------------------------------

    def bind_globals(self, module: Module) -> None:
        for gv in module.globals.values():
            if gv.name in self.global_addrs:
                continue
            if gv.space == "pm":
                addr = self.space.alloc_pm(gv.size, align=64)
            else:
                addr = self.space.alloc_vol(gv.size, align=8)
            if gv.initializer:
                self.space.write_bytes(addr, gv.initializer)
                if gv.space == "pm":
                    # Initial pool contents are durable by construction.
                    for line_addr in range(
                        line_of(addr), addr + gv.size, 64
                    ):
                        self.image.write_back_line(line_addr)
            self.global_addrs[gv.name] = addr
            self.register_allocation(addr, gv.size, f"global:{gv.name}")

    @property
    def trace(self) -> PMTrace:
        return self.recorder.trace

    @classmethod
    def reboot(cls, old_machine: "Machine", crash_image: bytes) -> "Machine":
        """A fresh machine booted from a post-crash PM image.

        Models restarting the process after a power failure: persistent
        memory holds exactly ``crash_image`` (typically from
        :meth:`PersistentImage.crash` or a
        :class:`~repro.memory.crash.CrashState`), caches are cold,
        volatile memory is gone.  PM addresses are stable: the pool
        root, PM globals, and the allocator watermark carry over, so
        recovery code can chase the pointers it persisted.
        """
        machine = cls(pm_size=old_machine.space.pm.size)
        machine.space.pm.data[: len(crash_image)] = crash_image
        machine.image.restore(crash_image)
        machine.space.pm.set_brk(old_machine.space.pm.brk)
        machine.pm_root_addr = old_machine.pm_root_addr
        machine.pm_root_size = old_machine.pm_root_size
        # PM globals keep their addresses (they live in the image); the
        # registry of persistent allocations also survives.
        for name, addr in old_machine.global_addrs.items():
            if old_machine.space.is_pm(addr):
                machine.global_addrs[name] = addr
        for allocation in old_machine.allocations:
            if old_machine.space.is_pm(allocation.start):
                machine.register_allocation(
                    allocation.start, allocation.size, allocation.site
                )
        return machine


@dataclass
class ExecutionResult:
    """Outcome of one entry-point call."""

    value: int
    steps: int
    cycles: int
    output: List[int] = field(default_factory=list)


class Interpreter:
    """Executes IR functions in a :class:`Machine`.

    One interpreter = one process lifetime: a workload may make many
    entry-point calls; :meth:`finish` marks process exit (recording the
    final durability boundary, as pmemcheck does at program end).
    """

    def __init__(
        self,
        module: Module,
        machine: Optional[Machine] = None,
        cost_model: Optional[CostModel] = None,
        fuel: int = 50_000_000,
        record_volatile_stores: bool = False,
        metrics=None,
        run_recorder=None,
    ):
        self.module = module
        self.machine = machine or Machine(record_volatile_stores)
        self.machine.bind_globals(module)
        self.machine._stack_provider = self._capture_stack
        self.costs = CostCounter(cost_model or CostModel())
        self.fuel = fuel
        self.steps = 0
        self.frames: List[Frame] = []
        self.output: List[int] = []
        self._finished = False
        #: optional :class:`~repro.obs.metrics.MetricsRegistry`; step and
        #: flush/fence/store totals are folded in once, at :meth:`finish`
        #: — nothing touches the registry on the hot execution path.
        self.metrics = metrics
        #: optional :class:`~repro.revalidate.recording.RunRecorder`:
        #: notified at top-level call boundaries so incremental
        #: revalidation can memoize machine snapshots and per-segment
        #: executed-iid sets.  None (the default) keeps plain runs on
        #: the unrecorded path — one pointer compare per call plus one
        #: ``is None`` test per step.
        self._run_recorder = run_recorder
        #: the current segment's executed-iid set (owned by the run
        #: recorder; None when not recording)
        self._seg_iids = None

    # -- stack capture -----------------------------------------------------------------

    def _capture_stack(self) -> Tuple[StackFrame, ...]:
        frames = []
        for frame in self.frames:
            instr = frame.current
            if instr is None:
                continue
            frames.append(StackFrame(frame.function.name, instr.iid, instr.loc))
        return tuple(frames)

    def current_iid(self) -> int:
        if self.frames and self.frames[-1].current is not None:
            return self.frames[-1].current.iid
        return 0

    # -- value evaluation -----------------------------------------------------------------

    def _eval(self, value: Value, frame: Frame) -> int:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalVariable):
            return self.machine.global_addrs[value.name]
        try:
            return frame.values[value]
        except KeyError:
            raise InterpreterError(
                f"undefined value {value.short()} in @{frame.function.name}"
            ) from None

    # -- public API ---------------------------------------------------------------------------

    def call(self, fn_name: str, args: Optional[List[int]] = None) -> ExecutionResult:
        """Call an IR function to completion and return its result."""
        if self._finished:
            raise InterpreterError("interpreter already finished")
        fn = self.module.get_function(fn_name)
        args = args or []
        if len(args) != len(fn.args):
            raise InterpreterError(
                f"@{fn_name} expects {len(fn.args)} args, got {len(args)}"
            )
        recorder = self._run_recorder
        top_level = not self.frames
        if recorder is not None and top_level:
            recorder.begin_call(self, fn_name, args)
        start_steps = self.steps
        start_cycles = self.costs.cycles
        start_output = len(self.output)
        value = self._run(fn, args)
        result = ExecutionResult(
            value=value,
            steps=self.steps - start_steps,
            cycles=self.costs.cycles - start_cycles,
            output=self.output[start_output:],
        )
        if recorder is not None and top_level:
            recorder.end_call(self, result)
        return result

    def finish(self) -> PMTrace:
        """Mark process exit; records the final durability boundary."""
        if not self._finished:
            self._finished = True
            self._record_exit_boundary()
            if self.metrics is not None:
                counts = self.costs.counts
                self.metrics.counter("interp.steps").inc(self.steps)
                self.metrics.counter("interp.cycles").inc(self.costs.cycles)
                for kind, name in (
                    ("store", "interp.stores"),
                    ("flush", "interp.flushes"),
                    ("fence", "interp.fences"),
                ):
                    self.metrics.counter(name).inc(counts.get(kind, 0))
                # Per-kind execution histogram (identical on both
                # engines; `repro batch --profile` renders it).
                for kind, count in counts.items():
                    self.metrics.counter(f"interp.ops.{kind}").inc(count)
        return self.machine.trace

    @property
    def trace(self) -> PMTrace:
        return self.machine.trace

    def _record_exit_boundary(self) -> None:
        exit_frame = (
            StackFrame("<exit>", 0, DebugLoc("<exit>", 1)),
        )
        provider = self.machine._stack_provider
        self.machine._stack_provider = lambda: exit_frame
        try:
            self.machine.recorder.record_boundary("exit")
        finally:
            self.machine._stack_provider = provider

    # -- main loop -------------------------------------------------------------------------------

    def _run(self, fn: Function, args: List[int]) -> int:
        base_depth = len(self.frames)
        self._push_frame(fn, args)
        model = self.costs.model
        seg_iids = self._seg_iids
        return_value = 0

        while len(self.frames) > base_depth:
            frame = self.frames[-1]
            if frame.index >= len(frame.block.instructions):
                raise InterpreterError(
                    f"fell off block {frame.block.name} in @{frame.function.name}"
                )
            instr = frame.block.instructions[frame.index]
            frame.index += 1
            frame.current = instr
            self.steps += 1
            if self.steps > self.fuel:
                raise FuelExhausted(f"exceeded fuel of {self.fuel} instructions")
            if seg_iids is not None:
                seg_iids.add(instr.iid)

            if isinstance(instr, Store):
                self._exec_store(instr, frame, model)
            elif isinstance(instr, Load):
                addr = self._eval(instr.pointer, frame)
                frame.values[instr] = self.machine.space.read_int(addr, instr.size)
                self.costs.charge("load", model.load)
            elif isinstance(instr, BinOp):
                self._exec_binop(instr, frame, model)
            elif isinstance(instr, ICmp):
                self._exec_icmp(instr, frame, model)
            elif isinstance(instr, Gep):
                base = self._eval(instr.base, frame)
                offset = self._eval(instr.offset, frame)
                frame.values[instr] = (base + offset) & _U64
                self.costs.charge("gep", model.gep)
            elif isinstance(instr, Branch):
                cond = self._eval(instr.cond, frame)
                frame.jump_to(instr.then_block if cond else instr.else_block)
                self.costs.charge("branch", model.branch)
            elif isinstance(instr, Jump):
                frame.jump_to(instr.target)
                self.costs.charge("branch", model.branch)
            elif isinstance(instr, Call):
                self._exec_call(instr, frame, model)
            elif isinstance(instr, Ret):
                value = 0 if instr.value is None else self._eval(instr.value, frame)
                self._pop_frame()
                self.costs.charge("ret", model.ret)
                if len(self.frames) > base_depth:
                    run_rec = self._run_recorder
                    if run_rec is not None:
                        recorder = self.machine.recorder
                        run_rec.exit_callee(
                            len(recorder.trace.events), len(recorder.vol_ops)
                        )
                    caller = self.frames[-1]
                    call_instr = caller.current
                    if call_instr is not None and not call_instr.type.is_void:
                        caller.values[call_instr] = self._truncate(
                            value, call_instr.type
                        )
                else:
                    return_value = value
            elif isinstance(instr, Flush):
                self._exec_flush(instr, frame, model)
            elif isinstance(instr, Fence):
                completed = self.machine.cache.on_fence(instr.kind)
                self.machine.recorder.record_fence(instr.kind)
                self.costs.charge(
                    "fence", model.fence + model.fence_per_line * len(completed)
                )
            elif isinstance(instr, Alloca):
                frame.values[instr] = self.machine.space.alloc_stack(instr.size)
                self.costs.charge("alloca", model.alloca)
            elif isinstance(instr, Select):
                cond, a, b = instr.operands
                frame.values[instr] = (
                    self._eval(a, frame)
                    if self._eval(cond, frame)
                    else self._eval(b, frame)
                )
                self.costs.charge("select", model.select)
            elif isinstance(instr, Cast):
                frame.values[instr] = self._truncate(
                    self._eval(instr.operands[0], frame), instr.type
                )
                self.costs.charge("cast", model.cast)
            elif isinstance(instr, Trap):
                raise TrapError(
                    f"trap at {instr.loc} in @{frame.function.name}"
                )
            else:  # pragma: no cover - all opcodes handled
                raise InterpreterError(f"cannot execute {instr!r}")

        return return_value

    # -- instruction helpers -----------------------------------------------------------------------

    @staticmethod
    def _truncate(value: int, type_) -> int:
        if isinstance(type_, IntType):
            return value & type_.mask
        return value & _U64

    def _exec_store(self, instr: Store, frame: Frame, model: CostModel) -> None:
        value = self._eval(instr.value, frame)
        addr = self._eval(instr.pointer, frame)
        machine = self.machine
        machine.space.write_int(addr, instr.size, value)
        if machine.space.is_pm(addr):
            event = machine.recorder.record_store(
                addr, instr.size, "pm", nontemporal=instr.nontemporal
            )
            if instr.nontemporal:
                machine.cache.on_nt_store(addr, instr.size, event.seq)
            else:
                machine.cache.on_store(addr, instr.size, event.seq)
            self.costs.charge("store", model.store + model.pm_store_extra)
        else:
            machine.recorder.record_store(addr, instr.size, "vol")
            self.costs.charge("store", model.store)

    def _exec_flush(self, instr: Flush, frame: Frame, model: CostModel) -> None:
        addr = self._eval(instr.pointer, frame)
        machine = self.machine
        if machine.space.is_pm(addr):
            status = machine.cache.on_flush(addr, instr.kind)
            machine.recorder.record_flush(
                addr, line_of(addr), instr.kind, status != "redundant"
            )
            cost = model.flush if status == "writeback" else model.flush_clean
            if instr.kind == "clflush" and status == "writeback":
                cost += model.clflush_serial
            self.costs.charge("flush", cost)
        else:
            # Flushing a volatile line is legal but there is no
            # write-pending queue in front of DRAM: every CLWB of a
            # (re-)dirtied line is a full write-back.  This is the waste
            # RedisH-intra suffers from.
            machine.volatile_flushes += 1
            if machine.recorder.record_vol_ops:
                machine.recorder.note_vol_flush()
            self.costs.charge("flush", model.flush)

    def _exec_binop(self, instr: BinOp, frame: Frame, model: CostModel) -> None:
        lhs = self._eval(instr.operands[0], frame)
        rhs = self._eval(instr.operands[1], frame)
        op = instr.op
        if op == "add":
            result = lhs + rhs
        elif op == "sub":
            result = lhs - rhs
        elif op == "mul":
            result = lhs * rhs
        elif op == "udiv":
            if rhs == 0:
                raise TrapError(f"division by zero at {instr.loc}")
            result = lhs // rhs
        elif op == "urem":
            if rhs == 0:
                raise TrapError(f"remainder by zero at {instr.loc}")
            result = lhs % rhs
        elif op == "and":
            result = lhs & rhs
        elif op == "or":
            result = lhs | rhs
        elif op == "xor":
            result = lhs ^ rhs
        elif op == "shl":
            result = lhs << (rhs & 63)
        else:  # lshr
            result = lhs >> (rhs & 63)
        frame.values[instr] = result & instr.type.mask  # type: ignore[attr-defined]
        self.costs.charge("arith", model.arith)

    def _exec_icmp(self, instr: ICmp, frame: Frame, model: CostModel) -> None:
        lhs = self._eval(instr.operands[0], frame)
        rhs = self._eval(instr.operands[1], frame)
        pred = instr.pred
        if pred == "eq":
            result = lhs == rhs
        elif pred == "ne":
            result = lhs != rhs
        elif pred == "ult":
            result = lhs < rhs
        elif pred == "ule":
            result = lhs <= rhs
        elif pred == "ugt":
            result = lhs > rhs
        else:  # uge
            result = lhs >= rhs
        frame.values[instr] = int(result)
        self.costs.charge("compare", model.compare)

    def _exec_call(self, instr: Call, frame: Frame, model: CostModel) -> None:
        args = [self._eval(a, frame) for a in instr.args]
        if self.module.has_function(instr.callee):
            callee = self.module.get_function(instr.callee)
            if callee.is_declaration:
                raise InterpreterError(f"call to declaration @{instr.callee}")
            self.costs.charge("call", model.call)
            run_rec = self._run_recorder
            if run_rec is not None:
                recorder = self.machine.recorder
                run_rec.enter_callee(
                    instr.iid,
                    len(recorder.trace.events),
                    len(recorder.vol_ops),
                    len(self.frames),
                )
            self._push_frame(callee, args)
            return
        if is_intrinsic(instr.callee):
            self.costs.charge("intrinsic", model.intrinsic)
            result = lookup(instr.callee)(self, args)
            if not instr.type.is_void:
                frame.values[instr] = self._truncate(result, instr.type)
            return
        raise InterpreterError(f"call to unknown function @{instr.callee}")

    # -- frame management ------------------------------------------------------------------------------

    def _push_frame(self, fn: Function, args: List[int]) -> None:
        if len(self.frames) > 512:
            raise InterpreterError("call stack overflow (depth > 512)")
        frame = Frame(fn, self.machine.space.stack_mark())
        for formal, actual in zip(fn.args, args):
            frame.values[formal] = self._truncate(actual, formal.type)
        self.frames.append(frame)

    def _pop_frame(self) -> None:
        frame = self.frames.pop()
        self.machine.space.stack_release(frame.stack_mark)


def run_module(
    module: Module,
    entry: str = "main",
    args: Optional[List[int]] = None,
    cost_model: Optional[CostModel] = None,
    fuel: int = 50_000_000,
) -> Tuple[ExecutionResult, PMTrace, Machine]:
    """One-shot convenience: run an entry point and finish the trace.

    Runs on the process-default engine (normally the flat engine); the
    import is deferred because the engine module subclasses
    :class:`Interpreter`.
    """
    from . import make_interpreter

    interp = make_interpreter(module, cost_model=cost_model, fuel=fuel)
    result = interp.call(entry, args or [])
    trace = interp.finish()
    return result, trace, interp.machine
