"""The kill/resume campaign: crash-safety of the batch supervisor.

The batch layer's contract is stronger than "it usually recovers": for
**every** checkpoint boundary of a corpus batch, SIGKILL-ing the
supervisor right after that journal append and re-running with
``resume`` must produce an aggregate report **byte-identical** to an
uninterrupted run, and must never re-execute a task whose completion
record survived.  This campaign enumerates exactly that matrix:

1. run the batch once, uninterrupted, and keep its canonical bytes and
   journal length (``N`` checkpoint appends);
2. for each boundary ``n`` in ``1..N``: run a fresh batch with a
   ``kill-supervisor-at-nth(n)`` fault (the journal raises
   :class:`~repro.supervisor.supervisor.SupervisorKilled` immediately
   after the nth durable append — nothing gets to clean up), then
   resume from the survived journal and compare bytes;
3. the ``torn`` variant additionally tears the journal's final record
   mid-CRC before resuming — turning "killed after append n" into
   "killed during append n" — which recovery must absorb by truncating
   the torn tail and re-running that task.

The worker-fault checks cover the other half of the acceptance
criteria: a worker hung by ``hang-worker`` is killed by the watchdog,
retried with backoff, and (when the fault hits every attempt)
quarantined — while every other task still completes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..supervisor import (
    BatchReport,
    CheckpointJournal,
    RepairTask,
    SupervisorConfig,
    SupervisorKilled,
    corpus_tasks,
    run_batch,
)
from .plans import FaultPlan


def tear_journal_tail(path: str, keep_fraction: float = 0.5) -> bool:
    """Tear the journal's final record as a crash mid-``write`` would.

    Truncates the file inside the last line (dropping its newline and
    the tail of its bytes), which breaks the record's CRC framing.
    Returns False when there is nothing to tear.
    """
    if not os.path.exists(path):
        return False
    with open(path, "rb") as handle:
        data = handle.read()
    stripped = data.rstrip(b"\n")
    if not stripped:
        return False
    cut = stripped.rfind(b"\n") + 1  # start of the last record
    body = stripped[cut:]
    keep = max(1, int(len(body) * keep_fraction))
    with open(path, "wb") as handle:
        handle.write(stripped[: cut + keep])
        handle.flush()
        os.fsync(handle.fileno())
    return True


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------


@dataclass
class ResumeRecord:
    """One kill-at-boundary-and-resume execution."""

    boundary: int
    torn: bool
    ok: bool = True
    problems: List[str] = field(default_factory=list)
    replayed: int = 0
    reexecuted: int = 0
    #: True when the kill and resume runs carried live observability —
    #: the byte-identity check then also proves spans/metrics stay off
    #: the canonical path across a crash
    obs: bool = False

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        kind = "torn " if self.torn else ""
        if self.obs:
            kind += "obs "
        line = (
            f"[{status}] {kind}kill@checkpoint {self.boundary}: "
            f"{self.replayed} replayed, {self.reexecuted} re-executed"
        )
        for problem in self.problems:
            line += f"\n    !! {problem}"
        return line


@dataclass
class ResumeCampaignResult:
    """All kill/resume records plus the worker-fault verdicts."""

    checkpoints: int = 0
    records: List[ResumeRecord] = field(default_factory=list)
    worker_problems: List[str] = field(default_factory=list)
    worker_checks: int = 0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records) and not self.worker_problems

    def failures(self) -> List[ResumeRecord]:
        return [r for r in self.records if not r.ok]

    def summary(self) -> str:
        verdict = (
            "all resumes byte-identical"
            if self.ok
            else f"{len(self.failures())} resume(s) DIVERGED"
            + (f"; {len(self.worker_problems)} worker-fault problem(s)"
               if self.worker_problems else "")
        )
        return (
            f"kill/resume campaign: {self.checkpoints} checkpoint boundary(ies), "
            f"{len(self.records)} kill/resume run(s), "
            f"{self.worker_checks} worker-fault check(s); {verdict}"
        )


# ---------------------------------------------------------------------------
# the campaign
# ---------------------------------------------------------------------------


def _config(mode: str, heuristic: str) -> SupervisorConfig:
    return SupervisorConfig(
        mode=mode,
        heuristic=heuristic,
        max_retries=1,
        backoff_base=0.0,
        task_timeout=600.0,
    )


def _journal_records(path: str) -> List[Dict[str, Any]]:
    return CheckpointJournal.read(path).records


def _check_no_reexecution(
    records: List[Dict[str, Any]], record: ResumeRecord
) -> None:
    """A task completed before the resume must never start again after it."""
    resume_at = next(
        (i for i, r in enumerate(records) if r.get("type") == "batch-resume"),
        None,
    )
    if resume_at is None:
        # Killed before batch-start survived: the resume was a fresh run.
        record.reexecuted = 0
        return
    done_before = {
        r["task"]
        for r in records[:resume_at]
        if r.get("type") in ("task-done", "task-quarantined")
    }
    started_after = [
        r["task"] for r in records[resume_at:] if r.get("type") == "task-start"
    ]
    record.replayed = len(done_before)
    record.reexecuted = len(started_after)
    twice = sorted(done_before & set(started_after))
    if twice:
        record.problems.append(
            f"task(s) executed twice despite a surviving completion "
            f"record: {twice}"
        )


def run_kill_resume(
    tasks: List[RepairTask],
    journal_path: str,
    boundary: int,
    baseline_bytes: str,
    torn: bool,
    mode: str = "inprocess",
    heuristic: str = "full",
    obs_factory=None,
) -> ResumeRecord:
    """Kill a fresh batch at one checkpoint boundary, resume, compare.

    ``obs_factory`` (a zero-argument callable returning a fresh
    :class:`~repro.obs.observability.Observability`) instruments both
    the killed run and the resume — the byte-identity comparison then
    doubles as the proof that observability stays off the canonical
    path even across a crash.
    """
    record = ResumeRecord(boundary=boundary, torn=torn,
                          obs=obs_factory is not None)
    config = _config(mode, heuristic)
    plan = FaultPlan("supervisor", mode="kill-supervisor-at-nth", nth=boundary)
    try:
        run_batch(tasks, journal_path=journal_path, config=config, fault=plan,
                  obs=obs_factory() if obs_factory else None)
    except SupervisorKilled:
        pass  # the simulated SIGKILL
    else:
        record.ok = False
        record.problems.append(
            f"kill-supervisor-at-nth({boundary}) never fired "
            f"(journal shorter than expected)"
        )
        return record

    if torn and not tear_journal_tail(journal_path):
        record.problems.append("nothing to tear in the journal")

    try:
        resumed: BatchReport = run_batch(
            tasks, journal_path=journal_path, resume=True, config=config,
            obs=obs_factory() if obs_factory else None,
        )
    except Exception as exc:
        record.ok = False
        record.problems.append(
            f"resume died: {type(exc).__name__}: {exc}"
        )
        return record

    if resumed.canonical_json() != baseline_bytes:
        record.problems.append(
            "resumed aggregate report is not byte-identical to the "
            "uninterrupted run"
        )
    _check_no_reexecution(_journal_records(journal_path), record)
    record.ok = not record.problems
    return record


def run_worker_fault_checks(
    tasks: List[RepairTask],
    journal_dir: str,
    mode: str = "inprocess",
    heuristic: str = "full",
    progress=None,
) -> List[str]:
    """The hang/kill worker matrix; returns invariant violations.

    Uses tight watchdog budgets so a hung worker is detected in
    fractions of a second; ``attempts=1`` faults must be healed by one
    retry, ``attempts=0`` faults must end in quarantine — in both cases
    every *other* task must complete normally (no batch stall).
    """
    problems: List[str] = []
    scenarios = [
        ("hang-retry", FaultPlan("worker", mode="hang-worker", nth=1, attempts=1), False),
        ("hang-quarantine", FaultPlan("worker", mode="hang-worker", nth=1, attempts=0), True),
        ("kill-retry", FaultPlan("worker", mode="kill-worker-at-nth", nth=1, attempts=1), False),
        ("kill-quarantine", FaultPlan("worker", mode="kill-worker-at-nth", nth=1, attempts=0), True),
    ]
    config = SupervisorConfig(
        mode=mode,
        heuristic=heuristic,
        max_retries=1,
        backoff_base=0.0,
        task_timeout=2.0,
        heartbeat_timeout=1.0,
        heartbeat_interval=0.05,
    )
    target = tasks[0].task_id
    for label, plan, expect_quarantine in scenarios:
        journal_path = os.path.join(journal_dir, f"worker-{label}.journal")
        report = run_batch(tasks, journal_path=journal_path, config=config, fault=plan)
        if progress is not None:
            progress(f"worker-fault {label}: {report.summary()}")
        outcome = report.outcome(target)
        if expect_quarantine:
            if outcome is None or outcome.status != "quarantined":
                problems.append(
                    f"{label}: task {target} should be quarantined, got "
                    f"{outcome.status if outcome else 'missing'}"
                )
            elif outcome.attempts != config.max_retries + 1:
                problems.append(
                    f"{label}: quarantined after {outcome.attempts} attempt(s), "
                    f"expected {config.max_retries + 1} (retry-then-quarantine "
                    f"ordering)"
                )
        else:
            if outcome is None or outcome.status != "done":
                problems.append(
                    f"{label}: task {target} should recover via retry, got "
                    f"{outcome.status if outcome else 'missing'}"
                )
            if report.total_retries < 1:
                problems.append(f"{label}: expected at least one retry")
        for task in tasks[1:]:
            other = report.outcome(task.task_id)
            if other is None or other.status != "done":
                problems.append(
                    f"{label}: unfaulted task {task.task_id} did not complete "
                    f"— the fault stalled the batch"
                )
    return problems


def run_resume_campaign(
    case_ids: Optional[List[str]] = None,
    heuristic: str = "full",
    mode: str = "inprocess",
    journal_dir: Optional[str] = None,
    torn_variant: bool = True,
    worker_checks: bool = True,
    incremental_revalidate: bool = True,
    progress=None,
) -> ResumeCampaignResult:
    """Kill the supervisor at every checkpoint boundary and resume.

    :param case_ids: corpus subset (default: the whole corpus).
    :param mode: supervisor execution mode for the matrix (in-process
        is the deterministic default; the worker-fault checks also run
        under it unless overridden).
    :param journal_dir: where journals live (default: a temp dir);
        journals of failing runs are left behind for post-mortem.
    :param torn_variant: also tear the last journal record before each
        resume.
    :param worker_checks: include the hang/kill worker matrix.
    :param incremental_revalidate: revalidate through the incremental
        engine.  A worker killed mid-revalidation re-executes its task
        from pristine state on resume — the recorded baseline and its
        dependency index are rebuilt, never half-trusted — so the
        resumed report must be byte-identical either way.
    """
    import tempfile

    result = ResumeCampaignResult()
    tasks = corpus_tasks(
        case_ids,
        heuristic=heuristic,
        incremental_revalidate=incremental_revalidate,
    )
    if journal_dir is None:
        journal_dir = tempfile.mkdtemp(prefix="repro-resume-campaign-")
    os.makedirs(journal_dir, exist_ok=True)

    # 1. the uninterrupted baseline
    baseline_path = os.path.join(journal_dir, "baseline.journal")
    if os.path.exists(baseline_path):
        os.unlink(baseline_path)
    config = _config(mode, heuristic)
    baseline = run_batch(tasks, journal_path=baseline_path, config=config)
    baseline_bytes = baseline.canonical_json()
    result.checkpoints = len(_journal_records(baseline_path))
    if progress is not None:
        progress(
            f"baseline: {baseline.summary()} "
            f"({result.checkpoints} checkpoint(s))"
        )

    # 2. kill at every boundary (and the torn variant)
    variants = [False, True] if torn_variant else [False]
    for boundary in range(1, result.checkpoints + 1):
        for torn in variants:
            suffix = f"{boundary}-torn" if torn else f"{boundary}"
            journal_path = os.path.join(journal_dir, f"kill-{suffix}.journal")
            if os.path.exists(journal_path):
                os.unlink(journal_path)
            record = run_kill_resume(
                tasks,
                journal_path,
                boundary,
                baseline_bytes,
                torn,
                mode=mode,
                heuristic=heuristic,
            )
            result.records.append(record)
            if progress is not None:
                progress(record.describe())
            if record.ok:
                os.unlink(journal_path)

    # 2b. one observability-enabled variant at a middle boundary: the
    # byte-identity contract must hold with spans/metrics live through
    # both the killed run and the resume.
    if result.checkpoints:
        from ..obs.observability import Observability

        boundary = max(1, result.checkpoints // 2)
        journal_path = os.path.join(journal_dir, f"kill-{boundary}-obs.journal")
        if os.path.exists(journal_path):
            os.unlink(journal_path)
        record = run_kill_resume(
            tasks,
            journal_path,
            boundary,
            baseline_bytes,
            torn=False,
            mode=mode,
            heuristic=heuristic,
            obs_factory=Observability,
        )
        result.records.append(record)
        if progress is not None:
            progress(record.describe())
        if record.ok:
            os.unlink(journal_path)

    # 3. the worker hang/kill matrix
    if worker_checks:
        result.worker_checks = 4
        result.worker_problems = run_worker_fault_checks(
            tasks, journal_dir, mode=mode, heuristic=heuristic, progress=progress
        )
    return result
