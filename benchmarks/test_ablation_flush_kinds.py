"""Ablation — flush-instruction semantics (DESIGN.md §5).

Why the weakly-ordered flush model matters:

1. ``clflush`` (strongly ordered) needs no fence for durability — a
   program using it is pmemcheck-clean without any sfence — but pays a
   serialized write-back on every flush.
2. ``clwb`` + one trailing fence achieves the same durability at lower
   cost (write-backs batch in the WPQ and drain once).
3. Removing the fence from the clwb version *is* the missing-fence bug.

This is the semantic foundation for the detector's bug taxonomy and
for the cost model's fence/flush split.
"""

from repro.detect import BugKind, pmemcheck_run
from repro.interp import Interpreter
from repro.ir import I64, ModuleBuilder, PTR

N_LINES = 16


def build(flush_kind: str, with_fence: bool):
    mb = ModuleBuilder(f"ablate_{flush_kind}_{with_fence}")
    b = mb.function("main", [], I64)
    base = b.call("pm_alloc", [N_LINES * 64], PTR)
    for i in range(N_LINES):
        slot = b.gep(base, i * 64)
        b.store(i + 1, slot)
        b.flush(slot, flush_kind)
    if with_fence:
        b.fence()
    b.ret(0)
    return mb.module


def cycles(module):
    interp = Interpreter(module)
    interp.call("main")
    return interp.costs.cycles


def test_flush_kind_semantics_and_costs(benchmark):
    # clflush alone: durable, no bug.
    clflush_result, _, _ = pmemcheck_run(
        build("clflush", False), lambda i: i.call("main")
    )
    assert clflush_result.bug_count == 0

    # clwb + fence: durable, no bug.
    clwb_fenced, _, _ = pmemcheck_run(
        build("clwb", True), lambda i: i.call("main")
    )
    assert clwb_fenced.bug_count == 0

    # clwb without fence: every line is a missing-fence bug.
    clwb_unfenced, _, _ = pmemcheck_run(
        build("clwb", False), lambda i: i.call("main")
    )
    assert clwb_unfenced.bug_count == N_LINES
    assert all(b.kind is BugKind.MISSING_FENCE for b in clwb_unfenced.bugs)

    # clflushopt behaves like clwb (weakly ordered).
    opt_unfenced, _, _ = pmemcheck_run(
        build("clflushopt", False), lambda i: i.call("main")
    )
    assert opt_unfenced.bug_count == N_LINES

    # Cost: the batched clwb+fence sequence beats serialized clflushes
    # (the fence amortizes across all 16 lines, while each clflush
    # serializes its write-back).
    clflush_cost = cycles(build("clflush", False))
    clwb_cost = cycles(build("clwb", True))
    assert clwb_cost < clflush_cost

    benchmark(lambda: cycles(build("clwb", True)))


def test_redundant_double_flush_costs_less_than_two_writebacks(benchmark):
    def double_flush():
        mb = ModuleBuilder("d")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(1, p)
        b.flush(p)
        b.flush(p)  # coalesces in the WPQ
        b.fence()
        b.ret(0)
        return cycles(mb.module)

    def single_flush():
        mb = ModuleBuilder("s")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(1, p)
        b.flush(p)
        b.fence()
        b.ret(0)
        return cycles(mb.module)

    assert double_flush() - single_flush() < 30  # far below a write-back
    benchmark(double_flush)
