"""Unit tests for post-fix validation ("do no harm")."""

import pytest

from repro.core import (
    Hippocrates,
    assert_fixed,
    do_no_harm,
    observable_behavior,
    revalidate,
)
from repro.detect import pmemcheck_run
from repro.errors import ValidationError
from repro.ir import I64, ModuleBuilder, PTR

from conftest import build_listing5_module, drive_main


def emitting_module():
    """A buggy module with observable output."""
    mb = ModuleBuilder("t")
    b = mb.function("main", [], I64)
    p = b.call("pm_alloc", [64], PTR)
    b.store(41, p)
    loaded = b.load(p)
    b.call("emit", [b.add(loaded, 1)])
    b.ret(0)
    return mb.module


def test_revalidate_reports_remaining_bugs():
    module = emitting_module()
    assert revalidate(module, drive_main).bug_count == 1
    with pytest.raises(ValidationError):
        assert_fixed(module, drive_main)


def test_assert_fixed_after_repair():
    module = emitting_module()
    _, trace, interp = pmemcheck_run(module, drive_main)
    Hippocrates(module, trace, interp.machine).fix()
    assert_fixed(module, drive_main)  # no exception


def test_observable_behavior():
    assert observable_behavior(emitting_module(), drive_main) == [42]


def test_do_no_harm_holds_for_hippocrates_fixes():
    original = emitting_module()
    fixed = emitting_module()
    _, trace, interp = pmemcheck_run(fixed, drive_main)
    Hippocrates(fixed, trace, interp.machine).fix()
    before, after = do_no_harm(original, fixed, drive_main)
    assert before == after == [42]


def test_do_no_harm_catches_behavior_change():
    original = emitting_module()
    broken = ModuleBuilder("t")
    b = broken.function("main", [], I64)
    b.call("emit", [999])
    b.ret(0)
    with pytest.raises(ValidationError):
        do_no_harm(original, broken.module, drive_main)


def test_do_no_harm_on_listing5():
    original = build_listing5_module()
    fixed = build_listing5_module()
    _, trace, interp = pmemcheck_run(fixed, drive_main)
    Hippocrates(fixed, trace, interp.machine).fix()
    do_no_harm(original, fixed, drive_main)
