"""Memoized machine state: capture at a call boundary, replay later.

A :class:`MachineSnapshot` is taken between top-level driver calls,
when the interpreter's frame stack is empty — so the *only* state that
matters is the machine's: region bytes, allocator watermarks, the
durable PM image, per-line cache durability state, the allocation
registry, and the trace recorder's sequence counter.

Two properties make snapshots cheap and safe:

- **Prefix copies.** Region bytes are copied only up to the region's
  high-water mark (every byte beyond it is zero by construction —
  :class:`~repro.memory.layout.Region` tracks the mark on every
  allocate and write), so a snapshot costs kilobytes, not 3×16 MiB.
- **Deep copies both ways.** Capture copies every mutable layer out of
  the live machine, and :meth:`materialize` builds fresh containers
  from the snapshot — in particular the cache's per-line
  ``dirty_stores``/``flushing_stores`` sets, which the fence handler
  mutates in place.  A second replay from the same snapshot is
  therefore unaffected by the first (the latent aliasing hazard this
  module exists to prevent; see ``tests/test_revalidate_snapshot.py``).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..interp.interpreter import Allocation, Interpreter, Machine
from ..memory.cache import CacheModel, LineState
from ..memory.layout import AddressSpace, Region
from ..memory.persistence import PersistentImage
from ..memory.pool import MachinePool
from ..trace.trace import TraceRecorder

#: (brk, high_water, live bytes up to high_water) for one region
_RegionState = Tuple[int, int, bytes]

#: (line address, dirty store seqs, flushing store seqs)
_LineSnapshot = Tuple[int, frozenset, frozenset]


def _capture_region(region: Region) -> _RegionState:
    high = region.high_water
    return (region.brk, high, bytes(region.data[:high]))


def _restore_region(region: Region, state: _RegionState) -> None:
    brk, high, data = state
    # The target may be a *reused* pooled region whose previous run left
    # nonzero bytes above this snapshot's high-water mark; zero that gap
    # explicitly so the restored region is byte-identical to a fresh one
    # (every byte at or beyond the mark must be zero by invariant).
    if region.high_water > len(data):
        region.data[len(data) : region.high_water] = bytes(
            region.high_water - len(data)
        )
    region.data[: len(data)] = data
    region.set_brk(brk)
    region.reset_high_water(high)


@dataclass(frozen=True)
class MachineSnapshot:
    """Frozen machine state at one top-level call boundary."""

    vol: _RegionState
    stack: _RegionState
    pm: _RegionState
    pm_size: int
    vol_size: int
    stack_size: int
    #: durable image bytes up to the PM high-water mark
    durable: bytes
    writebacks: int
    #: per-line durability state, in cache-dict insertion order (the
    #: fence handler iterates the dict, so order is semantics)
    lines: Tuple[_LineSnapshot, ...]
    flush_count: int
    clean_flush_count: int
    fence_count: int
    allocations: Tuple[Allocation, ...]
    global_addrs: Tuple[Tuple[str, int], ...]
    pm_root_addr: Optional[int]
    pm_root_size: int
    volatile_flushes: int
    record_volatile_stores: bool
    #: the trace recorder's sequence counter (replay events continue it)
    seq: int
    #: interpreter steps consumed so far (replay fuel accounting)
    steps: int
    #: observable output so far (``emit`` values)
    output: Tuple[int, ...]

    @classmethod
    def capture(cls, interp: Interpreter) -> "MachineSnapshot":
        if interp.frames:
            raise ValueError(
                "machine snapshots are only valid at top-level call "
                "boundaries (the frame stack must be empty)"
            )
        machine = interp.machine
        space = machine.space
        return cls(
            vol=_capture_region(space.vol),
            stack=_capture_region(space.stack),
            pm=_capture_region(space.pm),
            pm_size=space.pm.size,
            vol_size=space.vol.size,
            stack_size=space.stack.size,
            durable=machine.image.durable_bytes(
                space.pm.base, space.pm.high_water
            ),
            writebacks=machine.image.writebacks,
            lines=tuple(
                (
                    line_addr,
                    frozenset(state.dirty_stores),
                    frozenset(state.flushing_stores),
                )
                for line_addr, state in machine.cache.lines.items()
            ),
            flush_count=machine.cache.flush_count,
            clean_flush_count=machine.cache.clean_flush_count,
            fence_count=machine.cache.fence_count,
            allocations=tuple(machine.allocations),
            global_addrs=tuple(machine.global_addrs.items()),
            pm_root_addr=machine.pm_root_addr,
            pm_root_size=machine.pm_root_size,
            volatile_flushes=machine.volatile_flushes,
            record_volatile_stores=machine.recorder.record_volatile_stores,
            seq=machine.recorder._seq,
            steps=interp.steps,
            output=tuple(interp.output),
        )

    def materialize(self, pool: Optional[MachinePool] = None) -> Machine:
        """Build an independent machine in this snapshot's state.

        Every mutable container is freshly constructed (or, with a
        ``pool``, reset in place from a retired pair), so concurrent or
        repeated replays from one snapshot never alias state.
        """
        parts = None
        if pool is not None:
            parts = pool.acquire_raw(
                self.vol_size, self.stack_size, self.pm_size
            )
        if parts is None:
            space = AddressSpace(
                vol_size=self.vol_size,
                stack_size=self.stack_size,
                pm_size=self.pm_size,
            )
            image = None
        else:
            space, image = parts
        _restore_region(space.vol, self.vol)
        _restore_region(space.stack, self.stack)
        _restore_region(space.pm, self.pm)
        if image is None:
            # PersistentImage seeds its durable view from the cache
            # view; beyond the high-water mark both views are all
            # zeroes, so restoring the recorded durable prefix leaves
            # the image exactly as captured.
            image = PersistentImage(space)
        image.restore_prefix(self.durable)
        image.writebacks = self.writebacks
        cache = CacheModel(space, image)
        for line_addr, dirty, flushing in self.lines:
            cache.lines[line_addr] = LineState(
                dirty_stores=set(dirty), flushing_stores=set(flushing)
            )
        cache.flush_count = self.flush_count
        cache.clean_flush_count = self.clean_flush_count
        cache.fence_count = self.fence_count
        # Assemble the machine without Machine.__init__ (which would
        # allocate and immediately discard a second set of regions).
        machine = Machine.__new__(Machine)
        machine.space = space
        machine.image = image
        machine.cache = cache
        machine._stack_provider = lambda: ()
        machine.recorder = TraceRecorder(
            lambda: machine._stack_provider(), self.record_volatile_stores
        )
        machine.recorder._seq = self.seq
        machine.allocations = list(self.allocations)
        machine.global_addrs = dict(self.global_addrs)
        machine.pm_root_addr = self.pm_root_addr
        machine.pm_root_size = self.pm_root_size
        machine.volatile_flushes = self.volatile_flushes
        return machine

    @property
    def byte_size(self) -> int:
        """Approximate retained payload (observability/thinning).

        Counts the region/durable prefixes plus the per-line durability
        sets and the allocation registry — the two containers that can
        dominate a snapshot on store-heavy, allocation-heavy workloads.
        """
        payload = (
            len(self.vol[2])
            + len(self.stack[2])
            + len(self.pm[2])
            + len(self.durable)
        )
        for _line_addr, dirty, flushing in self.lines:
            payload += sys.getsizeof(dirty) + sys.getsizeof(flushing)
        for alloc in self.allocations:
            payload += sys.getsizeof(alloc)
        return payload
