"""Crash-state enumeration.

A crash at a given moment can leave persistent memory in any state where
each *pending* cache line (dirty or flush-queued) independently did or
did not reach the media.  For a program with N pending lines there are
2^N reachable crash images; this module enumerates them (exhaustively
for small N, by deterministic sampling otherwise).

This is the machinery behind the crash-consistency demonstrations: a
durability bug is *observable* exactly when some crash state yields an
inconsistent recovery, and Hippocrates's fix shrinks the pending set so
that the only reachable crash state is the consistent one.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..budget import Budget
from ..errors import BudgetExceeded
from .cache import CacheModel
from .persistence import PersistentImage


class CrashState:
    """One reachable post-crash PM image."""

    def __init__(self, surviving_lines: Tuple[int, ...], image: bytes, pm_base: int):
        self.surviving_lines = surviving_lines
        self.image = image
        self.pm_base = pm_base

    def read(self, addr: int, size: int) -> bytes:
        offset = addr - self.pm_base
        return self.image[offset : offset + size]

    def read_int(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read(addr, size), "little")

    def __repr__(self) -> str:
        survived = ",".join(f"{a:#x}" for a in self.surviving_lines) or "none"
        return f"<CrashState survived=[{survived}]>"


class CrashExplorer:
    """Enumerates the crash states reachable at the current moment."""

    #: exhaustive enumeration limit: 2^12 = 4096 states
    EXHAUSTIVE_LIMIT = 12

    def __init__(
        self,
        cache: CacheModel,
        image: PersistentImage,
        seed: int = 0,
        budget: Optional[Budget] = None,
    ):
        self.cache = cache
        self.image = image
        self._rng = random.Random(seed)
        #: optional cap on states materialized / wall-clock spent; when
        #: it runs out, enumeration stops gracefully and this flag is
        #: set so callers know the result is partial.
        self.budget = budget
        self.budget_exhausted = False

    def pending_lines(self) -> List[int]:
        return self.cache.pending_lines()

    def _charge(self) -> bool:
        """Account one state against the budget (True = may proceed)."""
        if self.budget is None:
            return True
        if self.budget.try_charge():
            return True
        self.budget_exhausted = True
        return False

    def states(self, max_states: Optional[int] = None) -> Iterator[CrashState]:
        """Yield reachable crash states.

        If the pending set is small, every subset is produced (the
        adversarial all-lost state first); otherwise ``max_states``
        deterministic random subsets are sampled (default 256), always
        including the all-lost and all-survived extremes.

        A :class:`~repro.budget.Budget` passed to the constructor bounds
        the enumeration in states and wall-clock time: when it runs out
        the iterator simply stops (a graceful partial result) and
        ``budget_exhausted`` is set.
        """
        pending = self.pending_lines()
        pm_base = self.image.space.pm.base
        if len(pending) <= self.EXHAUSTIVE_LIMIT:
            subsets: Iterator[Tuple[int, ...]] = itertools.chain.from_iterable(
                itertools.combinations(pending, k) for k in range(len(pending) + 1)
            )
            count = 0
            for subset in subsets:
                if not self._charge():
                    return
                yield CrashState(subset, self.image.crash(subset), pm_base)
                count += 1
                if max_states is not None and count >= max_states:
                    return
            return

        sample_budget = max_states or 256
        for subset in ((), tuple(pending)):
            if not self._charge():
                return
            yield CrashState(subset, self.image.crash(subset), pm_base)
        for _ in range(max(0, sample_budget - 2)):
            if not self._charge():
                return
            subset = tuple(
                line for line in pending if self._rng.random() < 0.5
            )
            yield CrashState(subset, self.image.crash(subset), pm_base)

    def find_violation(
        self,
        consistent: Callable[[CrashState], bool],
        max_states: Optional[int] = None,
        strict_budget: bool = False,
    ) -> Optional[CrashState]:
        """Search for a crash state that violates a consistency predicate.

        Returns the first inconsistent state found, or None if every
        explored state satisfies ``consistent``.  With
        ``strict_budget=True``, running out of budget before finding a
        violation raises :class:`BudgetExceeded` instead of returning
        the (inconclusive) None.
        """
        for state in self.states(max_states):
            if not consistent(state):
                return state
        if strict_budget and self.budget_exhausted:
            raise BudgetExceeded(
                "crash-state exploration budget exhausted before the "
                "predicate was decided",
                spent=self.budget.spent_items if self.budget else 0,
                limit=(self.budget.max_items or 0) if self.budget else 0,
            )
        return None

    def all_consistent(
        self,
        consistent: Callable[[CrashState], bool],
        max_states: Optional[int] = None,
    ) -> bool:
        """True if every explored crash state satisfies the predicate."""
        return self.find_violation(consistent, max_states) is None
