"""End-to-end unit tests for the Hippocrates orchestrator."""

import pytest

from repro.core import Hippocrates, HoistedFix, fix_module
from repro.detect import check_trace, pmemcheck_run
from repro.errors import FixError
from repro.ir import (
    I64,
    ModuleBuilder,
    PTR,
    format_module,
    parse_module,
    verify_module,
)
from repro.trace import dump_trace

from conftest import build_listing5_module, drive_main


class TestEndToEnd:
    def test_listing5_hoisted_fix(self, listing5):
        module, detection, trace, interp = listing5
        report = Hippocrates(module, trace, interp.machine).fix()
        assert report.bugs_fixed == 1
        assert report.interprocedural_count == 1
        assert module.has_function("modify_PM") and module.has_function("update_PM")
        after, _, _ = pmemcheck_run(module, drive_main)
        assert after.bug_count == 0
        verify_module(module)

    def test_heuristic_off_yields_intraprocedural(self, listing5):
        module, detection, trace, interp = listing5
        report = Hippocrates(module, trace, interp.machine, heuristic="off").fix()
        assert report.interprocedural_count == 0
        assert report.intraprocedural_count == 1
        after, _, _ = pmemcheck_run(module, drive_main)
        assert after.bug_count == 0

    def test_each_bug_kind_end_to_end(self):
        def build(mb):
            b = mb.function("main", [], I64)
            p = b.call("pm_alloc", [256], PTR)
            b.store(1, p)
            b.fence()  # a later fence exists: p is missing only a flush
            q = b.gep(p, 64)
            b.store(2, q)
            b.flush(q)  # flushed but never fenced: missing fence
            r = b.gep(p, 128)
            b.store(3, r)  # neither flushed nor fenced
            b.ret(0)

        mb = ModuleBuilder("kinds")
        build(mb)
        detection, trace, interp = pmemcheck_run(mb.module, drive_main)
        assert detection.bug_count == 3
        report = Hippocrates(mb.module, trace, interp.machine).fix()
        assert report.bugs_fixed == 3
        after, _, _ = pmemcheck_run(mb.module, drive_main)
        assert after.bug_count == 0

    def test_text_trace_input(self, listing5):
        """Hippocrates accepts the pmemcheck text log (Step 1)."""
        module, detection, trace, interp = listing5
        text = dump_trace(trace)
        report = Hippocrates(module, text, interp.machine).fix()
        assert report.bugs_fixed == 1
        after, _, _ = pmemcheck_run(module, drive_main)
        assert after.bug_count == 0

    def test_fix_reparsed_module(self):
        """Trace from one build, fixes applied to a re-parsed module."""
        module = build_listing5_module()
        detection, trace, interp = pmemcheck_run(module, drive_main)
        rebuilt = parse_module(format_module(module))
        # Trace-ids don't match the rebuilt module; Full-AA requires no
        # machine, and locate falls back to source lines.
        report = Hippocrates(rebuilt, trace, heuristic="full").fix()
        assert report.bugs_fixed == 1
        after, _, _ = pmemcheck_run(rebuilt, drive_main)
        assert after.bug_count == 0

    def test_clean_module_is_untouched(self):
        mb = ModuleBuilder("clean")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(1, p)
        b.flush(p)
        b.fence()
        b.ret(0)
        detection, trace, interp = pmemcheck_run(mb.module, drive_main)
        before = format_module(mb.module)
        report = Hippocrates(mb.module, trace, interp.machine).fix()
        assert report.fixes_applied == 0
        assert format_module(mb.module) == before


class TestReporting:
    def test_report_fields(self, listing5):
        module, _, trace, interp = listing5
        report = Hippocrates(module, trace, interp.machine).fix(
            measure_overhead=True
        )
        assert report.ir_size_after > report.ir_size_before
        assert report.inserted_instructions >= 1
        assert report.elapsed_seconds > 0
        assert report.peak_memory_bytes > 0
        assert report.hoist_depths == [2]
        assert "interprocedural" in report.summary()
        assert report.ir_growth_percent > 0

    def test_plan_description(self, listing5):
        module, _, trace, interp = listing5
        plan = Hippocrates(module, trace, interp.machine).compute_fixes()
        assert "persistent subprogram" in plan.describe()
        assert len(plan.interprocedural()) == 1
        assert len(plan.intraprocedural()) == 0


class TestValidationArguments:
    def test_unknown_heuristic(self, listing5):
        module, _, trace, interp = listing5
        with pytest.raises(FixError):
            Hippocrates(module, trace, interp.machine, heuristic="magic")

    def test_trace_aa_requires_machine(self, listing5):
        module, _, trace, _ = listing5
        with pytest.raises(FixError):
            Hippocrates(module, trace, machine=None, heuristic="trace")

    def test_fix_module_convenience(self):
        module = build_listing5_module()
        _, trace, interp = pmemcheck_run(module, drive_main)
        report = fix_module(module, trace, interp.machine)
        assert report.bugs_fixed == 1
