"""Resource budgets for the analysis and exploration passes.

Real PM traces are large (the paper's Redis logs exceed 350 MB) and the
whole-program analyses are superlinear, so a production repair service
must be able to bound how much work a single repair may consume.  A
:class:`Budget` caps abstract work items (fixpoint constraint
evaluations, crash states) and/or wall-clock time; consumers either
check it gracefully (:meth:`try_charge`, yielding partial results) or
strictly (:meth:`charge`, raising
:class:`~repro.errors.BudgetExceeded`), which the orchestrator treats
as a signal to fall back to a cheaper heuristic.
"""

from __future__ import annotations

import time
from typing import Optional

from .errors import BudgetExceeded


class Budget:
    """A cap on work items and/or wall-clock seconds.

    :param max_items: maximum number of abstract work units; None means
        unlimited.
    :param max_seconds: maximum wall-clock seconds from the first
        charge; None means unlimited.
    :param label: what the budget covers, used in error messages.
    """

    def __init__(
        self,
        max_items: Optional[int] = None,
        max_seconds: Optional[float] = None,
        label: str = "work",
    ):
        self.max_items = max_items
        self.max_seconds = max_seconds
        self.label = label
        self.spent_items = 0
        self._started_at: Optional[float] = None

    # -- accounting ---------------------------------------------------------

    def _now(self) -> float:
        return time.monotonic()

    @property
    def elapsed_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._now() - self._started_at

    @property
    def exhausted(self) -> bool:
        """True once either cap has been crossed."""
        if self.max_items is not None and self.spent_items >= self.max_items:
            return True
        if self.max_seconds is not None and self.elapsed_seconds >= self.max_seconds:
            return True
        return False

    def try_charge(self, items: int = 1) -> bool:
        """Consume ``items``; False when the budget is already exhausted.

        Graceful consumers (the crash explorer) stop producing results
        when this returns False and expose what they have so far.
        """
        if self._started_at is None:
            self._started_at = self._now()
        if self.exhausted:
            return False
        self.spent_items += items
        return True

    def charge(self, items: int = 1) -> None:
        """Consume ``items``; raise :class:`BudgetExceeded` if exhausted.

        Strict consumers (the Andersen fixpoint) use this so the caller
        can catch the signal and downgrade.
        """
        if not self.try_charge(items):
            raise BudgetExceeded(
                f"{self.label} budget exhausted "
                f"({self.spent_items} item(s), {self.elapsed_seconds:.3f}s; "
                f"limits: items={self.max_items}, seconds={self.max_seconds})",
                spent=self.spent_items,
                limit=self.max_items or 0,
            )

    def __repr__(self) -> str:
        return (
            f"<Budget {self.label!r}: {self.spent_items}"
            f"/{self.max_items} items, {self.elapsed_seconds:.3f}"
            f"/{self.max_seconds}s>"
        )
