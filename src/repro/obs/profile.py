"""cProfile wrapping with top-N hotspot extraction.

``repro batch --profile`` wraps the batch run in :mod:`cProfile` and
reports the hottest functions by cumulative time — the ground truth a
perf PR needs before touching anything.  Kept separate from spans on
purpose: spans answer "which *phase* is slow", the profiler answers
"which *function* inside it", and only the first is cheap enough to
leave on.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple


@dataclass(frozen=True)
class Hotspot:
    """One row of the profile: a function and its aggregate costs."""

    function: str
    calls: int
    total_seconds: float  # time in the function itself (tottime)
    cumulative_seconds: float  # including callees (cumtime)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "cumulative_seconds": self.cumulative_seconds,
        }


def _function_label(key: Tuple[str, int, str]) -> str:
    filename, line, name = key
    if filename == "~":  # built-in
        return name
    return f"{filename}:{line}({name})"


def profile_call(
    fn: Callable[..., Any], *args: Any, top_n: int = 25, **kwargs: Any
) -> Tuple[Any, List[Hotspot]]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, hotspots)`` — the hotspots sorted by cumulative
    time, at most ``top_n`` of them.  The profiler is disabled even if
    ``fn`` raises, so no tracing leaks into the caller.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    rows = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][3],  # ct: cumulative time
        reverse=True,
    )
    hotspots = [
        Hotspot(
            function=_function_label(key),
            calls=nc,
            total_seconds=tt,
            cumulative_seconds=ct,
        )
        for key, (cc, nc, tt, ct, callers) in rows[:top_n]
    ]
    return result, hotspots


def format_hotspots(hotspots: List[Hotspot]) -> str:
    """A fixed-width table of the hotspots, widest costs first."""
    lines = [f"profile: top {len(hotspots)} function(s) by cumulative time",
             f"{'cumsec':>10} {'totsec':>10} {'calls':>9}  function"]
    for spot in hotspots:
        lines.append(
            f"{spot.cumulative_seconds:>10.4f} {spot.total_seconds:>10.4f} "
            f"{spot.calls:>9}  {spot.function}"
        )
    return "\n".join(lines)
