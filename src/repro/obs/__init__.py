"""Observability for the repair pipeline: spans, metrics, profiling.

Three layers, strictly off the canonical path (a batch report's bytes
are identical with observability on or off — see the smoke check in
:mod:`repro.obs.smoke` and the differential tests):

- :mod:`repro.obs.spans` — nested span tracing over an injectable
  monotonic clock (deterministic under test);
- :mod:`repro.obs.metrics` — typed counters / gauges / histograms in a
  mergeable registry;
- :mod:`repro.obs.sink` — fsync'd JSONL appends for spans/events, one
  atomic snapshot file for metrics, plus the schema validators CI runs;
- :mod:`repro.obs.profile` — cProfile wrapping with top-N hotspots
  (``repro batch --profile``).

Instrumented code holds an :class:`Observability` facade; pass
:data:`NULL_OBS` (or nothing) to run dark.
"""

from .metrics import METRICS_SCHEMA, Counter, Gauge, Histogram, MetricsRegistry
from .observability import NULL_OBS, Observability
from .profile import Hotspot, format_hotspots, profile_call
from .sink import (
    JsonlSink,
    ObsSchemaError,
    load_metrics,
    read_spans,
    validate_metrics_snapshot,
    validate_record,
    validate_spans_file,
    write_metrics,
)
from .spans import ManualClock, Tracer

__all__ = [
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "Observability",
    "Hotspot",
    "format_hotspots",
    "profile_call",
    "JsonlSink",
    "ObsSchemaError",
    "load_metrics",
    "read_spans",
    "validate_metrics_snapshot",
    "validate_record",
    "validate_spans_file",
    "write_metrics",
    "ManualClock",
    "Tracer",
]
