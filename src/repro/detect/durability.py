"""The durability checker: a pmemcheck-style PM bug finder.

Replays a PM trace through the cache-line durability state machine and,
at every durability boundary (``checkpoint`` calls and process exit),
reports stores whose durability obligation is unmet:

- store never flushed, no later fence either -> *missing-flush&fence*
- store never flushed, but a fence occurs before the boundary (so an
  inserted flush would be ordered) -> *missing-flush*
- store flushed with a weakly-ordered flush that no fence drains before
  the boundary -> *missing-fence*

Redundant flushes of clean lines are reported separately as performance
diagnostics (never fixed; paper §7).
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Tuple

from ..memory.layout import lines_covering
from ..trace.events import (
    BoundaryEvent,
    FenceEvent,
    FlushEvent,
    StoreEvent,
)
from ..trace.trace import PMTrace
from .reports import BugKind, BugReport, DetectionResult, PerfReport

#: (store event, flush event or None) pending on a line
_Pending = Tuple[StoreEvent, Optional[FlushEvent]]

#: A boundary policy maps a boundary event to either None (skip), the
#: string "all" (check every pending store), or an address range
#: ``(lo, hi)`` restricting the check.
BoundaryPolicy = Callable[[BoundaryEvent], Optional[object]]


def _pmemcheck_policy(boundary: BoundaryEvent) -> Optional[object]:
    """pmemcheck checks everything at every boundary except PMTest tags."""
    if boundary.label.startswith("pmtest:"):
        return None
    return "all"


def _pmtest_policy(boundary: BoundaryEvent) -> Optional[object]:
    """PMTest checks only its own assertions, each over a range."""
    if not boundary.label.startswith("pmtest:"):
        return None
    _, addr_text, size_text = boundary.label.split(":")
    lo = int(addr_text, 16)
    return (lo, lo + int(size_text))


class DurabilityChecker:
    """Offline trace analysis (the detector half of Fig. 2's pipeline)."""

    def __init__(self, boundary_policy: BoundaryPolicy = _pmemcheck_policy):
        self.boundary_policy = boundary_policy

    def check(self, trace: PMTrace) -> DetectionResult:
        dirty: Dict[int, List[StoreEvent]] = {}
        flushing: Dict[int, List[_Pending]] = {}
        fence_seqs: List[int] = []
        result = DetectionResult()
        # One report per (store instruction, bug kind, *call path*).
        # The call path matters: the same store inside a shared helper
        # like memcpy reached through different call sites is a
        # distinct bug with a distinct (hoisted) fix location.
        reports: Dict[Tuple[int, BugKind, Tuple[int, ...]], BugReport] = {}
        attributed_seqs: set = set()
        perf: Dict[int, PerfReport] = {}

        def report(
            kind: BugKind,
            store: StoreEvent,
            boundary: BoundaryEvent,
            flush: Optional[FlushEvent],
        ) -> None:
            if store.seq in attributed_seqs:
                return
            attributed_seqs.add(store.seq)
            path = tuple(frame.iid for frame in store.caller_frames)
            key = (store.iid, kind, path)
            existing = reports.get(key)
            if existing is None:
                reports[key] = BugReport(
                    kind=kind,
                    store=store,
                    boundary=boundary,
                    flush=flush,
                    report_id=len(reports) + 1,
                )
            else:
                existing.occurrences += 1

        for event in trace:
            if isinstance(event, StoreEvent):
                if event.space != "pm":
                    continue
                for line_addr in lines_covering(event.addr, event.size):
                    if event.nontemporal:
                        # MOVNT: already write-combining-queued; it
                        # needs no flush, only an ordering fence.
                        flushing.setdefault(line_addr, []).append((event, None))
                    else:
                        dirty.setdefault(line_addr, []).append(event)
            elif isinstance(event, FlushEvent):
                line_addr = event.line_addr
                if not event.had_work:
                    note = perf.get(event.iid)
                    if note is None:
                        perf[event.iid] = PerfReport(event)
                    else:
                        note.occurrences += 1
                pending = dirty.pop(line_addr, [])
                if event.flush_kind == "clflush":
                    # Strongly ordered: line durable immediately.
                    flushing.pop(line_addr, None)
                else:
                    if pending:
                        flushing.setdefault(line_addr, []).extend(
                            (store, event) for store in pending
                        )
            elif isinstance(event, FenceEvent):
                fence_seqs.append(event.seq)
                flushing.clear()
            elif isinstance(event, BoundaryEvent):
                scope = self.boundary_policy(event)
                if scope is None:
                    continue

                def in_scope(store: StoreEvent) -> bool:
                    if scope == "all":
                        return True
                    lo, hi = scope  # type: ignore[misc]
                    return store.addr < hi and store.addr + store.size > lo

                for stores in dirty.values():
                    for store in stores:
                        if not in_scope(store):
                            continue
                        fence_after = (
                            bisect.bisect_right(fence_seqs, store.seq)
                            < len(fence_seqs)
                        )
                        kind = (
                            BugKind.MISSING_FLUSH
                            if fence_after
                            else BugKind.MISSING_FLUSH_FENCE
                        )
                        report(kind, store, event, None)
                for pairs in flushing.values():
                    for store, flush in pairs:
                        if in_scope(store):
                            report(BugKind.MISSING_FENCE, store, event, flush)

        result.bugs = sorted(
            reports.values(), key=lambda b: (b.store.seq, b.kind.value)
        )
        result.perf = sorted(perf.values(), key=lambda p: p.flush.seq)
        return result


def check_trace(trace: PMTrace) -> DetectionResult:
    """Run the pmemcheck-style checker over a trace."""
    return DurabilityChecker().check(trace)


def check_trace_pmtest(trace: PMTrace) -> DetectionResult:
    """Run the PMTest-style assertion checker over a trace."""
    return DurabilityChecker(_pmtest_policy).check(trace)
