"""Property-based equivalence for the incremental revalidation engine.

Over seeded random small PM programs and random flush/fence fix
sequences:

1. after each committed fix round, incremental revalidation (every
   tier: synthesis, snapshot replay, full fallback) reaches exactly the
   detection a from-scratch run on the same module reaches;
2. the rechecked-chain set is *complete*: any cache line whose per-line
   bug population changed between the recorded baseline and the
   post-fix truth is among the chains the engine re-checked — no bug
   outside the reported chains ever changes state.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.hippocrates import Hippocrates
from repro.detect import pmemcheck_run
from repro.memory.layout import lines_covering
from repro.revalidate import IncrementalRevalidator
from repro.revalidate.recording import CallRecord, RunRecorder
from repro.ir import I64, ModuleBuilder, PTR

#: Each element: (persist?, slot, value, via_helper?) — the same shape
#: as tests/test_prop_detector_fixer.py, so the generated programs mix
#: direct and helper-mediated PM stores with per-slot persistence.
action = st.tuples(
    st.booleans(),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=1000),
    st.booleans(),
)


def build(actions):
    mb = ModuleBuilder("gen")
    helper = mb.function("set_slot", [("p", PTR), ("v", I64)], source_file="gen.c")
    helper.store(helper.function.args[1], helper.function.args[0])
    helper.ret()

    b = mb.function("main", [], I64, source_file="gen.c")
    base = b.call("pm_alloc", [256], PTR)
    vol = b.call("vol_alloc", [256], PTR)
    b.call("set_slot", [vol, 1])  # volatile helper use
    for persist, slot, value, via_helper in actions:
        target = b.gep(base, slot * 64)
        if via_helper:
            b.call("set_slot", [target, value])
        else:
            b.store(value, target)
        if persist:
            b.flush(target)
            b.fence()
    b.call("checkpoint", [])
    b.ret(0)
    return mb.module


def drive(interp):
    interp.call("main")


def _bug_records(detection):
    return [b.as_record() for b in detection.bugs]


def _lines_by_bugs(detection):
    """Map cache line -> frozenset of bug records touching it."""
    by_line = {}
    for bug in detection.bugs:
        key = (bug.kind.value, bug.store.function, str(bug.store.loc))
        for line in lines_covering(bug.store.addr, bug.store.size):
            by_line.setdefault(line, set()).add(key)
    return by_line


def _repair_incrementally(module):
    """Record, repair, revalidate; returns (engine, fixer, outcome).

    ``heuristic="off"`` keeps every repair intraprocedural — a
    flush/fence insertion at the store site, even inside the shared
    helper — so the module stays synthesis-eligible *and* the inserted
    instructions execute against volatile targets too (the vol-anchor
    side channel is load-bearing here)."""
    engine = IncrementalRevalidator(drive)
    _, trace, interp = engine.record(module)
    fixer = Hippocrates(
        module, trace, interp.machine, heuristic="off", revalidator=engine
    )
    fixer.apply(fixer.compute_fixes())
    return engine, fixer, fixer.revalidate()


@settings(max_examples=30, deadline=None)
@given(actions=st.lists(action, min_size=1, max_size=8))
def test_incremental_matches_scratch_detection(actions):
    """Synthesis tier: the revalidated detection equals a from-scratch
    run over the same repaired module, record for record."""
    module = build(actions)
    engine, fixer, outcome = _repair_incrementally(module)
    scratch, _, _ = pmemcheck_run(module, drive)
    assert outcome.mode in ("baseline", "synthesized")
    assert _bug_records(outcome.detection) == _bug_records(scratch)
    # same module instance on both sides, so describe() (which embeds
    # iids) is a sound canonical form for the perf diagnostics
    assert [p.describe() for p in outcome.detection.perf] == [
        p.describe() for p in scratch.perf
    ]
    assert outcome.detection.bug_count == 0  # Hippocrates converges


@settings(max_examples=30, deadline=None)
@given(actions=st.lists(action, min_size=1, max_size=8))
def test_rechecked_chains_cover_every_state_change(actions):
    """Completeness: a bug can only change state (appear, disappear,
    change occurrence count) on a cache line the engine re-checked."""
    module = build(actions)
    engine = IncrementalRevalidator(drive)
    baseline_detection, trace, interp = engine.record(module)
    fixer = Hippocrates(
        module, trace, interp.machine, heuristic="off", revalidator=engine
    )
    fixer.apply(fixer.compute_fixes())
    outcome = fixer.revalidate()
    if outcome.mode == "baseline":
        assert _bug_records(outcome.detection) == _bug_records(
            baseline_detection
        )
        return

    before = _lines_by_bugs(baseline_detection)
    after = _lines_by_bugs(outcome.detection)
    changed = {
        line
        for line in set(before) | set(after)
        if before.get(line, set()) != after.get(line, set())
    }
    assert changed <= outcome.rechecked_chains


@settings(max_examples=20, deadline=None)
@given(actions=st.lists(action, min_size=1, max_size=8))
def test_replay_tier_matches_synthesis_tier(actions):
    """Degrading the witness (anchors without insertion specs) must
    route through snapshot replay and still reach the same verdict."""
    module = build(actions)
    engine, fixer, synth = _repair_incrementally(module)
    if synth.mode == "baseline":
        return
    assert synth.mode == "synthesized"
    # Drop the insertion specs: the anchors survive, so the engine can
    # still bound the damage, but it must now replay the interpreter.
    engine.note_commit(set(), structural=False, insertions=None)
    replayed = fixer.revalidate()
    assert replayed.mode == "incremental"
    assert _bug_records(replayed.detection) == _bug_records(synth.detection)


@settings(max_examples=10, deadline=None)
@given(actions=st.lists(action, min_size=1, max_size=6))
def test_structural_commit_forces_full_rerecord(actions):
    module = build(actions)
    engine, fixer, first = _repair_incrementally(module)
    engine.note_commit(set(), structural=True)
    outcome = fixer.revalidate()
    assert outcome.mode == "full"
    assert _bug_records(outcome.detection) == _bug_records(first.detection)


# ---------------------------------------------------------------------------
# snapshot thinning
# ---------------------------------------------------------------------------


def _recorder_with_segments(n_segments, max_snapshots):
    """A recorder as it stands right after a recording made every
    segment on-stride: one (sentinel) snapshot per segment."""
    recorder = RunRecorder(max_snapshots=max_snapshots)
    for index in range(n_segments):
        recorder.segments.append(
            CallRecord(
                index=index,
                fn_name="f",
                args=[],
                trace_start=0,
                seq_start=0,
                steps_start=0,
                snapshot=object(),
            )
        )
    recorder._snapshot_count = n_segments
    return recorder


@settings(max_examples=100, deadline=None)
@given(
    n_segments=st.integers(min_value=1, max_value=200),
    max_snapshots=st.integers(min_value=1, max_value=64),
    lowered=st.integers(min_value=1, max_value=64),
)
def test_thin_always_reaches_budget(n_segments, max_snapshots, lowered):
    """One doubling halves the count at best, which is not always
    enough — ``_thin`` must *loop* until under budget, for any segment
    count and any budget, including a budget lowered after the fact."""
    recorder = _recorder_with_segments(n_segments, max_snapshots)
    recorder._thin()

    def check(rec):
        retained = [s.index for s in rec.segments if s.snapshot is not None]
        assert rec._snapshot_count == len(retained)
        assert len(retained) <= rec.max_snapshots
        # segment 0 is on-stride for every stride: replay can always
        # resume from the very beginning
        assert retained[0] == 0
        # exactly the on-stride segments survive (the replay tier's
        # nearest-snapshot search assumes this regularity)
        assert retained == [
            i for i in range(len(rec.segments)) if i % rec._stride == 0
        ]

    check(recorder)
    # the budget can shrink between runs (engine reconfiguration); the
    # next _thin call must converge from the already-thinned state too
    recorder.max_snapshots = lowered
    recorder._thin()
    check(recorder)
