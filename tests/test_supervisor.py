"""Crash-safe batch supervision: journal, watchdog, retries, resume.

Covers the batch layer's resilience invariants at every level:

- journal framing and recovery (CRC per record, torn-tail truncation,
  the kill-between-``write`` and kill-between-append-and-``fsync``
  windows, atomic compaction);
- supervision (watchdog kill of hung workers, bounded retries with
  deterministic backoff, retry-then-quarantine ordering, no batch
  stall);
- resume (kill at checkpoint boundaries, byte-identical aggregate
  reports, no task executed twice, stale-journal refusal);
- the end-to-end signal path (SIGTERM mid-batch drains to exit code 8
  and the journal resumes to the uninterrupted bytes).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ReproError
from repro.faultinject import FaultPlan
from repro.faultinject.resume import run_kill_resume, tear_journal_tail
from repro.supervisor import (
    BatchSupervisor,
    CheckpointJournal,
    JournalError,
    RepairTask,
    SupervisorConfig,
    SupervisorError,
    SupervisorKilled,
    backoff_delay,
    corpus_tasks,
    decode_record,
    encode_record,
    run_batch,
)

CASES = ["PMDK-447", "PMDK-452"]
SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def small_tasks(heuristic="full"):
    return corpus_tasks(CASES, heuristic=heuristic)


def fast_config(**overrides):
    defaults = dict(
        mode="inprocess",
        max_retries=1,
        backoff_base=0.0,
        task_timeout=600.0,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


# ---------------------------------------------------------------------------
# journal framing
# ---------------------------------------------------------------------------


def test_record_roundtrip():
    record = {"type": "task-done", "task": "t1", "result": {"ok": True}}
    line = encode_record(record)
    assert decode_record(line) == record


def test_decode_rejects_damage():
    line = encode_record({"type": "batch-start"})
    assert decode_record(line) is not None
    assert decode_record("") is None
    assert decode_record("short") is None
    assert decode_record(line[:-1]) is None  # torn payload: CRC mismatch
    assert decode_record("zzzzzzzz " + line[9:]) is None  # bad CRC text
    flipped = line[:9] + line[9:].replace("batch", "botch")
    assert decode_record(flipped) is None
    # a CRC-valid non-dict payload is mis-framed, not a record
    import json
    import zlib

    payload = json.dumps([1, 2, 3], separators=(",", ":"))
    crc = zlib.crc32(payload.encode()) & 0xFFFFFFFF
    assert decode_record(f"{crc:08x} {payload}") is None


def test_append_is_durable_and_readable(tmp_path):
    path = str(tmp_path / "j.journal")
    with CheckpointJournal(path) as journal:
        journal.append({"type": "batch-start", "tasks": ["a"]})
        journal.append({"type": "task-start", "task": "a", "attempt": 1})
    recovered = CheckpointJournal.read(path)
    assert not recovered.torn
    assert [r["type"] for r in recovered.records] == ["batch-start", "task-start"]


# ---------------------------------------------------------------------------
# journal recovery: torn tails
# ---------------------------------------------------------------------------


def _write_journal(path, records):
    with CheckpointJournal(path) as journal:
        for record in records:
            journal.append(record)


def test_torn_tail_mid_crc_is_truncated(tmp_path):
    path = str(tmp_path / "j.journal")
    _write_journal(
        path,
        [
            {"type": "batch-start", "tasks": ["a", "b"]},
            {"type": "task-done", "task": "a", "result": {}},
        ],
    )
    assert tear_journal_tail(path)
    recovered = CheckpointJournal.read(path)
    assert recovered.torn
    assert recovered.torn_at == 2
    assert [r["type"] for r in recovered.records] == ["batch-start"]

    # recover() physically truncates, so the next append extends the
    # good prefix instead of corrupting the log further
    journal = CheckpointJournal(path)
    journal.recover()
    journal.append({"type": "task-start", "task": "a", "attempt": 1})
    journal.close()
    again = CheckpointJournal.read(path)
    assert not again.torn
    assert [r["type"] for r in again.records] == ["batch-start", "task-start"]


def test_complete_line_missing_newline_is_torn(tmp_path):
    """The kill-between-append-and-fsync window: the record's bytes may
    be complete but its newline (or durability) is not guaranteed — a
    final line without ``\\n`` is untrusted even if its CRC validates."""
    path = str(tmp_path / "j.journal")
    _write_journal(path, [{"type": "batch-start", "tasks": ["a"]}])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(encode_record({"type": "task-start", "task": "a"}))
        # no newline: the write(2) was cut short of its final byte
    recovered = CheckpointJournal.read(path)
    assert recovered.torn
    assert recovered.torn_at == 2
    assert len(recovered.records) == 1


def test_garbage_after_torn_record_is_untrusted(tmp_path):
    """A WAL has no holes: even decodable lines after the first bad
    record are ignored."""
    path = str(tmp_path / "j.journal")
    good = encode_record({"type": "batch-start", "tasks": []})
    later = encode_record({"type": "task-done", "task": "x", "result": {}})
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(good + "\n")
        handle.write("garbage line\n")
        handle.write(later + "\n")
    recovered = CheckpointJournal.read(path)
    assert recovered.torn_at == 2
    assert [r["type"] for r in recovered.records] == ["batch-start"]
    assert "x" not in recovered.completed_tasks()


def test_recover_after_append_is_misuse(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "j.journal"))
    journal.append({"type": "batch-start"})
    with pytest.raises(JournalError):
        journal.recover()
    journal.close()


def test_compact_keeps_terminal_records_only(tmp_path):
    path = str(tmp_path / "j.journal")
    journal = CheckpointJournal(path)
    journal.append({"type": "batch-start", "tasks": ["a", "b"]})
    journal.append({"type": "task-start", "task": "a", "attempt": 1})
    journal.append({"type": "task-failed", "task": "a", "attempt": 1})
    journal.append({"type": "task-start", "task": "a", "attempt": 2})
    journal.append({"type": "task-done", "task": "a", "result": {}})
    journal.append({"type": "task-quarantined", "task": "b", "attempts": 2})
    journal.append({"type": "batch-end", "totals": {}})
    kept = journal.compact()
    assert kept == 4
    recovered = CheckpointJournal.read(path)
    assert [r["type"] for r in recovered.records] == [
        "batch-start", "task-done", "task-quarantined", "batch-end",
    ]


# ---------------------------------------------------------------------------
# backoff
# ---------------------------------------------------------------------------


def test_backoff_is_deterministic_bounded_and_growing():
    config = SupervisorConfig(backoff_base=0.1, backoff_cap=1.0)
    first = backoff_delay(config, "PMDK-447", 1)
    assert first == backoff_delay(config, "PMDK-447", 1)  # deterministic
    assert backoff_delay(config, "P-CLHT", 1) != first  # jitter per task
    previous = 0.0
    for attempt in range(1, 6):
        delay = backoff_delay(config, "PMDK-447", attempt)
        assert 0.0 < delay <= 1.0 * 1.5  # cap * max jitter factor
        assert delay >= previous or delay >= 1.0  # grows until capped
        previous = delay


# ---------------------------------------------------------------------------
# supervision basics
# ---------------------------------------------------------------------------


def test_duplicate_task_ids_are_rejected(tmp_path):
    tasks = small_tasks() + small_tasks()[:1]
    with pytest.raises(SupervisorError):
        BatchSupervisor(tasks, journal_path=str(tmp_path / "j.journal"))


def test_inprocess_batch_completes_and_is_deterministic(tmp_path):
    tasks = small_tasks()
    a = run_batch(tasks, journal_path=str(tmp_path / "a.journal"),
                  config=fast_config())
    b = run_batch(tasks, journal_path=str(tmp_path / "b.journal"),
                  config=fast_config())
    assert a.ok and b.ok
    assert len(a.done) == len(CASES)
    assert a.canonical_json() == b.canonical_json()
    totals = a.totals()
    assert totals["bugs_fixed"] == totals["bugs_detected"] > 0


def test_batch_runs_without_a_journal():
    report = run_batch(small_tasks(), config=fast_config())
    assert report.ok


def test_file_task_repairs_module_atomically(tmp_path, monkeypatch):
    from repro.corpus.bugs import all_cases
    from repro.interp import Interpreter
    from repro.ir import format_module
    from repro.trace import dump_trace

    case = next(c for c in all_cases() if c.case_id == "PMDK-447")
    module = case.build()
    module_path = tmp_path / "app.ir"
    module_path.write_text(format_module(module))
    interp = Interpreter(module)
    case.drive(interp)
    interp.finish()
    trace_path = tmp_path / "app.trace"
    trace_path.write_text(dump_trace(interp.machine.trace))

    out_path = tmp_path / "app.fixed.ir"
    task = RepairTask(
        task_id="app",
        kind="file",
        module_path=str(module_path),
        trace_path=str(trace_path),
        output_path=str(out_path),
    )
    report = run_batch([task], journal_path=str(tmp_path / "j.journal"),
                       config=fast_config())
    assert report.ok
    assert out_path.exists()
    assert "flush" in out_path.read_text()
    # input untouched (output went elsewhere)
    assert module_path.read_text() == format_module(case.build())


# ---------------------------------------------------------------------------
# retries, quarantine, and the watchdog
# ---------------------------------------------------------------------------


def _journal_types_for(path, task_id):
    return [
        (r["type"], r.get("attempt"))
        for r in CheckpointJournal.read(path).records
        if r.get("task") == task_id
    ]


@pytest.mark.parametrize("mode", ["inprocess", "subprocess"])
def test_transient_worker_death_is_healed_by_retry(tmp_path, mode):
    tasks = small_tasks()
    plan = FaultPlan("worker", mode="kill-worker-at-nth", nth=1, attempts=1)
    journal_path = str(tmp_path / "j.journal")
    report = run_batch(
        tasks, journal_path=journal_path,
        config=fast_config(mode=mode, task_timeout=60.0,
                           heartbeat_timeout=5.0),
        fault=plan,
    )
    assert report.ok
    assert report.total_retries == 1
    # journal ordering: start(1), failed(1), start(2), done
    events = _journal_types_for(journal_path, tasks[0].task_id)
    assert events == [
        ("task-start", 1), ("task-failed", 1), ("task-start", 2),
        ("task-done", 2),
    ]


def test_persistent_fault_quarantines_after_bounded_retries(tmp_path):
    tasks = small_tasks()
    plan = FaultPlan("worker", mode="kill-worker-at-nth", nth=1, attempts=0)
    journal_path = str(tmp_path / "j.journal")
    config = fast_config(max_retries=2)
    report = run_batch(tasks, journal_path=journal_path, config=config,
                       fault=plan)
    target = report.outcome(tasks[0].task_id)
    assert target is not None and target.status == "quarantined"
    assert target.attempts == config.max_retries + 1
    # retry-then-quarantine ordering: every retry precedes quarantine
    events = _journal_types_for(journal_path, tasks[0].task_id)
    assert events == [
        ("task-start", 1), ("task-failed", 1),
        ("task-start", 2), ("task-failed", 2),
        ("task-start", 3), ("task-quarantined", None),
    ]
    # the fault never stalls the rest of the batch
    other = report.outcome(tasks[1].task_id)
    assert other is not None and other.status == "done"


@pytest.mark.parametrize("mode", ["inprocess", "subprocess"])
def test_watchdog_kills_hung_worker_within_budget(tmp_path, mode):
    tasks = small_tasks()
    plan = FaultPlan("worker", mode="hang-worker", nth=1, attempts=1)
    config = fast_config(
        mode=mode,
        task_timeout=2.0,
        heartbeat_timeout=1.0,
        heartbeat_interval=0.05,
    )
    started = time.monotonic()
    report = run_batch(tasks, journal_path=str(tmp_path / "j.journal"),
                       config=config, fault=plan)
    elapsed = time.monotonic() - started
    assert report.ok
    assert report.total_retries == 1
    # detection is bounded by the watchdog budget, not by luck: one
    # hang (<= task_timeout to detect) plus two healthy executions
    assert elapsed < 30.0
    target = report.outcome(tasks[0].task_id)
    assert target is not None and target.attempts == 2


# ---------------------------------------------------------------------------
# kill/resume
# ---------------------------------------------------------------------------


def _baseline_bytes(tasks, tmp_path):
    report = run_batch(tasks, journal_path=str(tmp_path / "base.journal"),
                       config=fast_config())
    return report.canonical_json()


@pytest.mark.parametrize("torn", [False, True])
def test_kill_at_checkpoint_then_resume_is_byte_identical(tmp_path, torn):
    tasks = small_tasks()
    baseline = _baseline_bytes(tasks, tmp_path)
    suffix = "torn" if torn else "plain"
    record = run_kill_resume(
        tasks,
        str(tmp_path / f"kill-{suffix}.journal"),
        boundary=3,  # right after the first task-done
        baseline_bytes=baseline,
        torn=torn,
    )
    assert record.ok, record.problems
    assert record.reexecuted < len(tasks) + 1


def test_kill_before_batch_start_resumes_as_fresh_run(tmp_path):
    tasks = small_tasks()
    baseline = _baseline_bytes(tasks, tmp_path)
    record = run_kill_resume(
        tasks,
        str(tmp_path / "kill-1.journal"),
        boundary=1,  # the batch-start record itself
        baseline_bytes=baseline,
        torn=True,  # tearing it leaves an empty trusted prefix
    )
    assert record.ok, record.problems
    assert record.replayed == 0


def test_completed_task_is_never_executed_twice(tmp_path):
    tasks = small_tasks()
    journal_path = str(tmp_path / "j.journal")
    plan = FaultPlan("supervisor", mode="kill-supervisor-at-nth", nth=4)
    with pytest.raises(SupervisorKilled):
        run_batch(tasks, journal_path=journal_path, config=fast_config(),
                  fault=plan)
    done_before = set(CheckpointJournal.read(journal_path).completed_tasks())
    assert done_before  # the kill landed after at least one completion
    resumed = run_batch(tasks, journal_path=journal_path, resume=True,
                        config=fast_config())
    assert resumed.ok
    for task_id in done_before:
        outcome = resumed.outcome(task_id)
        assert outcome is not None and outcome.replayed
    records = CheckpointJournal.read(journal_path).records
    resume_at = next(
        i for i, r in enumerate(records) if r["type"] == "batch-resume"
    )
    restarted = {
        r["task"] for r in records[resume_at:] if r["type"] == "task-start"
    }
    assert not (done_before & restarted)


def test_resume_refuses_a_different_batch(tmp_path):
    journal_path = str(tmp_path / "j.journal")
    run_batch(small_tasks(), journal_path=journal_path, config=fast_config())
    other = corpus_tasks(["P-CLHT"])
    with pytest.raises(SupervisorError, match="refusing to resume"):
        run_batch(other, journal_path=journal_path, resume=True,
                  config=fast_config())


def test_resume_requires_a_journal():
    with pytest.raises(SupervisorError):
        run_batch(small_tasks(), resume=True, config=fast_config())


# ---------------------------------------------------------------------------
# signals: SIGTERM drains to a resumable journal (end to end)
# ---------------------------------------------------------------------------


def _spawn_batch(journal_path, *extra):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "batch", "--corpus",
            "--journal", journal_path, "--mode", "subprocess", "--jobs", "1",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )


@pytest.mark.slow
def test_sigterm_mid_batch_drains_and_resumes_byte_identical(tmp_path):
    journal_path = str(tmp_path / "sig.journal")
    report_path = str(tmp_path / "resumed.json")
    baseline = _baseline_bytes(corpus_tasks(), tmp_path)

    proc = _spawn_batch(journal_path)
    # wait until at least one task completed, then interrupt mid-batch
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break
        recovered = CheckpointJournal.read(journal_path)
        if recovered.completed_tasks():
            break
        time.sleep(0.05)
    assert proc.poll() is None, f"batch finished early:\n{proc.stdout.read()}"
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=120)
    assert proc.returncode == 8, out  # EXIT_INTERRUPTED: drained, resumable
    records = CheckpointJournal.read(journal_path).records
    assert records[-1]["type"] == "batch-interrupted"
    assert records[-1]["signal"] in ("SIGTERM", signal.SIGTERM, 15)

    resume = _spawn_batch(
        journal_path, "--resume", "--report-out", report_path,
    )
    out, _ = resume.communicate(timeout=300)
    assert resume.returncode == 0, out
    with open(report_path, "r", encoding="utf-8") as handle:
        assert handle.read() == baseline


# ---------------------------------------------------------------------------
# the CLI surface
# ---------------------------------------------------------------------------


def test_cli_batch_cases_and_report_out(tmp_path, capsys):
    from repro.cli import main

    journal_path = str(tmp_path / "j.journal")
    report_path = str(tmp_path / "report.json")
    code = main([
        "batch", "--cases", *CASES, "--journal", journal_path,
        "--mode", "inprocess", "--report-out", report_path,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "task(s) completed" in out
    with open(report_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert '"schema":"repro-batch-report-v1"' in text
    assert text == _baseline_bytes(small_tasks(), tmp_path)


def test_cli_batch_without_work_is_an_error(capsys):
    from repro.cli import main

    assert main(["batch"]) == 2
    assert "nothing to do" in capsys.readouterr().err


def test_cli_batch_bad_task_spec_is_an_error(capsys):
    from repro.cli import main

    assert main(["batch", "--task", "only-a-module"]) == 2
    assert "MODULE:TRACE" in capsys.readouterr().err
