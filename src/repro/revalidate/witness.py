"""The mutation witness: what a committed flush/fence fix inserted.

A :class:`~repro.core.transaction.FixTransaction` that only inserted
flushes and fences can describe itself *exactly*: each fix anchors at an
existing instruction (the buggy store, or the existing flush a fence
follows) and appends a short straight-line run of ``flush``/``gep``/
``fence`` instructions immediately after it.  An :class:`InsertionSpec`
captures that shape as plain data — the anchor iid, and per inserted
instruction its iid, source location, and (for flushes) the constant
byte offset of its target from the anchor store's address.

The incremental revalidation engine consumes specs to *synthesize* the
post-fix trace from the baseline trace without re-executing the module
(see :mod:`repro.revalidate.synthesize`): inserted flushes and fences
change no register value, no branch, and no store, so their only
observable effect is the extra flush/fence events (and the ``had_work``
bits a cache simulation recomputes).

:func:`spec_for_fix` returns None when the inserted instructions do not
match the expected shape — the engine then falls back to snapshot
replay, never to guessing.

This module sits below :mod:`repro.core` in the import graph (it only
needs the IR), so both the transaction layer and the engine can import
it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from ..ir.debuginfo import DebugLoc
from ..ir.instructions import Fence, Flush, Gep, Instruction, Store
from ..ir.values import Constant


@dataclass(frozen=True)
class SynthFlush:
    """An inserted flush: targets ``anchor_store_addr + offset``."""

    iid: int
    loc: DebugLoc
    flush_kind: str
    offset: int


@dataclass(frozen=True)
class SynthFence:
    """An inserted fence (executes unconditionally after the anchor)."""

    iid: int
    loc: DebugLoc
    fence_kind: str


SynthOp = Union[SynthFlush, SynthFence]


@dataclass(frozen=True)
class InsertionSpec:
    """One committed fix's insertions, anchored at one instruction."""

    anchor_iid: int
    #: ``"store"`` — events key on PM store events of the anchor;
    #: ``"flush"`` — on PM flush events of the anchor.
    anchor_kind: str
    #: the anchor's enclosing function (stack synthesis for executions
    #: the baseline trace does not show, i.e. volatile targets)
    function: str
    ops: Tuple[SynthOp, ...]


@dataclass(frozen=True)
class CloneSpec:
    """One persistent clone created by a structural (hoisted) fix.

    ``clone_function`` copies a function instruction-for-instruction:
    same control flow, same operands, same source locations — only the
    name and the instruction iids are fresh, plus covering flushes
    inserted after each maybe-PM store.  ``iid_map`` is the
    original→clone iid correspondence for the *copied* instructions;
    ``flush_specs`` describes the inserted covering flushes exactly like
    a flush-fix witness, anchored at the clone's store iids.
    """

    orig_name: str
    clone_name: str
    iid_map: Tuple[Tuple[int, int], ...]
    flush_specs: Tuple[InsertionSpec, ...]


@dataclass(frozen=True)
class StructuralSpec:
    """One committed hoisted fix: a call retargeted onto a clone tree.

    Captures everything trace synthesis needs to rewrite the recorded
    callee spans of ``call_iid`` instead of re-executing: the clone
    closure (the retargeted callee plus every transitively re-targeted
    nested callee), and the sfence inserted after the call site (None
    when an adjacent fence already ordered it).

    The rewrite is sound by the same observational-linearity argument as
    flush/fence synthesis: a clone executes the same instructions on the
    same values (allocas replay in the same order, so even stack
    addresses coincide); only iids, function names and the inserted
    flush/fence events differ.
    """

    call_iid: int
    #: the call site's enclosing function (fence stack synthesis)
    caller_function: str
    orig_callee: str
    clone_callee: str
    fence: Optional[SynthFence]
    clones: Tuple[CloneSpec, ...]


def spec_for_fix(
    anchor: Instruction, inserted: Iterable[Instruction]
) -> Optional[InsertionSpec]:
    """Describe ``inserted`` (in program order, as applied after
    ``anchor``) as an :class:`InsertionSpec`, or None if the shape is
    not the straight-line flush/gep/fence run the engine understands."""
    if isinstance(anchor, Store):
        anchor_kind = "store"
    elif isinstance(anchor, Flush):
        anchor_kind = "flush"
    else:
        return None
    # Byte offsets (from the anchor's pointer) of the pointer values the
    # inserted flushes may target: the anchor's own pointer, plus any
    # inserted gep at a constant offset from a known pointer.
    offsets = {}
    pointer = getattr(anchor, "pointer", None)
    if pointer is not None:
        offsets[id(pointer)] = 0
    ops = []
    for instr in inserted:
        if isinstance(instr, Gep):
            base_off = offsets.get(id(instr.base))
            if base_off is None or not isinstance(instr.offset, Constant):
                return None
            offsets[id(instr)] = base_off + instr.offset.value
        elif isinstance(instr, Flush):
            offset = offsets.get(id(instr.pointer))
            if offset is None:
                return None
            ops.append(SynthFlush(instr.iid, instr.loc, instr.kind, offset))
        elif isinstance(instr, Fence):
            ops.append(SynthFence(instr.iid, instr.loc, instr.kind))
        else:
            return None
    return InsertionSpec(
        anchor_iid=anchor.iid,
        anchor_kind=anchor_kind,
        function=anchor.function.name if anchor.function is not None else "",
        ops=tuple(ops),
    )
