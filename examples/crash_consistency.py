#!/usr/bin/env python3
"""Why durability bugs matter: crash-state exploration.

Demonstrates the observable consequence of a missing flush: a
"committed" key-value insert that an adversarial crash silently loses —
and how, after Hippocrates repairs the store, *every* reachable crash
state contains the committed data.

Uses the crash-state explorer to enumerate which cache lines could have
reached the media at the moment of a simulated power failure.

Run:  python examples/crash_consistency.py
"""

from repro.apps import KVStore, build_kvstore
from repro.bench import redis_trace_workload
from repro.core import Hippocrates
from repro.memory import CrashExplorer

KEY = b"account-0042"
VALUE = b"balance=12345678"


def commit_one_put(module):
    """Init the store and complete one put (the 'commit')."""
    kv = KVStore(module)
    kv.init(32, 1 << 20)
    kv.put(KEY, VALUE)
    return kv


def explore(kv, label):
    explorer = CrashExplorer(kv.machine.cache, kv.machine.image)
    pending = explorer.pending_lines()
    states = list(explorer.states(max_states=64))
    lost = sum(1 for s in states if VALUE not in s.image)
    print(f"{label}:")
    print(f"   cache lines still pending at crash time : {len(pending)}")
    print(f"   crash states explored                   : {len(states)}")
    print(f"   states where the committed put is LOST  : {lost}")
    if lost:
        worst = states[0]  # the adversarial all-lost state
        assert VALUE not in worst.image
        print("   -> e.g. the power-failure-before-writeback state has no trace")
        print("      of the update; recovery would silently serve stale data.")
    else:
        print("   -> the update is durable in every reachable crash state.")
    print()
    return lost


def main():
    # The buggy store: flushes removed (fences kept), one put committed.
    buggy = build_kvstore("noflush")
    kv = commit_one_put(buggy)
    lost_before = explore(kv, "flush-free store, after a 'committed' put")
    assert lost_before > 0

    # Repair it with Hippocrates (trace from a representative workload).
    fixed = build_kvstore("noflush")
    tracer = KVStore(fixed)
    redis_trace_workload(tracer)
    report = Hippocrates(fixed, tracer.finish(), tracer.machine).fix()
    print(f"Hippocrates: {report.summary()}\n")

    kv = commit_one_put(fixed)
    lost_after = explore(kv, "Hippocrates-repaired store, same put")
    assert lost_after == 0
    print("crash-consistency demo OK: data loss before, none after")


if __name__ == "__main__":
    main()
