"""The aggregate batch report, with a canonical byte form.

The crash-safety contract of the batch supervisor is stated in bytes: a
run that was SIGKILL'd at any checkpoint boundary and resumed must
produce an aggregate report **byte-identical** to an uninterrupted run.
That only works if the report is a deterministic function of the task
results, so :meth:`BatchReport.canonical_json` includes nothing
volatile — no wall-clock time, no attempt counts, no pids.  Volatile
facts (retries, interruption, timings) live next to it in plain
attributes and the human summary, outside the canonical bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: canonical schema tag (bump on any canonical-form change)
SCHEMA = "repro-batch-report-v1"

#: terminal task statuses
DONE = "done"
QUARANTINED = "quarantined"


@dataclass
class TaskOutcome:
    """Terminal state of one task within a batch."""

    task_id: str
    status: str  # DONE | QUARANTINED
    #: deterministic result record (DONE tasks)
    record: Optional[Dict[str, Any]] = None
    #: last error (QUARANTINED tasks)
    error: str = ""
    #: attempts consumed (volatile: excluded from canonical bytes)
    attempts: int = 1
    #: True when replayed from the journal instead of executed
    replayed: bool = False
    #: rich in-memory CaseOutcome (in-process executions only; never
    #: journaled, never canonical)
    outcome_obj: Any = None
    #: analysis-manager hit/miss counters (volatile: a warm cache and a
    #: cold cache must still produce identical canonical bytes)
    stats: Optional[Dict[str, int]] = None

    def canonical(self) -> Dict[str, Any]:
        if self.status == DONE:
            return {"task": self.task_id, "status": DONE, "result": self.record}
        return {"task": self.task_id, "status": QUARANTINED, "error": self.error}


@dataclass
class BatchReport:
    """Everything one batch run produced, aggregate and per-task."""

    heuristic: str = "full"
    #: task outcomes in submission order
    outcomes: List[TaskOutcome] = field(default_factory=list)
    #: set when a SIGINT/SIGTERM drain ended the run early
    interrupted: bool = False
    #: tasks never dispatched because the run was interrupted
    pending: List[str] = field(default_factory=list)
    #: volatile run facts (mode, retries, elapsed) for the summary only
    mode: str = "inprocess"
    total_retries: int = 0
    elapsed_seconds: float = 0.0
    #: aggregated analysis-manager counters across executed tasks
    #: (volatile — replayed tasks ran no analyses and contribute none)
    analysis_stats: Dict[str, int] = field(default_factory=dict)

    def add_analysis_stats(self, stats: Optional[Dict[str, int]]) -> None:
        """Fold one task's analysis counters into the volatile total."""
        if not stats:
            return
        for key, value in stats.items():
            self.analysis_stats[key] = self.analysis_stats.get(key, 0) + int(value)

    # -- aggregate views ----------------------------------------------------

    def outcome(self, task_id: str) -> Optional[TaskOutcome]:
        for outcome in self.outcomes:
            if outcome.task_id == task_id:
                return outcome
        return None

    @property
    def done(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.status == DONE]

    @property
    def quarantined(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.status == QUARANTINED]

    @property
    def ok(self) -> bool:
        """Every task completed and every completed task fixed its bugs."""
        return (
            not self.interrupted
            and not self.quarantined
            and all(o.record and o.record.get("fixed") for o in self.done)
        )

    def totals(self) -> Dict[str, int]:
        """Aggregate FixReport-style counters across completed tasks."""
        keys = (
            "bugs_detected",
            "bugs_fixed",
            "bugs_remaining",
            "fixes_applied",
            "intraprocedural_count",
            "interprocedural_count",
            "inserted_instructions",
            "quarantined_bugs",
        )
        totals = {key: 0 for key in keys}
        for outcome in self.done:
            record = outcome.record or {}
            for key in keys:
                source = "quarantined" if key == "quarantined_bugs" else key
                totals[key] += int(record.get(source, 0))
        totals["tasks"] = len(self.outcomes) + len(self.pending)
        totals["tasks_completed"] = len(self.done)
        totals["tasks_quarantined"] = len(self.quarantined)
        return totals

    # -- canonical form -----------------------------------------------------

    def canonical_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "heuristic": self.heuristic,
            "tasks": [o.canonical() for o in self.outcomes],
            "totals": self.totals(),
        }

    def canonical_json(self) -> str:
        """The deterministic byte form (kill/resume compares these)."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        ) + "\n"

    # -- human form ---------------------------------------------------------

    def summary(self) -> str:
        totals = self.totals()
        text = (
            f"batch: {totals['tasks_completed']}/{totals['tasks']} task(s) "
            f"completed ({self.mode}); "
            f"{totals['bugs_fixed']}/{totals['bugs_detected']} bug(s) fixed, "
            f"{totals['fixes_applied']} fix(es) applied "
            f"({totals['intraprocedural_count']} intraprocedural, "
            f"{totals['interprocedural_count']} interprocedural)"
        )
        if totals["tasks_quarantined"]:
            text += f"; {totals['tasks_quarantined']} task(s) quarantined"
        if self.total_retries:
            text += f"; {self.total_retries} retr{'y' if self.total_retries == 1 else 'ies'}"
        replayed = sum(1 for o in self.outcomes if o.replayed)
        if replayed:
            text += f"; {replayed} task(s) replayed from journal"
        disk_hits = self.analysis_stats.get("disk_hits", 0)
        disk_misses = self.analysis_stats.get("disk_misses", 0)
        if disk_hits or disk_misses:
            text += f"; analysis cache: {disk_hits} hit(s), {disk_misses} miss(es)"
        if self.interrupted:
            text += f"; INTERRUPTED with {len(self.pending)} task(s) pending"
        return text
