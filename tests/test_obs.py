"""Unit tests for the observability layer: spans, metrics, sink, profile.

The load-bearing properties:

- span output is a pure function of the code path under a
  :class:`ManualClock` (byte-stable JSONL);
- the sink is fail-soft (drops, never raises, on I/O trouble) and its
  validator tolerates exactly the torn final line a crash can leave;
- :data:`NULL_OBS` is inert — the disabled facade allocates nothing
  per span and records nothing.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    JsonlSink,
    ManualClock,
    MetricsRegistry,
    NULL_OBS,
    Observability,
    ObsSchemaError,
    Tracer,
    format_hotspots,
    load_metrics,
    profile_call,
    read_spans,
    validate_metrics_snapshot,
    validate_record,
    validate_spans_file,
    write_metrics,
)


def serialize(records):
    return b"".join(
        json.dumps(r, sort_keys=True, separators=(",", ":")).encode() + b"\n"
        for r in records
    )


def trace_some_work(obs):
    with obs.span("outer", case="c1"):
        with obs.span("inner") as span:
            span.annotate(fixes=3)
        obs.event("tick", n=1)
    obs.count("work.units", 2)
    obs.observe("work.seconds", 0.5)


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_order(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.event("e")
        # Spans emit on close: children precede parents.
        names = [r["name"] for r in tracer.records]
        assert names == ["e", "b", "a"]
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["a"]["parent_id"] == 0
        assert by_name["b"]["parent_id"] == by_name["a"]["span_id"]
        assert by_name["e"]["parent_id"] == by_name["b"]["span_id"]

    def test_manual_clock_durations(self):
        tracer = Tracer(clock=ManualClock(start=10.0, step=2.0))
        with tracer.span("a"):
            pass
        (record,) = tracer.records
        assert record["start"] == 10.0
        assert record["end"] == 12.0
        assert record["duration"] == 2.0

    def test_error_recorded_and_propagated(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(KeyError):
            with tracer.span("a"):
                raise KeyError("boom")
        assert tracer.records[0]["error"] == "KeyError"

    def test_attrs_coerced_to_scalars(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a", obj=object(), ok=True, n=1, nothing=None) as s:
            s.annotate(late=[1, 2])
        attrs = tracer.records[0]["attrs"]
        assert attrs["ok"] is True and attrs["n"] == 1 and attrs["nothing"] is None
        assert isinstance(attrs["obj"], str) and isinstance(attrs["late"], str)
        validate_record(tracer.records[0])

    def test_byte_stable_across_runs(self):
        outputs = []
        for _ in range(2):
            obs = Observability(clock=ManualClock())
            trace_some_work(obs)
            outputs.append(serialize(obs.tracer.records))
        assert outputs[0] == outputs[1]


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.snapshot()["counters"]["c"] == 5
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (3.0, 1.0, 2.0):
            reg.histogram("h").observe(v)
        summary = reg.snapshot()["histograms"]["h"]
        assert summary == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0}

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(1.0)
        a.histogram("h").observe(5.0)
        b.counter("c").inc(3)
        b.gauge("g").set(9.0)
        b.histogram("h").observe(1.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5  # counters add
        assert snap["gauges"]["g"] == 9.0  # gauges last-write-win
        assert snap["histograms"]["h"] == {
            "count": 2,
            "total": 6.0,
            "min": 1.0,
            "max": 5.0,
        }

    def test_merge_skips_malformed(self):
        reg = MetricsRegistry()
        reg.merge("not a dict")
        reg.merge({"counters": {"c": -5, "ok": 1}, "histograms": {"h": 3}})
        snap = reg.snapshot()
        assert snap["counters"] == {"ok": 1}
        assert snap["histograms"] == {}


# ---------------------------------------------------------------------------
# sink + validators
# ---------------------------------------------------------------------------


class TestSink:
    def test_roundtrip_and_validation(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        obs = Observability(clock=ManualClock(), sink=JsonlSink(path))
        trace_some_work(obs)
        obs.close()
        assert validate_spans_file(path) == 3
        records = read_spans(path)
        assert [r["name"] for r in records] == ["inner", "tick", "outer"]
        assert obs.tracer.sink.dropped == 0
        assert obs.tracer.sink.emitted == 3

    def test_emit_after_close_drops(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "s.jsonl"))
        sink.close()
        sink.emit({"type": "event", "name": "late", "ts": 0, "parent_id": 0})
        assert sink.dropped == 1

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"type": "event", "name": "a", "ts": 0.0, "parent_id": 0})
            sink.emit({"type": "event", "name": "b", "ts": 1.0, "parent_id": 0})
        with open(path, "r+", encoding="utf-8") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 9)  # tear into the final record
        assert validate_spans_file(path) == 1

    def test_interior_damage_rejected(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{garbage\n")
            handle.write(
                '{"type":"event","name":"a","parent_id":0,"ts":0.0}\n'
            )
        with pytest.raises(ObsSchemaError):
            validate_spans_file(path)

    def test_metrics_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        reg = MetricsRegistry()
        reg.counter("pipeline.bugs").inc(7)
        write_metrics(path, reg.snapshot())
        payload = load_metrics(path)
        assert payload["schema"] == "repro-obs-metrics-v1"
        assert payload["counters"]["pipeline.bugs"] == 7

    @pytest.mark.parametrize(
        "record",
        [
            "not an object",
            {"type": "mystery"},
            {"type": "span", "name": "a", "parent_id": -1},
            {
                "type": "span",
                "name": "a",
                "parent_id": 0,
                "span_id": 1,
                "start": 1.0,
                "end": 0.0,
                "duration": -1.0,
            },
            {
                "type": "span",
                "name": "a",
                "parent_id": 0,
                "span_id": 1,
                "start": 0.0,
                "end": 2.0,
                "duration": 1.0,  # disagrees with end - start
            },
            {"type": "event", "name": "a", "parent_id": 0},  # no ts
            {
                "type": "event",
                "name": "a",
                "parent_id": 0,
                "ts": 0.0,
                "attrs": {"bad": [1]},
            },
            {"type": "event", "name": "a", "parent_id": True, "ts": 0.0},
        ],
    )
    def test_validate_record_rejects(self, record):
        with pytest.raises(ObsSchemaError):
            validate_record(record)

    def test_validate_metrics_rejects(self):
        with pytest.raises(ObsSchemaError):
            validate_metrics_snapshot({"schema": "other"})
        with pytest.raises(ObsSchemaError):
            validate_metrics_snapshot({"counters": {"c": -1}})
        with pytest.raises(ObsSchemaError):
            validate_metrics_snapshot({"histograms": {"h": {"count": 1}}})


# ---------------------------------------------------------------------------
# profiling + the disabled facade
# ---------------------------------------------------------------------------


def test_profile_call_returns_result_and_hotspots():
    result, hotspots = profile_call(sum, range(100), top_n=5)
    assert result == 4950
    assert 0 < len(hotspots) <= 5
    table = format_hotspots(hotspots)
    assert "cumulative" in table and "calls" in table


def test_null_obs_is_inert():
    with NULL_OBS.span("a", big=object()) as span:
        span.annotate(x=1)
    NULL_OBS.event("e")
    NULL_OBS.count("c")
    NULL_OBS.gauge("g", 1.0)
    NULL_OBS.observe("h", 1.0)
    assert NULL_OBS.tracer.records == []
    assert NULL_OBS.metrics_snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    # Disabled spans reuse one shared null handle — no per-span allocation.
    assert NULL_OBS.span("a") is NULL_OBS.span("b")
