"""Unit tests for trace-event -> IR-instruction localization."""

import pytest

from repro.core import Locator
from repro.detect import pmemcheck_run
from repro.errors import LocateError
from repro.ir import Store, format_module, parse_module

from conftest import build_listing5_module, drive_main


def test_locate_by_iid(listing5):
    module, detection, _, _ = listing5
    locator = Locator(module)
    store = locator.locate_store(detection.bugs[0].store)
    assert isinstance(store, Store)
    assert store.function.name == "update"


def test_locate_call_sites(listing5):
    module, detection, _, _ = listing5
    locator = Locator(module)
    bug = detection.bugs[0]
    frames = bug.store.caller_frames
    calls = [locator.locate_call_site(f) for f in frames]
    assert [c.callee for c in calls] == ["foo", "modify", "update"]


def test_locate_survives_module_reparse():
    """The paper's real scenario: the trace comes from one build, the
    fixes are applied to a re-parsed module whose instruction ids
    differ — localization falls back to (function, source line)."""
    module = build_listing5_module()
    detection, trace, _ = pmemcheck_run(module, drive_main)
    rebuilt = parse_module(format_module(module))
    locator = Locator(rebuilt)
    store = locator.locate_store(detection.bugs[0].store)
    assert store.function.name == "update"
    assert store.loc == detection.bugs[0].store.loc
    # iid differs but localization still succeeded
    assert store.iid != detection.bugs[0].store.iid


def test_locate_host_frame_returns_none(listing5):
    module, _, trace, _ = listing5
    locator = Locator(module)
    exit_boundary = trace.boundaries()[-1]
    assert locator.locate_call_site(exit_boundary.stack[0]) is None


def test_locate_missing_raises(listing5):
    module, detection, _, _ = listing5
    locator = Locator(module)
    bogus = detection.bugs[0].flush  # None: missing-flush bug has no flush
    assert bogus is None
    from repro.trace import StackFrame
    from repro.ir import DebugLoc

    with pytest.raises(LocateError):
        locator._resolve("nowhere", DebugLoc("x.c", 1), 0, Store)
