"""Unit tests for the YCSB distribution generators."""

import random
from collections import Counter

import pytest

from repro.workloads import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a64,
)


def draws(generator, n=4000):
    return [generator.next() for _ in range(n)]


class TestZipfian:
    def test_in_range(self):
        gen = ZipfianGenerator(100, random.Random(1))
        assert all(0 <= x < 100 for x in draws(gen))

    def test_item_zero_most_popular(self):
        gen = ZipfianGenerator(100, random.Random(2))
        counts = Counter(draws(gen, 8000))
        assert counts[0] == max(counts.values())

    def test_popularity_decreasing_on_average(self):
        gen = ZipfianGenerator(1000, random.Random(3))
        counts = Counter(draws(gen, 20000))
        head = sum(counts[i] for i in range(10))
        tail = sum(counts[i] for i in range(500, 510))
        assert head > 10 * max(1, tail)

    def test_deterministic_given_seed(self):
        a = ZipfianGenerator(50, random.Random(7))
        b = ZipfianGenerator(50, random.Random(7))
        assert draws(a, 100) == draws(b, 100)

    def test_bad_count(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0, random.Random(1))


class TestScrambled:
    def test_in_range_and_spread(self):
        gen = ScrambledZipfianGenerator(100, random.Random(4))
        values = draws(gen, 4000)
        assert all(0 <= x < 100 for x in values)
        counts = Counter(values)
        # scrambling spreads the popular items away from index 0
        top = counts.most_common(1)[0][0]
        assert top == fnv1a64(0) % 100


class TestLatest:
    def test_skews_to_recent(self):
        gen = LatestGenerator(100, random.Random(5))
        values = draws(gen, 4000)
        assert all(0 <= x < 100 for x in values)
        recent = sum(1 for v in values if v >= 90)
        old = sum(1 for v in values if v < 10)
        assert recent > old

    def test_advance_grows_domain(self):
        gen = LatestGenerator(10, random.Random(6))
        assert gen.advance() == 10
        assert gen.max_item == 11
        assert all(0 <= gen.next() < 11 for _ in range(200))


class TestUniform:
    def test_roughly_flat(self):
        gen = UniformGenerator(10, random.Random(8))
        counts = Counter(draws(gen, 10000))
        assert min(counts.values()) > 700
        assert max(counts.values()) < 1300

    def test_bad_count(self):
        with pytest.raises(ValueError):
            UniformGenerator(0, random.Random(1))


def test_fnv1a64_reference_vector():
    # FNV-1a of eight zero bytes
    value = 0xCBF29CE484222325
    for _ in range(8):
        value = (value * 0x100000001B3) & ((1 << 64) - 1)
    assert fnv1a64(0) == value
