"""Transactional fix application: an undo journal for module mutations.

Applying a fix touches the module in several places — inserted flushes
and fences, cloned ``_PM`` functions, retargeted call sites.  If any
step throws (a malformed fix, an injected fault, a verifier rejection),
the module must not be left half-mutated: "do no harm" is a property of
the *pipeline*, not only of the fixes it computes.

:class:`FixTransaction` records enough to undo one fix.  Mutation sites
register undo actions *before* mutating (or register trackers whose
undo diffs state observed later), so a fault at any point mid-fix rolls
back cleanly.  Undo actions run in reverse registration order.

The transaction is also the analysis manager's mutation witness: it
knows whether a fix only inserted flushes/fences (``track_fix``) or
changed program structure (``track_attr`` retargeting, clones via
``track_transformer``), and which functions it touched.  ``commit`` and
``rollback`` forward that to the attached
:class:`~repro.analysis.manager.AnalysisManager` so exactly the right
cached analyses are invalidated — see the invalidation matrix there.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, TYPE_CHECKING

from ..errors import RollbackError
from ..ir.instructions import Instruction
from ..ir.module import Module

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.manager import AnalysisManager
    from ..revalidate.witness import InsertionSpec, StructuralSpec
    from .fixes import Fix
    from .subprogram import SubprogramTransformer


class FixTransaction:
    """An undo journal covering the application of a single fix."""

    def __init__(
        self, module: Module, manager: Optional["AnalysisManager"] = None
    ):
        self.module = module
        self.manager = manager
        #: Functions whose bodies this fix changed (callers add to it).
        self.touched_functions: Set[str] = set()
        #: True once the fix did more than insert flushes/fences.
        self.structural = False
        #: iids of the existing instructions this fix inserted
        #: flushes/fences after — the incremental-revalidation witness.
        self.anchor_iids: Set[int] = set()
        #: full insertion descriptions (one per anchored fix), or None
        #: once an insertion could not be described — incremental
        #: revalidation then degrades from synthesis to replay.
        self.insertions: Optional[List["InsertionSpec"]] = []
        #: structural (hoisted-fix) witnesses, or None once a structural
        #: mutation could not be described — incremental revalidation
        #: then degrades from structural synthesis to a full re-record.
        self.structural_specs: Optional[List["StructuralSpec"]] = []
        self._undo: List[Callable[[], None]] = []
        self._done = False

    def touch(self, function_name: Optional[str]) -> None:
        """Record that the fix modified the named function's body."""
        if function_name:
            self.touched_functions.add(function_name)

    def anchor(self, anchor_iid: int, spec: Optional["InsertionSpec"]) -> None:
        """Witness a flush/fence insertion anchored at ``anchor_iid``.

        ``spec`` describes exactly what was inserted; None marks the
        insertion as present but indescribable (unknown shape)."""
        self.anchor_iids.add(anchor_iid)
        if spec is None:
            self.insertions = None
        elif self.insertions is not None:
            self.insertions.append(spec)

    def anchor_structural(self, spec: Optional["StructuralSpec"]) -> None:
        """Witness a hoisted fix (call retarget onto a clone tree).

        ``spec`` describes the retarget, the clone closure and the
        inserted fence exactly; None marks the structural mutation as
        present but indescribable."""
        if spec is None:
            self.structural_specs = None
        elif self.structural_specs is not None:
            self.structural_specs.append(spec)

    # -- trackers -----------------------------------------------------------

    def track_attr(self, obj: object, name: str) -> None:
        """Snapshot ``obj.name`` now; restore it on rollback.

        Used for call-site retargeting (``call.callee``) — a structural
        mutation, so the module epoch is bumped again when the attribute
        is restored (content changed both times)."""
        saved = getattr(obj, name)
        self.structural = True

        def undo() -> None:
            setattr(obj, name, saved)
            self.module.bump_epoch()

        self._undo.append(undo)

    def track_fix(self, fix: "Fix") -> None:
        """Track ``fix.inserted`` growth: on rollback, every instruction
        appended after this point is detached from its block and dropped
        from the list (the fix can then be re-applied)."""
        mark = len(fix.inserted)

        def undo() -> None:
            for instr in reversed(fix.inserted[mark:]):
                self._detach(instr)
            del fix.inserted[mark:]

        self._undo.append(undo)

    def track_transformer(self, transformer: "SubprogramTransformer") -> None:
        """Track a subprogram transformer's growth: clones created and
        instructions inserted after this point are removed on rollback,
        and the clone-reuse cache is restored so a later fix re-creates
        (rather than silently reusing) a rolled-back clone."""
        created_mark = len(transformer.created)
        inserted_mark = len(transformer.inserted)
        clones_before = dict(transformer.clones)
        meta_before = dict(transformer.clone_meta)
        self.structural = True

        def undo() -> None:
            for name in transformer.created[created_mark:]:
                self.module.remove_function(name)
            for instr in reversed(transformer.inserted[inserted_mark:]):
                self._detach(instr)
            del transformer.created[created_mark:]
            del transformer.inserted[inserted_mark:]
            transformer.clones.clear()
            transformer.clones.update(clones_before)
            transformer.clone_meta.clear()
            transformer.clone_meta.update(meta_before)

        self._undo.append(undo)

    @staticmethod
    def _detach(instr: Instruction) -> None:
        block = instr.parent
        if block is not None:
            block.remove(instr)

    # -- outcome ------------------------------------------------------------

    def commit(self) -> None:
        """Discard the journal; the fix is permanent.

        Notifies the attached analysis manager: flush/fence-only fixes
        preserve the whole-program analyses, structural fixes drop the
        points-to solution and call graph."""
        self._undo.clear()
        self._done = True
        if self.manager is not None:
            self.manager.mutation_committed(
                touched_functions=self.touched_functions,
                structural=self.structural,
            )

    def rollback(self) -> None:
        """Undo every recorded mutation, most recent first.

        A failing undo action does not stop the rollback: the remaining
        actions still run (restoring as much state as possible), then a
        :class:`~repro.errors.RollbackError` is raised describing every
        undo that failed.  Callers unwinding from an original failure
        must chain it (``raise rollback_error from original``) so the
        root cause is never masked by the double failure.
        """
        if self._done:
            return
        failures: List[BaseException] = []
        while self._undo:
            undo = self._undo.pop()
            try:
                undo()
            except Exception as exc:
                failures.append(exc)
        self._done = True
        if self.manager is not None:
            # A clean rollback restored the exact prior content, so all
            # cached analyses are still valid; a failed one leaves the
            # module in an unknown state and everything must recompute.
            self.manager.mutation_rolled_back(clean=not failures)
        if failures:
            detail = "; ".join(f"{type(e).__name__}: {e}" for e in failures)
            error = RollbackError(
                f"rollback failed ({len(failures)} undo action(s) raised): {detail}"
            )
            error.__context__ = failures[0]
            raise error
