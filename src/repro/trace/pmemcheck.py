"""pmemcheck-style text serialization of PM traces.

Real pmemcheck emits a textual log of PM operations; Hippocrates's
front-end (Step 1 in Fig. 2) parses it.  We reproduce that interface:
:func:`dump_trace` renders a :class:`~repro.trace.trace.PMTrace` to a
semicolon-separated text log and :func:`load_trace` parses it back,
losslessly.  The Hippocrates orchestrator accepts either the in-memory
trace or the text form, exercising the same parsing path the paper
describes (their Redis traces were over 350 MB of this kind of output).

Line format (one event per line)::

    STORE;<seq>;<addr-hex>;<size>;<space>;<stack>
    FLUSH;<seq>;<addr-hex>;<line-hex>;<kind>;<had_work>;<stack>
    FENCE;<seq>;<kind>;<stack>
    BOUNDARY;<seq>;<label>;<stack>

where ``<stack>`` is ``fn@file:line#iid`` frames joined by ``|``
(outermost first; the final frame is the event's own instruction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import TraceError
from .events import (
    BoundaryEvent,
    CallStack,
    FenceEvent,
    FlushEvent,
    StackFrame,
    StoreEvent,
    TraceEvent,
)
from .trace import PMTrace

_HEADER = "# pmemcheck-compatible PM operation trace (repro format v1)"


#: default cap on individual :class:`TraceWarning` records per load; a
#: badly torn multi-megabyte log must not balloon the report (the
#: paper's Redis traces exceed 350 MB — a corrupt one could otherwise
#: produce millions of warning objects).  Excess lines are counted and
#: summarized in one final record.
MAX_TRACE_WARNINGS = 50


@dataclass(frozen=True)
class TraceWarning:
    """One malformed record skipped during lenient trace ingestion.

    Crash-truncated logs are routine for crashing PM systems; lenient
    mode records what was dropped instead of aborting the whole repair.
    ``source`` is the originating filename (when known), so warnings
    from a multi-file batch stay attributable; ``suppressed`` > 0 marks
    the cap summary record ("N more suppressed") rather than a single
    malformed line.
    """

    line: int  # 1-based line number in the text log (0 for summaries)
    message: str  # why the record was rejected
    text: str  # the offending line (truncated for display)
    source: str = ""  # originating file, "" when the text came inline
    suppressed: int = 0  # cap summary: how many warnings it stands for

    def __str__(self) -> str:
        where = f"{self.source}: " if self.source else ""
        if self.suppressed:
            return f"{where}{self.message}"
        shown = self.text if len(self.text) <= 80 else self.text[:77] + "..."
        return f"{where}line {self.line}: {self.message} ({shown!r})"


def _format_stack(stack: CallStack) -> str:
    return "|".join(str(frame) for frame in stack)


def _parse_stack(text: str) -> CallStack:
    if not text:
        return ()
    return tuple(StackFrame.parse(piece) for piece in text.split("|"))


def dump_event(event: TraceEvent) -> str:
    """Render one event as a text line."""
    stack = _format_stack(event.stack)
    if isinstance(event, StoreEvent):
        space = f"{event.space}.nt" if event.nontemporal else event.space
        return f"STORE;{event.seq};{event.addr:#x};{event.size};{space};{stack}"
    if isinstance(event, FlushEvent):
        return (
            f"FLUSH;{event.seq};{event.addr:#x};{event.line_addr:#x};"
            f"{event.flush_kind};{int(event.had_work)};{stack}"
        )
    if isinstance(event, FenceEvent):
        return f"FENCE;{event.seq};{event.fence_kind};{stack}"
    if isinstance(event, BoundaryEvent):
        return f"BOUNDARY;{event.seq};{event.label};{stack}"
    raise TraceError(f"cannot serialize event {event!r}")


def _own_fields(seq: str, stack: CallStack) -> dict:
    if not stack:
        raise TraceError("event with empty stack")
    own = stack[-1]
    return {
        "seq": int(seq),
        "iid": own.iid,
        "loc": own.loc,
        "function": own.function,
        "stack": stack,
    }


def parse_event(line: str) -> TraceEvent:
    """Parse one text line back into an event."""
    parts = line.rstrip("\n").split(";")
    tag = parts[0]
    try:
        if tag == "STORE":
            _, seq, addr, size, space, stack_text = parts
            nontemporal = space.endswith(".nt")
            return StoreEvent(
                addr=int(addr, 16),
                size=int(size),
                space=space.removesuffix(".nt"),
                nontemporal=nontemporal,
                **_own_fields(seq, _parse_stack(stack_text)),
            )
        if tag == "FLUSH":
            _, seq, addr, line_addr, kind, had_work, stack_text = parts
            return FlushEvent(
                addr=int(addr, 16),
                line_addr=int(line_addr, 16),
                flush_kind=kind,
                had_work=bool(int(had_work)),
                **_own_fields(seq, _parse_stack(stack_text)),
            )
        if tag == "FENCE":
            _, seq, kind, stack_text = parts
            return FenceEvent(
                fence_kind=kind, **_own_fields(seq, _parse_stack(stack_text))
            )
        if tag == "BOUNDARY":
            _, seq, label, stack_text = parts
            return BoundaryEvent(
                label=label, **_own_fields(seq, _parse_stack(stack_text))
            )
    except (ValueError, TraceError) as exc:
        raise TraceError(f"malformed trace line {line!r}: {exc}") from exc
    raise TraceError(f"unknown trace record {tag!r}")


def dump_trace(trace: PMTrace) -> str:
    """Serialize a whole trace to text."""
    lines: List[str] = [_HEADER]
    lines.extend(dump_event(event) for event in trace)
    return "\n".join(lines) + "\n"


def load_trace(
    text: str,
    strict: bool = True,
    warnings: Optional[List[TraceWarning]] = None,
    source: str = "",
    max_warnings: int = MAX_TRACE_WARNINGS,
) -> PMTrace:
    """Parse a text log back into a :class:`PMTrace`.

    In strict mode (the default) a malformed record raises
    :class:`TraceError` carrying the 1-based line number.  With
    ``strict=False`` — for the crash-truncated-log case — malformed
    records are skipped and a :class:`TraceWarning` per dropped line is
    appended to ``warnings`` (when provided); the surviving events
    still form a usable trace, so every bug whose records survived can
    be repaired.

    Warning accumulation is bounded: after ``max_warnings`` individual
    records (<= 0 = unbounded), further malformed lines are only
    counted, and one final summary record ("N more suppressed") closes
    the list.  ``source`` stamps every warning with the originating
    filename for batch-log attribution.
    """
    events: List[TraceEvent] = []
    suppressed = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            events.append(parse_event(line))
        except TraceError as exc:
            if strict:
                raise TraceError(str(exc), line=line_no) from exc
            if warnings is None:
                continue
            if max_warnings > 0 and len(warnings) >= max_warnings:
                suppressed += 1
                continue
            warnings.append(
                TraceWarning(
                    line=line_no, message=str(exc), text=line, source=source
                )
            )
    if suppressed and warnings is not None:
        warnings.append(
            TraceWarning(
                line=0,
                message=f"{suppressed} more malformed record(s) suppressed "
                f"(cap {max_warnings})",
                text="",
                source=source,
                suppressed=suppressed,
            )
        )
    return PMTrace(events)
