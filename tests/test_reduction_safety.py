"""Fence-coalescing safety: boundary-set grouping and positional demotion.

Regression coverage for two bugs in ``_coalesce_fences``:

1. Grouping used ``fix.bugs[0].boundary.iid`` — a single representative
   bug — so a merged fix discharging bugs with boundaries ``{X, Y}``
   could coalesce with an ``{X}``-only neighbour and lose the fence
   that ordered its flush before ``Y``.  Grouping now uses the frozen
   set of *all* boundary iids.
2. Demotion located group members with ``result.index(fix)``, which
   uses dataclass value equality and can pick a different-but-equal
   entry; members are now tracked by enumerated position.
"""

from __future__ import annotations

import random

from repro.core import InsertFlush, InsertFlushAndFence, reduce_fixes
from repro.core.reduction import _coalesce_fences
from repro.detect import BugKind
from repro.detect.reports import BugReport
from repro.ir import I64, ModuleBuilder, PTR, SYNTHETIC
from repro.ir.instructions import Store
from repro.trace.events import BoundaryEvent, StoreEvent


def make_stores(names_and_counts):
    """Build one function per (name, count); return {name: [Store, ...]}.

    Each function is its own basic block, so stores from different
    names live in different blocks — which is what coalescing keys on.
    """
    mb = ModuleBuilder("t")
    out = {}
    for name, count in names_and_counts:
        b = mb.function(name, [], I64)
        p = b.call("pm_alloc", [64 * (count + 1)], PTR)
        for i in range(count):
            b.store(i + 1, b.gep(p, 64 * i))
        b.ret(0)
        block = mb.module.functions[name].entry
        out[name] = [ins for ins in block.instructions if isinstance(ins, Store)]
        assert len(out[name]) == count
    return out


_seq = iter(range(10_000, 20_000))


def make_bug(store, boundary_iid):
    """A MISSING_FLUSH_FENCE report tying ``store`` to one boundary."""
    sev = StoreEvent(
        seq=next(_seq), iid=store.iid, loc=SYNTHETIC, function="t", stack=()
    )
    bev = BoundaryEvent(
        seq=next(_seq),
        iid=boundary_iid,
        loc=SYNTHETIC,
        function="t",
        stack=(),
        label="exit",
    )
    return BugReport(kind=BugKind.MISSING_FLUSH_FENCE, store=sev, boundary=bev)


def fnf(store, boundary_iids):
    """An InsertFlushAndFence with one bug per boundary iid."""
    return InsertFlushAndFence(
        bugs=[make_bug(store, iid) for iid in boundary_iids],
        inserted=[],
        store=store,
    )


def boundary_iids(fix):
    return {bug.boundary.iid for bug in fix.bugs}


class TestBoundarySetGrouping:
    def test_multi_boundary_fix_keeps_its_fence(self):
        # The old code grouped by bugs[0].boundary.iid alone: the merged
        # {100, 200} fix shared representative boundary 100 with the
        # later single-boundary fix and was demoted to a plain flush,
        # leaving no fence ordering its flush before boundary 200.
        stores = make_stores([("f", 2)])["f"]
        merged = fnf(stores[0], [100, 200])
        single = fnf(stores[1], [100])
        reduced = reduce_fixes([merged, single])
        assert all(isinstance(f, InsertFlushAndFence) for f in reduced)
        assert len(reduced) == 2

    def test_matching_boundary_sets_still_coalesce(self):
        stores = make_stores([("f", 3)])["f"]
        fixes = [fnf(s, [100, 200]) for s in stores]
        reduced = reduce_fixes(fixes)
        fenced = [f for f in reduced if isinstance(f, InsertFlushAndFence)]
        demoted = [f for f in reduced if isinstance(f, InsertFlush)]
        assert len(fenced) == 1 and len(demoted) == 2
        # The surviving fence sits at the last store in the block.
        assert fenced[0].store is stores[-1]

    def test_subset_boundary_sets_do_not_coalesce(self):
        # {100} is a strict subset of {100, 200}; only exact matches
        # may share a fence.
        stores = make_stores([("f", 2)])["f"]
        reduced = reduce_fixes([fnf(stores[0], [100]), fnf(stores[1], [100, 200])])
        assert all(isinstance(f, InsertFlushAndFence) for f in reduced)

    def test_blocks_never_share_a_fence(self):
        both = make_stores([("f", 1), ("g", 1)])
        reduced = reduce_fixes(
            [fnf(both["f"][0], [100]), fnf(both["g"][0], [100])]
        )
        assert all(isinstance(f, InsertFlushAndFence) for f in reduced)


class TestPositionalDemotion:
    def test_equal_by_value_fixes_demote_by_position(self):
        # Two fixes that compare equal (same store, equal bug lists).
        # ``result.index(fix)`` cannot tell them apart; positional
        # tracking must demote exactly the first entry and keep the
        # second — the very objects, not lookalikes.
        stores = make_stores([("f", 1)])["f"]
        bug = make_bug(stores[0], 100)
        first = InsertFlushAndFence(bugs=[bug], inserted=[], store=stores[0])
        second = InsertFlushAndFence(bugs=[bug], inserted=[], store=stores[0])
        assert first == second and first is not second
        result = _coalesce_fences([first, second])
        assert isinstance(result[0], InsertFlush)
        assert result[1] is second

    def test_demoted_fix_carries_bugs_and_flush_kind(self):
        stores = make_stores([("f", 2)])["f"]
        early = fnf(stores[0], [100])
        late = fnf(stores[1], [100])
        result = _coalesce_fences([late, early])  # list order != block order
        demoted = [f for f in result if isinstance(f, InsertFlush)]
        assert len(demoted) == 1
        assert demoted[0].store is early.store
        assert demoted[0].bugs == early.bugs
        assert demoted[0].flush_kind == early.flush_kind


class TestCoalescingInvariant:
    def test_randomized_plans_never_strand_a_boundary(self):
        # Property: after reduction, every bug is carried by some fix,
        # and if that fix lost its fence there must be a fence-bearing
        # fix in the same block, at or after the demoted store, whose
        # bugs need the same boundary ordered.
        rng = random.Random(1337)
        for _ in range(25):
            shape = [(f"f{i}", rng.randint(1, 4)) for i in range(rng.randint(1, 3))]
            blocks = make_stores(shape)
            fixes = []
            for stores in blocks.values():
                for store in stores:
                    iids = rng.sample([100, 200, 300], rng.randint(1, 2))
                    fixes.append(fnf(store, iids))
                    if rng.random() < 0.3:  # duplicate → exercises _dedupe
                        fixes.append(fnf(store, [rng.choice([100, 200, 300])]))
            rng.shuffle(fixes)
            all_bugs = [bug for fix in fixes for bug in fix.bugs]

            reduced = reduce_fixes(fixes)

            carried = [bug for fix in reduced for bug in fix.bugs]
            assert sorted(id(b) for b in carried) == sorted(
                id(b) for b in all_bugs
            )
            for fix in reduced:
                if not isinstance(fix, InsertFlush):
                    continue
                block = fix.store.parent
                pos = block.index_of(fix.store)
                for bug in fix.bugs:
                    assert any(
                        isinstance(other, InsertFlushAndFence)
                        and other.store.parent is block
                        and block.index_of(other.store) >= pos
                        and bug.boundary.iid in boundary_iids(other)
                        for other in reduced
                    ), "demoted flush left a boundary with no ordering fence"
