"""Integration tests over the 23-bug corpus (the §6.1 result).

These are the heart of the effectiveness claim: every case's bugs are
found by the detector, fixed by Hippocrates, and the fixed module is
revalidated clean — plus the Fig. 3 accuracy split is checked exactly.
"""

import pytest

from repro.bench import run_case
from repro.corpus import (
    EQUIVALENT_PORTABLE,
    IDENTICAL,
    all_cases,
    compare_fix_kinds,
    memcached_case,
    pclht_case,
    pmdk_cases,
    total_expected_bugs,
)
from repro.corpus.bugs import (
    INTERPROC_FLUSH,
    INTERPROC_FLUSH_FENCE,
    INTRAPROC_FLUSH,
    classify_fix,
)
from repro.core.fixes import HoistedFix, InsertFlush


def test_case_inventory():
    cases = all_cases()
    assert len(cases) == 13  # 11 PMDK + P-CLHT + memcached-pm
    assert total_expected_bugs() == 23
    assert sum(c.expected_reports for c in pmdk_cases()) >= 11
    assert pclht_case().expected_reports == 2
    assert memcached_case().expected_reports == 10


@pytest.mark.parametrize("case", all_cases(), ids=lambda c: c.case_id)
def test_detect_fix_revalidate(case):
    outcome = run_case(case)
    assert outcome.reports_found == case.expected_reports, (
        f"{case.case_id}: found {outcome.reports_found}"
    )
    assert outcome.reports_after_fix == 0, f"{case.case_id} not fully fixed"
    assert outcome.fixed


@pytest.mark.parametrize("case", pmdk_cases(), ids=lambda c: c.case_id)
def test_fig3_fix_kind_matches_expectation(case):
    outcome = run_case(case)
    assert case.expected_hippocrates_fix in outcome.fix_kinds


def test_fig3_split_is_8_identical_3_equivalent():
    identical = equivalent = 0
    for case in pmdk_cases():
        outcome = run_case(case)
        if outcome.comparison == IDENTICAL:
            identical += 1
        elif outcome.comparison == EQUIVALENT_PORTABLE:
            equivalent += 1
    assert identical == 8
    assert equivalent == 3


def test_compare_fix_kinds_vocabulary():
    assert compare_fix_kinds(INTERPROC_FLUSH_FENCE, INTERPROC_FLUSH_FENCE) == IDENTICAL
    assert (
        compare_fix_kinds(INTRAPROC_FLUSH, INTERPROC_FLUSH) == EQUIVALENT_PORTABLE
    )
    assert "different" in compare_fix_kinds(INTRAPROC_FLUSH, INTERPROC_FLUSH_FENCE)


def test_classify_fix_rejects_unknown():
    with pytest.raises(ValueError):
        classify_fix(object())


def test_intraproc_cases_use_plain_flush():
    """452/940/943: the paper's 3 'equivalent but dev more portable'."""
    for issue in (452, 940, 943):
        case = [c for c in pmdk_cases() if c.case_id == f"PMDK-{issue}"][0]
        outcome = run_case(case)
        assert outcome.fix_kinds == [INTRAPROC_FLUSH]


def test_heuristic_off_still_fixes_everything():
    for case in all_cases():
        outcome = run_case(case, heuristic="off")
        assert outcome.reports_after_fix == 0
        assert outcome.fix_report.interprocedural_count == 0
