"""Unit tests for the Fig. 1 bug-study dataset."""

from repro.corpus import (
    API_MISUSE,
    CORE_LIBRARY,
    REPRODUCED_ISSUES,
    STUDY,
    fig1_table,
    group_stats,
    overall_stats,
    records_with_stats,
)


def test_twenty_six_bugs():
    assert len(STUDY) == 26


def test_category_split():
    core = [r for r in STUDY if r.category == CORE_LIBRARY]
    misuse = [r for r in STUDY if r.category == API_MISUSE]
    assert len(core) == 17
    assert len(misuse) == 9


def test_core_group_aggregates_match_paper():
    stats = group_stats(CORE_LIBRARY)
    assert stats == {"count": 14, "avg_commits": 17, "avg_days": 33, "max_days": 66}


def test_misuse_group_aggregates_match_paper():
    stats = group_stats(API_MISUSE)
    assert stats == {"count": 5, "avg_commits": 2, "avg_days": 15, "max_days": 38}


def test_overall_row_matches_paper():
    stats = overall_stats()
    assert stats["avg_commits"] == 13
    assert stats["avg_days"] == 28
    assert stats["max_days"] == 66


def test_eleven_reproduced():
    assert len(REPRODUCED_ISSUES) == 11
    reproduced = [r for r in STUDY if r.reproduced]
    assert len(reproduced) == 11


def test_stats_only_where_recorded():
    for record in STUDY:
        assert (record.commits is None) == (record.days is None)
    assert len(records_with_stats()) == 19


def test_issue_numbers_unique():
    issues = [r.issue for r in STUDY]
    assert len(set(issues)) == len(issues)


def test_fig1_table_renders():
    table = fig1_table()
    for fragment in ("Fig. 1", "17", "33", "66", "Average", "13", "28"):
        assert fragment in table
