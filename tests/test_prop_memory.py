"""Property-based tests of the PM durability state machine.

Invariants checked over random store/flush/fence sequences:

1. The cache view always reads the latest store (loads never observe
   stale data, regardless of flush state).
2. The durable view changes only through write-backs; an adversarial
   crash equals the durable view exactly.
3. After flush+fence of every touched line, the two views agree.
4. The detector's pending-store accounting matches the cache model's.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.memory import AddressSpace, CacheModel, PersistentImage, line_of

N_SLOTS = 4

op = st.tuples(
    st.sampled_from(["store", "clwb", "clflush", "fence"]),
    st.integers(min_value=0, max_value=N_SLOTS - 1),
    st.integers(min_value=1, max_value=(1 << 64) - 1),
)


def replay(ops):
    space = AddressSpace()
    image = PersistentImage(space)
    cache = CacheModel(space, image)
    base = space.alloc_pm(64 * N_SLOTS, align=64)
    slots = [base + 64 * i for i in range(N_SLOTS)]
    latest = {}
    seq = 0
    for kind, index, value in ops:
        addr = slots[index]
        if kind == "store":
            seq += 1
            space.write_int(addr, 8, value)
            cache.on_store(addr, 8, seq)
            latest[addr] = value & ((1 << 64) - 1)
        elif kind in ("clwb", "clflush"):
            cache.on_flush(addr, kind)
        else:
            cache.on_fence("sfence")
    return space, image, cache, slots, latest


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(op, max_size=24))
def test_cache_view_reads_latest_store(ops):
    space, image, cache, slots, latest = replay(ops)
    for addr, value in latest.items():
        assert space.read_int(addr, 8) == value


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(op, max_size=24))
def test_adversarial_crash_equals_durable_view(ops):
    space, image, cache, slots, latest = replay(ops)
    assert image.crash() == image.snapshot_durable()


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(op, max_size=24))
def test_flush_fence_everything_syncs_views(ops):
    space, image, cache, slots, latest = replay(ops)
    for addr in slots:
        cache.on_flush(addr, "clwb")
    cache.on_fence("sfence")
    assert image.line_divergence() == []
    for addr, value in latest.items():
        assert int.from_bytes(image.durable_bytes(addr, 8), "little") == value


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(op, max_size=24))
def test_pending_iff_diverged(ops):
    """A line is pending in the cache model iff its views diverge...
    except lines written back by eviction-free luck (none here) — so
    pending ⊇ diverged always holds, and after draining, both empty."""
    space, image, cache, slots, latest = replay(ops)
    diverged = set(image.line_divergence())
    pending = set(cache.pending_lines())
    assert diverged <= pending


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(op, max_size=24))
def test_crash_state_count_bounded(ops):
    from repro.memory import CrashExplorer

    space, image, cache, slots, latest = replay(ops)
    explorer = CrashExplorer(cache, image)
    pending = explorer.pending_lines()
    states = list(explorer.states(max_states=64))
    assert len(states) <= min(64, 2 ** len(pending))
    seen = {s.surviving_lines for s in states}
    assert () in seen
