"""Phase 2: fix reduction — merging redundant flush and fence fixes.

Two reductions, both direct from the paper's §4.3:

1. *Duplicate elimination*: two fixes that flush the same store (or
   fence the same flush) merge into one, since one ``F(X)`` already
   satisfies ``X -> F(X) -> M -> I`` for every bug involved.
2. *Fence coalescing*: flush&fence fixes anchored to stores in the same
   basic block whose bugs share the same durability boundary keep one
   fence — after the last flush — because a single ``M`` with
   ``F(X1) -> M`` and ``F(X2) -> M`` orders both.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.basicblock import BasicBlock
from .fixes import (
    Fix,
    HoistedFix,
    InsertFenceAfterFlush,
    InsertFenceAfterStore,
    InsertFlush,
    InsertFlushAndFence,
)


def _dedupe(fixes: List[Fix]) -> List[Fix]:
    """Merge fixes that target the same anchor instruction."""
    merged: Dict[Tuple[str, int], Fix] = {}
    order: List[Tuple[str, int]] = []
    for fix in fixes:
        if isinstance(fix, InsertFlush):
            key = ("flush", fix.store.iid)
        elif isinstance(fix, InsertFlushAndFence):
            key = ("flush+fence", fix.store.iid)
        elif isinstance(fix, InsertFenceAfterFlush):
            key = ("fence", fix.flush.iid)
        elif isinstance(fix, InsertFenceAfterStore):
            key = ("fence-nt", fix.store.iid)
        else:
            key = ("other", id(fix))
        existing = merged.get(key)
        if existing is None:
            merged[key] = fix
            order.append(key)
        else:
            existing.bugs.extend(fix.bugs)
    # A flush+fence at a store subsumes a plain flush at the same store.
    for key in list(merged):
        kind, iid = key
        if kind == "flush" and ("flush+fence", iid) in merged:
            merged[("flush+fence", iid)].bugs.extend(merged[key].bugs)
            del merged[key]
            order.remove(key)
    return [merged[key] for key in order]


def _coalesce_fences(fixes: List[Fix]) -> List[Fix]:
    """Keep one fence per (block, boundary) group of flush&fence fixes."""
    groups: Dict[Tuple[int, int], List[InsertFlushAndFence]] = {}
    for fix in fixes:
        if not isinstance(fix, InsertFlushAndFence):
            continue
        block = fix.store.parent
        boundary_iid = fix.bugs[0].boundary.iid if fix.bugs else -1
        groups.setdefault((id(block), boundary_iid), []).append(fix)

    result: List[Fix] = list(fixes)
    for group in groups.values():
        if len(group) < 2:
            continue
        block: BasicBlock = group[0].store.parent  # type: ignore[assignment]
        # The fix whose store appears last in the block keeps its fence;
        # the rest become flush-only fixes.
        group.sort(key=lambda f: block.index_of(f.store))
        for fix in group[:-1]:
            index = result.index(fix)
            result[index] = InsertFlush(
                bugs=fix.bugs, store=fix.store, flush_kind=fix.flush_kind
            )
    return result


def reduce_fixes(fixes: List[Fix]) -> List[Fix]:
    """Apply both reductions; hoisted fixes pass through untouched."""
    plain = [f for f in fixes if not isinstance(f, HoistedFix)]
    hoisted = [f for f in fixes if isinstance(f, HoistedFix)]
    reduced = _coalesce_fences(_dedupe(plain))
    return reduced + hoisted
