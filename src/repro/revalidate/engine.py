"""The incremental revalidation engine.

Post-fix revalidation re-runs the workload and re-checks the trace.
This engine makes the common case — flush/fence-only fixes, which is
what Hippocrates inserts for every intraprocedural repair — incremental:

1. **Record** (:meth:`IncrementalRevalidator.record`): the initial
   detection run executes under a
   :class:`~repro.revalidate.recording.RunRecorder`, memoizing machine
   snapshots and executed-iid sets per top-level call, and the checker
   pass builds the chain dependency index plus
   :class:`~repro.detect.durability.CheckerState` forks at every
   snapshot boundary.
2. **Witness** (:meth:`note_commit`): after each committed fix, the
   :class:`~repro.core.transaction.FixTransaction` reports the *anchor*
   iids — the existing instructions the fix inserted flushes/fences
   after — and whether the fix was structural.  Anchors accumulate
   across fix rounds against the same recording.
3. **Revalidate** (:meth:`revalidate`): flush/fence insertions change
   no control flow and no data, so the fixed module's trace is a pure
   function of the baseline trace.  With a complete witness
   (:class:`~repro.revalidate.witness.InsertionSpec` per fix) the
   engine *synthesizes* that trace — no execution at all — and
   re-checks from the last memoized checker fork before the first
   changed event.  With only anchor iids (no insertion specs) it
   *replays* the interpreter from the last snapshot at or before the
   first anchor-affected segment and feeds the replayed suffix through
   the forked checker state.  Either way report ids, occurrence
   counts, and orderings continue exactly as a full pass would —
   byte-identical results.

Fallback rules (all full re-records, counted in
``revalidate.fallbacks``):

- a structural fix committed (clone/retarget: execution may diverge
  anywhere) — also enforced by the analysis manager dropping the
  ``revalidation_index`` entry on structural commits;
- an anchor iid is not in the recorded module (the fix anchors at an
  instruction inserted *after* recording, e.g. a round-2 fix anchored
  on a round-1 flush);
- the module changed but no anchors were witnessed;
- the driver diverges during replay, or replay raises at all.

If the module fingerprint is unchanged — or every anchor sits in dead
code the recording never executed — the baseline detection is returned
as-is (``revalidate.noop_hits``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Set, Tuple

from ..detect import Driver
from ..detect.durability import ChainIndex, DurabilityChecker
from ..detect.reports import DetectionResult
from ..interp import ENGINES, get_default_engine, make_interpreter
from ..interp.costs import CostModel
from ..interp.interpreter import Interpreter, Machine
from ..ir.module import Module
from ..trace.trace import PMTrace
from .recording import RecordedRun, RecordingTraceRecorder, RunRecorder
from .replay import ReplayDivergence, replay_class
from .synthesize import synthesize_fixed_trace
from .witness import InsertionSpec


@dataclass
class RevalidationOutcome:
    """One revalidation's result plus how it was obtained.

    ``mode`` is volatile diagnostics (tests assert on it; reports must
    not journal it):

    - ``"baseline"`` — module unchanged (or only dead code changed);
      the recorded detection was returned without any execution.
    - ``"synthesized"`` — the post-fix trace was synthesized from the
      baseline trace and the mutation witness (no execution at all);
      only the suffix from the last memoized checker fork re-checked.
    - ``"incremental"`` — replayed from a snapshot, suffix re-checked.
    - ``"full"`` — fell back to (or started with) a full re-record.
    """

    mode: str
    detection: DetectionResult
    trace: PMTrace
    #: segment index replay started from (incremental mode)
    replayed_from: Optional[int] = None
    segments_total: int = 0
    segments_replayed: int = 0
    #: chain (cache line) addresses the incremental pass re-checked
    rechecked_chains: Set[int] = field(default_factory=set)
    #: why a fallback was taken (diagnostics)
    fallback_reason: str = ""

    @property
    def chains_rechecked(self) -> int:
        return len(self.rechecked_chains)

    def as_stats(self) -> dict:
        """Volatile summary (never part of canonical records)."""
        return {
            "mode": self.mode,
            "replayed_from": self.replayed_from,
            "segments_total": self.segments_total,
            "segments_replayed": self.segments_replayed,
            "chains_rechecked": self.chains_rechecked,
            "fallback_reason": self.fallback_reason,
        }


class IncrementalRevalidator:
    """Records one workload execution and revalidates fixes against it.

    :param driver: the workload driver (same contract as
        :func:`~repro.detect.pmemcheck_run`).
    :param cost_model:, :param fuel: interpreter configuration, applied
        identically to recording, replay, and fallback runs.
    :param max_snapshots: snapshot memory bound (see
        :class:`~repro.revalidate.recording.RunRecorder`).
    :param metrics: optional
        :class:`~repro.obs.metrics.MetricsRegistry`; receives the
        ``revalidate.*`` counters and the interpreters' totals.
    :param engine: execution engine kind, applied identically to
        recording, replay, and fallback runs (default: the process-wide
        default engine).  Both engines yield byte-identical recordings.
    """

    def __init__(
        self,
        driver: Driver,
        *,
        cost_model: Optional[CostModel] = None,
        fuel: int = 50_000_000,
        max_snapshots: int = 32,
        metrics=None,
        engine: Optional[str] = None,
    ):
        self.driver = driver
        self.cost_model = cost_model
        self.fuel = fuel
        self.max_snapshots = max_snapshots
        self.metrics = metrics
        self.engine = engine or get_default_engine()
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} (choose from {ENGINES})"
            )
        self.baseline: Optional[RecordedRun] = None
        self.last_outcome: Optional[RevalidationOutcome] = None
        #: anchor iids committed since the current recording
        self._pending_anchors: Set[int] = set()
        self._pending_structural = False
        #: insertion specs for every committed fix, in commit order;
        #: None once any commit lacked one (synthesis then ineligible,
        #: snapshot replay still available)
        self._pending_specs: Optional[list] = []
        #: set when the analysis manager recomputed the baseline via
        #: :meth:`rebuild_baseline` (a full re-record); the next
        #: revalidation reports mode ``"full"`` even though the fresh
        #: baseline's fingerprint now matches the module.
        self._manager_rebuild = False

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    # -- recording ------------------------------------------------------------

    def record(
        self, module: Module
    ) -> Tuple[DetectionResult, PMTrace, Interpreter]:
        """Execute the workload under recording; install the baseline.

        Drop-in replacement for the detection-phase
        :func:`~repro.detect.pmemcheck_run` — same return triple, same
        detection semantics — plus the side effect of memoizing the
        recording this engine revalidates against.
        """
        if self.baseline is not None:
            # Re-recording *is* the full-revalidation fallback path.
            self._count("revalidate.fallbacks")
        self._count("revalidate.records")
        recorder = RunRecorder(max_snapshots=self.max_snapshots)
        # A recording machine keeps the volatile-op side channel (for
        # trace synthesis); its trace stays byte-identical to a plain
        # machine's.
        machine = Machine()
        trace_recorder = RecordingTraceRecorder(
            lambda: machine._stack_provider()
        )
        machine.recorder = trace_recorder
        interp = make_interpreter(
            module,
            engine=self.engine,
            machine=machine,
            cost_model=self.cost_model,
            fuel=self.fuel,
            metrics=self.metrics,
            run_recorder=recorder,
        )
        trace_recorder.current_iid = interp.current_iid
        self.driver(interp)
        trace = interp.finish()

        # One checker pass over the full trace, forking the state at
        # every snapshot-bearing segment boundary and collecting the
        # chain dependency index.
        chain_index = ChainIndex()
        checker = DurabilityChecker(collector=chain_index)
        state = checker.new_state()
        forks = {}
        position = 0
        events = trace.events
        for segment in recorder.segments:
            if segment.snapshot is None:
                continue
            while position < segment.trace_start:
                checker.feed(state, events[position])
                position += 1
            forks[segment.index] = state.fork()
        while position < len(events):
            checker.feed(state, events[position])
            position += 1
        detection = checker.finalize(state)

        self.baseline = RecordedRun(
            module_fingerprint=module.fingerprint(),
            module_iids=frozenset(
                instr.iid for instr in module.instructions()
            ),
            segments=recorder.segments,
            trace=trace,
            detection=detection,
            chain_index=chain_index,
            forks=forks,
            fuel=self.fuel,
            vol_ops=tuple(trace_recorder.vol_ops),
        )
        self._pending_anchors.clear()
        self._pending_structural = False
        self._pending_specs = []
        return detection, trace, interp

    def rebuild_baseline(self, module: Module) -> RecordedRun:
        """Re-record and return the fresh baseline (the analysis
        manager's compute hook for the ``revalidation_index`` key)."""
        self.record(module)
        self._manager_rebuild = True
        assert self.baseline is not None
        return self.baseline

    # -- the mutation witness -------------------------------------------------

    def note_commit(
        self,
        anchor_iids: Iterable[int],
        structural: bool,
        insertions: Optional[Iterable[InsertionSpec]] = None,
    ) -> None:
        """A fix transaction committed against the module.

        ``insertions`` carries the full mutation witness (what was
        inserted after each anchor); without it the synthesis tier is
        unavailable and revalidation uses snapshot replay instead.
        """
        self._pending_anchors.update(anchor_iids)
        if structural:
            self._pending_structural = True
        if insertions is None:
            self._pending_specs = None
        elif self._pending_specs is not None:
            self._pending_specs.extend(insertions)

    # -- revalidation ---------------------------------------------------------

    def revalidate(
        self, module: Module, baseline: Optional[RecordedRun] = None
    ) -> RevalidationOutcome:
        """Detect against the (fixed) module, incrementally if possible."""
        base = baseline if baseline is not None else self.baseline
        if base is not None and base is not self.baseline:
            # The analysis manager recomputed the baseline (structural
            # invalidation); adopt it.  record() already cleared the
            # witness state when it built this baseline.
            self.baseline = base
        rebuilt = self._manager_rebuild
        self._manager_rebuild = False
        if base is None:
            outcome = self._full(module, "no recording to revalidate against")
        elif self._pending_structural:
            outcome = self._full(module, "structural fix committed")
        elif module.fingerprint() == base.module_fingerprint:
            if rebuilt:
                # The analysis manager just re-recorded (structural
                # invalidation cascaded to the revalidation index), so
                # this *is* a full revalidation — the fresh recording's
                # detection is the post-fix verdict.
                outcome = RevalidationOutcome(
                    mode="full",
                    detection=base.detection,
                    trace=base.trace,
                    segments_total=len(base.segments),
                    fallback_reason="baseline re-recorded after invalidation",
                )
            else:
                self._count("revalidate.noop_hits")
                outcome = RevalidationOutcome(
                    mode="baseline",
                    detection=base.detection,
                    trace=base.trace,
                    segments_total=len(base.segments),
                )
        elif not self._pending_anchors:
            outcome = self._full(
                module, "module changed without a mutation witness"
            )
        elif not self._pending_anchors <= base.module_iids:
            outcome = self._full(
                module, "fix anchored at an instruction inserted after recording"
            )
        else:
            first = base.first_affected_segment(self._pending_anchors)
            if first is None:
                # Every anchor sits in code the recording never
                # executed, so the inserted instructions never execute
                # either: the trace — and the verdict — are unchanged.
                self._count("revalidate.noop_hits")
                outcome = RevalidationOutcome(
                    mode="baseline",
                    detection=base.detection,
                    trace=base.trace,
                    segments_total=len(base.segments),
                )
            else:
                try:
                    if self._pending_specs is not None:
                        outcome = self._synthesize(module, base)
                    else:
                        outcome = self._incremental(module, base, first)
                except Exception as exc:
                    outcome = self._full(
                        module,
                        f"incremental revalidation failed: "
                        f"{type(exc).__name__}: {exc}",
                    )
        self.last_outcome = outcome
        return outcome

    def _full(self, module: Module, reason: str) -> RevalidationOutcome:
        detection, trace, _ = self.record(module)
        return RevalidationOutcome(
            mode="full",
            detection=detection,
            trace=trace,
            segments_total=len(self.baseline.segments) if self.baseline else 0,
            fallback_reason=reason,
        )

    def _synthesize(
        self, module: Module, base: RecordedRun
    ) -> RevalidationOutcome:
        """The fast tier: no execution at all.

        The mutation witness is complete (every committed fix described
        its inserted flush/gep/fence run), so the post-fix trace is
        synthesized directly from the baseline trace and the volatile-op
        side channel, and the checker resumes from the last memoized
        fork before the first changed event.
        """
        assert self._pending_specs is not None
        synthesis = synthesize_fixed_trace(
            base.trace, base.vol_ops, self._pending_specs
        )
        trace = synthesis.trace

        # Resume checking from the last fork at or before the first
        # changed position (every earlier event is the identical
        # baseline object the fork already consumed).
        start = base.segments[0]
        for segment in base.segments:
            if (
                segment.index in base.forks
                and segment.trace_start <= synthesis.changed_from
            ):
                start = segment
        state = base.forks[start.index].fork()
        rechecked = ChainIndex()
        checker = DurabilityChecker(collector=rechecked)
        for event in trace.events[start.trace_start :]:
            checker.feed(state, event)
        detection = checker.finalize(state)

        self._count("revalidate.incremental_hits")
        self._count("revalidate.synth_hits")
        self._count(
            "revalidate.chains_rechecked", len(synthesis.affected_lines)
        )
        return RevalidationOutcome(
            mode="synthesized",
            detection=detection,
            trace=trace,
            replayed_from=start.index,
            segments_total=len(base.segments),
            segments_replayed=0,
            rechecked_chains=synthesis.affected_lines,
        )

    def _incremental(
        self, module: Module, base: RecordedRun, first_affected: int
    ) -> RevalidationOutcome:
        start = base.replay_base(first_affected)
        snapshot = start.snapshot
        assert snapshot is not None
        machine = snapshot.materialize()
        replay = replay_class(self.engine)(
            module,
            machine,
            snapshot,
            skip=base.segments[: start.index],
            cost_model=self.cost_model,
            fuel=base.fuel,
            metrics=self.metrics,
        )
        self.driver(replay)
        suffix = replay.finish()
        if replay.skipped_remaining:
            raise ReplayDivergence(
                f"driver made fewer calls than recorded "
                f"({replay.skipped_remaining} skip(s) unconsumed)"
            )

        combined = PMTrace(
            list(base.trace.events[: start.trace_start]) + list(suffix.events)
        )
        rechecked = ChainIndex()
        checker = DurabilityChecker(collector=rechecked)
        state = base.forks[start.index].fork()
        for event in suffix.events:
            checker.feed(state, event)
        detection = checker.finalize(state)

        chains = rechecked.chains()
        self._count("revalidate.incremental_hits")
        self._count("revalidate.chains_rechecked", len(chains))
        self._count(
            "revalidate.segments_replayed", len(base.segments) - start.index
        )
        return RevalidationOutcome(
            mode="incremental",
            detection=detection,
            trace=combined,
            replayed_from=start.index,
            segments_total=len(base.segments),
            segments_replayed=len(base.segments) - start.index,
            rechecked_chains=chains,
        )
