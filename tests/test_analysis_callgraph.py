"""Unit tests for call-graph construction."""

from repro.analysis import CallGraph
from repro.ir import I64, ModuleBuilder, PTR


def diamond_module():
    mb = ModuleBuilder("cg")
    b = mb.function("leaf", [("p", PTR)], I64)
    b.store(1, b.function.args[0])
    b.ret(0)
    b = mb.function("left", [("p", PTR)], I64)
    b.ret(b.call("leaf", [b.function.args[0]], I64))
    b = mb.function("right", [("p", PTR)], I64)
    b.ret(b.call("leaf", [b.function.args[0]], I64))
    b = mb.function("top", [], I64)
    p = b.call("pm_alloc", [64], PTR)
    b.call("left", [p], I64)
    b.call("right", [p], I64)
    b.ret(0)
    b = mb.function("island", [], I64)
    b.ret(0)
    return mb.module


def test_callees():
    cg = CallGraph(diamond_module())
    assert cg.callees("top") == {"left", "right"}
    assert cg.callees("left") == {"leaf"}
    assert cg.callees("leaf") == set()
    assert cg.callees("island") == set()


def test_callers():
    cg = CallGraph(diamond_module())
    assert cg.callers("leaf") == {"left", "right"}
    assert cg.callers("top") == set()


def test_call_sites_of():
    cg = CallGraph(diamond_module())
    assert len(cg.call_sites_of("leaf")) == 2
    # intrinsic targets are tracked too
    assert len(cg.call_sites_of("pm_alloc")) == 1


def test_reachable_from():
    cg = CallGraph(diamond_module())
    assert cg.reachable_from("top") == {"top", "left", "right", "leaf"}
    assert cg.reachable_from("leaf") == {"leaf"}


def test_transitive_predicate():
    module = diamond_module()
    cg = CallGraph(module)
    has_store = cg.transitive_predicate(lambda fn: bool(fn.stores()))
    assert has_store == {"leaf", "left", "right", "top"}


def test_recursion_terminates():
    mb = ModuleBuilder("rec")
    b = mb.function("a", [], I64)
    b.ret(b.call("b", [], I64))
    b = mb.function("b", [], I64)
    b.ret(b.call("a", [], I64))
    cg = CallGraph(mb.module)
    assert cg.reachable_from("a") == {"a", "b"}
    assert cg.transitive_predicate(lambda fn: False) == set()
