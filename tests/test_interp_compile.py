"""The per-function compiler and its caches.

Covers the register-compiled form itself (flat pc space, the FELL_OFF
sentinel after every block, stable opcode numbering), the incremental
recompile (equal :func:`function_signature` at a newer epoch reuses
the compiled object), the module-keyed program cache, and the analysis
manager's ``COMPILED`` entry — in particular that *any* epoch movement
(flush/fence commit, structural commit, even a clean rollback) leaves
the cached program stamped at the module's current epoch, because the
flat engine relinks whenever the two disagree and a stale re-stamped
program would relink forever.
"""

from __future__ import annotations

import pytest

from repro.analysis.manager import COMPILED, AnalysisManager
from repro.core.transaction import FixTransaction
from repro.interp.compile import (
    cached_program,
    compile_function,
    compile_module,
    function_signature,
)
from repro.ir import I64, ModuleBuilder, PTR
from repro.ir.opcodes import (
    NUM_OPCODES,
    OP_FELL_OFF,
    OPCODE_NAMES,
)


def build_module():
    mb = ModuleBuilder("cmp")
    helper = mb.function("set_slot", [("p", PTR), ("v", I64)], source_file="c.c")
    helper.store(helper.function.args[1], helper.function.args[0])
    helper.ret()
    b = mb.function("main", [], I64, source_file="c.c")
    p = b.call("pm_alloc", [64], PTR)
    b.call("set_slot", [p, 7])
    b.flush(p)
    b.fence()
    b.ret(0)
    return mb.module


# ---------------------------------------------------------------------------
# the compiled form
# ---------------------------------------------------------------------------


def test_opcode_numbering_is_stable():
    """The numbering is part of the engine/compiler contract: handlers
    index by opcode, so renumbering silently breaks dispatch."""
    assert OP_FELL_OFF == 0
    assert len(OPCODE_NAMES) == NUM_OPCODES
    assert len(set(OPCODE_NAMES)) == NUM_OPCODES  # no duplicate names


def test_every_block_ends_in_fell_off_sentinel():
    module = build_module()
    for fn in module.functions.values():
        cf = compile_function(fn, module)
        sentinels = [code for code in cf.code if code[0] == OP_FELL_OFF]
        assert len(sentinels) == len(fn.blocks)
        # the sentinel carries the block name for the diagnostic
        assert {code[2] for code in sentinels} == {
            block.name for block in fn.blocks
        }


def test_constants_are_prefilled_in_template():
    module = build_module()
    cf = compile_function(module.get_function("main"), module)
    # pm_alloc's size argument (64) must already sit in the template
    assert 64 in [v for v in cf.base_template if v is not None]


# ---------------------------------------------------------------------------
# incremental recompiles
# ---------------------------------------------------------------------------


def test_unchanged_functions_are_reused_across_epochs():
    module = build_module()
    first = compile_module(module)
    module.bump_epoch()
    second = compile_module(module, previous=first)
    assert second.epoch == module.epoch
    assert second.reused_from(first) == len(first.functions)
    for name, cf in first.functions.items():
        assert second.functions[name] is cf


def test_signature_change_recompiles_only_that_function():
    module = build_module()
    first = compile_module(module)
    call = next(
        i for i in module.get_function("main").entry if i.opcode == "call"
    )
    call.callee = "vol_alloc"  # retarget: changes main's signature only
    module.bump_epoch()
    second = compile_module(module, previous=first)
    assert second.functions["set_slot"] is first.functions["set_slot"]
    assert second.functions["main"] is not first.functions["main"]
    assert second.reused_from(first) == 1


def test_function_signature_tracks_callee_resolution():
    module = build_module()
    before = function_signature(module.get_function("main"), module)
    call = next(
        i for i in module.get_function("main").entry if i.opcode == "call"
    )
    call.callee = "vol_alloc"
    assert function_signature(module.get_function("main"), module) != before


def test_cached_program_is_shared_until_epoch_moves():
    module = build_module()
    first = cached_program(module)
    assert cached_program(module) is first
    module.bump_epoch()
    second = cached_program(module)
    assert second is not first
    assert second.epoch == module.epoch
    assert second.reused_from(first) == len(first.functions)


# ---------------------------------------------------------------------------
# the analysis manager's COMPILED entry
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("structural", [False, True])
def test_commit_leaves_compiled_program_at_current_epoch(structural):
    module = build_module()
    manager = AnalysisManager(module)
    before = manager.get(COMPILED)
    assert before is cached_program(module)

    txn = FixTransaction(module, manager=manager)
    if structural:
        call = next(
            i for i in module.get_function("main").entry if i.opcode == "call"
        )
        txn.track_attr(call, "callee")
        call.callee = "vol_alloc"
    else:
        txn.touch("main")
    module.bump_epoch()
    txn.commit()

    after = manager.get(COMPILED)
    assert after is not before
    assert after.epoch == module.epoch


def test_clean_rollback_still_resyncs_compiled_epoch():
    """A rolled-back transaction restores the IR but the epoch has
    moved; re-stamping the old program (as the manager does for other
    surviving analyses) would make the flat engine relink on every
    run, so COMPILED must be dropped and recomputed at the new epoch."""
    module = build_module()
    manager = AnalysisManager(module)
    before = manager.get(COMPILED)

    txn = FixTransaction(module, manager=manager)
    call = next(
        i for i in module.get_function("main").entry if i.opcode == "call"
    )
    txn.track_attr(call, "callee")
    call.callee = "vol_alloc"
    module.bump_epoch()
    txn.rollback()

    assert call.callee == "pm_alloc"  # IR restored
    after = manager.get(COMPILED)
    assert after.epoch == module.epoch
    # the recompile reuses every function object: signatures are equal
    assert after.reused_from(before) == len(before.functions)


def test_manager_lookup_hits_cache_at_same_epoch():
    module = build_module()
    manager = AnalysisManager(module)
    assert manager.get(COMPILED) is manager.get(COMPILED)
