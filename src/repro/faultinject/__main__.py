"""Command-line entry: run the fault-injection campaigns.

::

    PYTHONPATH=src python -m repro.faultinject
    PYTHONPATH=src python -m repro.faultinject --resume-campaign
    PYTHONPATH=src python -m repro.faultinject --resume-campaign \\
        --journal-dir journals --cases PMDK-447 P-CLHT

The default runs the in-process fault matrix (13 cases x 8 plans);
``--resume-campaign`` runs the process-level kill/resume matrix
(SIGKILL at every checkpoint boundary + torn journal tails + the
worker hang/kill checks).  Prints one line per run and exits nonzero
if any resilience invariant was violated.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.faultinject")
    parser.add_argument(
        "--resume-campaign",
        action="store_true",
        help="run the kill-supervisor-at-every-checkpoint resume matrix "
        "instead of the in-process fault matrix",
    )
    parser.add_argument(
        "--journal-dir",
        help="directory for the resume campaign's journals (failing runs "
        "leave their journal behind for post-mortem; default: a temp dir)",
    )
    parser.add_argument(
        "--cases",
        nargs="*",
        help="corpus case ids to restrict the campaign to (default: all)",
    )
    parser.add_argument(
        "--mode",
        choices=("inprocess", "subprocess", "auto"),
        default="inprocess",
        help="supervisor execution mode for the resume campaign",
    )
    ns = parser.parse_args(argv)

    if ns.resume_campaign:
        from .resume import run_resume_campaign

        result = run_resume_campaign(
            case_ids=ns.cases or None,
            mode=ns.mode,
            journal_dir=ns.journal_dir,
            progress=print,
        )
        print(result.summary())
        return 0 if result.ok else 1

    from .campaign import run_campaign

    result = run_campaign(progress=lambda record: print(record.describe()))
    print(result.summary())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
