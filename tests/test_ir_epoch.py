"""Epoch and fingerprint correctness for the analysis manager's cache.

Two properties underpin every cached analysis:

- **Epoch monotonicity**: every structural mutation — builder emission,
  positional block insertion/removal, function/global/block addition,
  function removal, transaction rollback — strictly increases the
  module's mutation epoch.  A missed bump would let a stale analysis
  validate against changed content.
- **Fingerprint determinism**: the content fingerprint is a pure
  function of the printed text, so parser→printer→parser round trips
  agree, it is stable between mutations, and it changes when content
  changes.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.transaction import FixTransaction
from repro.ir import (
    I64,
    ModuleBuilder,
    PTR,
    format_module,
    parse_module,
)
from repro.ir.instructions import Fence, Flush


def build_base():
    mb = ModuleBuilder("epoch")
    b = mb.function("main", [], I64, source_file="e.c")
    base = b.call("pm_alloc", [64], PTR)
    b.store(7, base)
    b.flush(base)
    b.fence()
    b.ret(0)
    return mb, b


# ---------------------------------------------------------------------------
# Property: every mutating operation bumps the epoch
# ---------------------------------------------------------------------------

#: builder ops exercised by the property test, all of which must bump
gen_op = st.sampled_from(
    ["add", "store", "load", "gep", "flush", "fence", "call", "alloca"]
)


@given(st.lists(gen_op, min_size=1, max_size=30))
@settings(max_examples=30, deadline=None)
def test_every_builder_emission_bumps_epoch(ops):
    mb = ModuleBuilder("gen")
    helper = mb.function("helper", [("x", I64)], I64, source_file="g.c")
    helper.ret(helper.function.args[0])
    b = mb.function("main", [], I64, source_file="g.c")
    module = mb.module
    base = b.call("pm_alloc", [256], PTR)
    acc = b.add(0, 1)
    for op in ops:
        before = module.epoch
        if op == "add":
            acc = b.add(acc, 1)
        elif op == "store":
            b.store(acc, base)
        elif op == "load":
            acc = b.load(base, I64)
        elif op == "gep":
            base = b.gep(base, 8)
        elif op == "flush":
            b.flush(base)
        elif op == "fence":
            b.fence()
        elif op == "call":
            acc = b.call("helper", [acc], I64)
        elif op == "alloca":
            b.alloca(16)
        assert module.epoch == before + 1, f"{op} did not bump the epoch"
    b.ret(acc)


def test_module_level_construction_bumps_epoch():
    mb, b = build_base()
    module = mb.module

    before = module.epoch
    fn = module.add_function("fresh", [("p", PTR)], I64)
    assert module.epoch == before + 1

    before = module.epoch
    fn.add_block("extra")
    assert module.epoch == before + 1

    before = module.epoch
    module.add_global("g", 64, "pm")
    assert module.epoch == before + 1

    before = module.epoch
    removed = module.remove_function("fresh")
    assert removed is fn
    assert module.epoch == before + 1

    before = module.epoch
    module.insert_function(fn)
    assert module.epoch == before + 1

    # Removing a function that is not present is not a mutation.
    before = module.epoch
    assert module.remove_function("never-existed") is None
    assert module.epoch == before


def test_positional_insertion_and_removal_bump_epoch():
    mb, b = build_base()
    module = mb.module
    block = module.get_function("main").entry
    store = next(i for i in block if i.opcode == "store")

    before = module.epoch
    flush = block.insert_after(store, Flush(store.pointer))
    assert module.epoch == before + 1

    before = module.epoch
    block.insert_before(flush, Fence())
    assert module.epoch == before + 1

    before = module.epoch
    block.remove(flush)
    assert module.epoch == before + 1


def test_transaction_rollback_bumps_epoch():
    mb, b = build_base()
    module = mb.module
    call = next(i for i in module.get_function("main").entry if i.opcode == "call")

    txn = FixTransaction(module)
    txn.track_attr(call, "callee")
    call.callee = "pm_alloc_PM"
    module.bump_epoch()
    mutated_epoch = module.epoch
    txn.rollback()
    # The undo restored the attribute — different content than the
    # mutated state, so the epoch must move again, not rewind.
    assert call.callee == "pm_alloc"
    assert module.epoch > mutated_epoch


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def test_fingerprint_stable_between_mutations():
    mb, b = build_base()
    module = mb.module
    assert module.fingerprint() == module.fingerprint()


def test_fingerprint_tracks_content_changes():
    mb, b = build_base()
    module = mb.module
    original = module.fingerprint()
    store = next(
        i for i in module.get_function("main").entry if i.opcode == "store"
    )
    block = store.parent
    flush = block.insert_after(store, Flush(store.pointer))
    assert module.fingerprint() != original
    block.remove(flush)
    # Same content again -> same fingerprint (even though the epoch moved).
    assert module.fingerprint() == original


@given(st.lists(gen_op, min_size=0, max_size=20))
@settings(max_examples=30, deadline=None)
def test_roundtrip_fingerprints_agree(ops):
    mb = ModuleBuilder("gen")
    b = mb.function("main", [], I64, source_file="g.c")
    base = b.call("pm_alloc", [256], PTR)
    acc = b.add(0, 1)
    for op in ops:
        if op == "add":
            acc = b.add(acc, 1)
        elif op == "store":
            b.store(acc, base)
        elif op == "load":
            acc = b.load(base, I64)
        elif op == "gep":
            base = b.gep(base, 8)
        elif op == "flush":
            b.flush(base)
        elif op == "fence":
            b.fence()
        elif op == "call":
            base = b.call("pm_alloc", [64], PTR)
        elif op == "alloca":
            b.alloca(16)
    b.ret(acc)
    module = mb.module

    reparsed = parse_module(format_module(module))
    assert reparsed.fingerprint() == module.fingerprint()
    # And once more: the fingerprint is a fixed point of the round trip.
    again = parse_module(format_module(reparsed))
    assert again.fingerprint() == reparsed.fingerprint()
