"""Unit tests for the experiment harness (small-scale runs)."""

from repro.bench import (
    REDIS_FULL,
    REDIS_INTRA,
    REDIS_PM,
    build_redis_variants,
    fig4_table,
    run_case,
    run_fig4,
)
from repro.corpus import pclht_case


def test_build_redis_variants():
    variants = build_redis_variants()
    assert set(variants) == {REDIS_PM, REDIS_FULL, REDIS_INTRA}
    manual_module, manual_report = variants[REDIS_PM]
    assert manual_report is None
    full_module, full_report = variants[REDIS_FULL]
    assert full_report.interprocedural_count >= 1
    intra_module, intra_report = variants[REDIS_INTRA]
    assert intra_report.interprocedural_count == 0
    assert intra_report.bugs_fixed == full_report.bugs_fixed


def test_run_fig4_small():
    result = run_fig4(record_count=60, operation_count=60, workloads=["Load", "B"])
    # ordering relations from the paper
    for workload in ("Load", "B"):
        full = result.throughput(REDIS_FULL, workload)
        intra = result.throughput(REDIS_INTRA, workload)
        manual = result.throughput(REDIS_PM, workload)
        assert full > intra
        assert full >= 0.9 * manual
    speedups = result.speedup_full_over_intra()
    assert all(s > 1.3 for s in speedups.values())
    table = fig4_table(result)
    assert "RedisH-full" in table and "Load" in table


def test_run_case_outcome_fields():
    outcome = run_case(pclht_case())
    assert outcome.reports_found == 2
    assert outcome.reports_after_fix == 0
    assert outcome.fixed
    assert outcome.fix_kinds
