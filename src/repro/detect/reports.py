"""Bug reports produced by the PM bug-finding tools.

These are the currency between the detectors and Hippocrates: a report
names the *kind* of durability bug, the store event that created the
unmet durability obligation, the flush event (for missing-fence bugs),
and the boundary event *I* by which the update had to be durable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..trace.events import BoundaryEvent, FlushEvent, StoreEvent


class BugKind(Enum):
    """The paper's three durability bug classes (§2.1)."""

    #: Store flushed, but the flush is not ordered by a fence before I.
    MISSING_FENCE = "missing-fence"
    #: Store never flushed, but a later fence exists that would order an
    #: inserted flush (fix: flush only).
    MISSING_FLUSH = "missing-flush"
    #: Store neither flushed nor covered by any later fence
    #: (fix: flush and fence).
    MISSING_FLUSH_FENCE = "missing-flush&fence"


@dataclass
class BugReport:
    """One durability bug."""

    kind: BugKind
    store: StoreEvent
    boundary: BoundaryEvent
    #: the un-fenced flush, for MISSING_FENCE bugs
    flush: Optional[FlushEvent] = None
    #: dynamic occurrence count (the same static store may miss its
    #: flush on every loop iteration; one report covers them all)
    occurrences: int = 1
    report_id: int = 0

    @property
    def store_iid(self) -> int:
        return self.store.iid

    def describe(self) -> str:
        where = f"{self.store.function} at {self.store.loc}"
        return (
            f"[{self.kind.value}] store #{self.store.iid} ({where}), "
            f"{self.occurrences} occurrence(s), must be durable by "
            f"boundary '{self.boundary.label}'"
        )

    def __repr__(self) -> str:
        return f"<BugReport {self.describe()}>"


@dataclass
class PerfReport:
    """A performance diagnostic: a redundant flush of a clean line.

    Reported for information only — the paper's §7 explains why
    Hippocrates never *removes* flushes ("do no harm").
    """

    flush: FlushEvent
    occurrences: int = 1

    def describe(self) -> str:
        return (
            f"[redundant-flush] flush #{self.flush.iid} "
            f"({self.flush.function} at {self.flush.loc}), "
            f"{self.occurrences} occurrence(s)"
        )


@dataclass
class DetectionResult:
    """Everything a detector found in one trace."""

    bugs: List[BugReport] = field(default_factory=list)
    perf: List[PerfReport] = field(default_factory=list)

    @property
    def bug_count(self) -> int:
        return len(self.bugs)

    def by_kind(self, kind: BugKind) -> List[BugReport]:
        return [b for b in self.bugs if b.kind == kind]

    def summary(self) -> str:
        lines = [f"{len(self.bugs)} durability bug(s), {len(self.perf)} perf note(s)"]
        lines.extend("  " + bug.describe() for bug in self.bugs)
        lines.extend("  " + note.describe() for note in self.perf)
        return "\n".join(lines)
