"""Fault-injection harness for the repair pipeline.

Real-world PM diagnostic output is messy — crash-truncated logs,
debug-info drift, analyses that blow their budgets.  This package
proves the pipeline's resilience invariants *by construction*, at two
levels:

**In-process** (PR 1): it wraps the locator, classifier, subprogram
transformer, and trace parser with deterministic, seeded fault plans
(raise-at-Nth-call, corrupt-trace-line, budget-exhaustion) and drives a
campaign over the 23-bug corpus asserting that

- the pipeline always completes,
- only the targeted bug(s) are quarantined and every other bug is
  fixed,
- the repaired module passes ``verify_module``, ``assert_fixed`` (for
  the non-quarantined bugs), and ``do_no_harm`` — i.e. the module is
  never left half-mutated.

**Process-level** (PR 2): plans targeting the batch supervisor
(``hang-worker``, ``kill-worker-at-nth``, ``kill-supervisor-at-nth``,
``torn-journal-write``) drive the kill/resume campaign in
:mod:`~repro.faultinject.resume`, which SIGKILLs the supervisor at
every checkpoint boundary of a corpus batch and asserts the resumed
aggregate report is byte-identical to an uninterrupted run.

Run the campaigns from the command line::

    PYTHONPATH=src python -m repro.faultinject                    # in-process matrix
    PYTHONPATH=src python -m repro.faultinject --resume-campaign  # kill/resume matrix
"""

from .campaign import CampaignResult, RunRecord, default_plans, run_campaign
from .injector import corrupt_trace_text, install_faults
from .plans import FaultPlan, InjectedFault
from .resume import (
    ResumeCampaignResult,
    ResumeRecord,
    run_kill_resume,
    run_resume_campaign,
    run_worker_fault_checks,
    tear_journal_tail,
)

__all__ = [
    "CampaignResult",
    "corrupt_trace_text",
    "default_plans",
    "FaultPlan",
    "InjectedFault",
    "install_faults",
    "ResumeCampaignResult",
    "ResumeRecord",
    "run_campaign",
    "run_kill_resume",
    "run_resume_campaign",
    "run_worker_fault_checks",
    "RunRecord",
    "tear_journal_tail",
]
