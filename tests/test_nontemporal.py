"""Unit tests for non-temporal (MOVNT) store support."""

import pytest

from repro.apps.pmdk_mini import build_pmdk_module
from repro.core import Hippocrates, InsertFenceAfterStore
from repro.detect import BugKind, pmemcheck_run
from repro.interp import Interpreter
from repro.ir import I64, ModuleBuilder, PTR, format_module, parse_module


def drive(interp):
    interp.call("main")


class TestSemantics:
    def test_nt_store_needs_only_a_fence(self):
        mb = ModuleBuilder("nt")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(42, p, nontemporal=True)
        b.fence()
        b.ret(0)
        detection, _, interp = pmemcheck_run(mb.module, drive)
        assert detection.bug_count == 0
        addr = interp.machine.allocations[-1].start
        assert interp.machine.image.is_line_durable(addr)

    def test_unfenced_nt_store_is_missing_fence(self):
        mb = ModuleBuilder("nt")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(42, p, nontemporal=True)
        b.ret(0)
        detection, _, _ = pmemcheck_run(mb.module, drive)
        assert detection.bug_count == 1
        bug = detection.bugs[0]
        assert bug.kind is BugKind.MISSING_FENCE
        assert bug.flush is None  # no flush exists (none needed)

    def test_nt_store_visible_to_loads(self):
        mb = ModuleBuilder("nt")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(99, p, nontemporal=True)
        b.ret(b.load(p))
        interp = Interpreter(mb.module)
        assert interp.call("main").value == 99

    def test_adversarial_crash_before_fence_loses_nt_store(self):
        mb = ModuleBuilder("nt")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(7, p, nontemporal=True)
        b.ret(0)
        _, _, interp = pmemcheck_run(mb.module, drive)
        addr = interp.machine.allocations[-1].start
        assert not interp.machine.image.is_line_durable(addr)


class TestFixing:
    def build_buggy(self):
        mb = ModuleBuilder("nt")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(42, p, nontemporal=True)
        b.ret(0)
        return mb.module

    def test_fix_is_fence_after_store(self):
        module = self.build_buggy()
        detection, trace, interp = pmemcheck_run(module, drive)
        fixer = Hippocrates(module, trace, interp.machine)
        plan = fixer.compute_fixes()
        assert len(plan.fixes) == 1
        assert isinstance(plan.fixes[0], InsertFenceAfterStore)
        fixer.apply(plan)
        after, _, _ = pmemcheck_run(module, drive)
        assert after.bug_count == 0

    def test_no_flush_inserted(self):
        module = self.build_buggy()
        _, trace, interp = pmemcheck_run(module, drive)
        Hippocrates(module, trace, interp.machine).fix()
        ops = [i.opcode for i in module.get_function("main").instructions()]
        assert "fence" in ops and "flush" not in ops


class TestTextFormats:
    def test_ir_roundtrip(self):
        mb = ModuleBuilder("nt")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(1, p, nontemporal=True)
        b.store(2, p)
        b.ret(0)
        text = format_module(mb.module)
        assert "store.nt i64 1" in text
        reparsed = parse_module(text)
        stores = reparsed.get_function("main").stores()
        assert [s.nontemporal for s in stores] == [True, False]

    def test_trace_roundtrip(self):
        from repro.trace import dump_trace, load_trace

        mb = ModuleBuilder("nt")
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        b.store(1, p, nontemporal=True)
        b.ret(0)
        _, trace, _ = pmemcheck_run(mb.module, drive)
        reloaded = load_trace(dump_trace(trace))
        assert reloaded.stores()[0].nontemporal
        assert dump_trace(reloaded) == dump_trace(trace)


class TestLibpmemNodrain:
    def test_nodrain_copy_then_drain_is_clean(self):
        mb = build_pmdk_module(name="nd")
        b = mb.function("main", [], I64)
        src = mb.module.get_global("nd_src") if "nd_src" in mb.module.globals else mb.global_("nd_src", 64, "vol", b"A" * 64)
        dst = b.call("pm_alloc", [64], PTR)
        b.call("pmem_memcpy_nodrain", [dst, src, 64])
        b.call("pmem_drain", [])
        b.ret(0)
        detection, _, interp = pmemcheck_run(mb.module, drive)
        assert detection.bug_count == 0
        addr = interp.machine.allocations[-1].start
        assert interp.machine.space.read_bytes(addr, 64) == b"A" * 64
        assert interp.machine.image.durable_bytes(addr, 64) == b"A" * 64

    def test_nodrain_without_drain_detected_and_fixed(self):
        mb = build_pmdk_module(name="nd")
        src = mb.global_("nd_src", 64, "vol", b"B" * 64)
        b = mb.function("main", [], I64)
        dst = b.call("pm_alloc", [64], PTR)
        b.call("pmem_memcpy_nodrain", [dst, src, 64])
        b.ret(0)
        module = mb.module
        detection, trace, interp = pmemcheck_run(module, drive)
        assert detection.bug_count == 1
        assert detection.bugs[0].kind is BugKind.MISSING_FENCE
        Hippocrates(module, trace, interp.machine).fix()
        after, _, _ = pmemcheck_run(module, drive)
        assert after.bug_count == 0
