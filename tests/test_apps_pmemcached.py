"""Unit tests for the memcached-pm cache."""

import pytest

from repro.apps import MC_SEEDS, Memcached, build_pmemcached
from repro.detect import BugKind, check_trace
from repro.ir import verify_module


def fresh(seeds=frozenset()):
    module = build_pmemcached(seeds=seeds)
    verify_module(module)
    server = Memcached(module)
    server.init(16, 64)
    return server


class TestFunctional:
    def test_set_get(self):
        server = fresh()
        server.set(b"key00001", b"value111")
        assert server.get(b"key00001") == b"value111"

    def test_miss(self):
        assert fresh().get(b"missing1") is None

    def test_update(self):
        server = fresh()
        assert server.set(b"k0000001", b"old-val1").value == 0
        assert server.set(b"k0000001", b"new-val2").value == 1
        assert server.get(b"k0000001") == b"new-val2"

    def test_delete_recycles_to_free_list(self):
        server = fresh()
        server.set(b"gonegone", b"x" * 16)
        assert server.delete(b"gonegone")
        assert server.get(b"gonegone") is None
        # freed item is reusable
        server.set(b"newentry", b"y" * 16)
        assert server.get(b"newentry") == b"y" * 16

    def test_capacity_exhaustion(self):
        module = build_pmemcached(seeds=frozenset())
        server = Memcached(module)
        server.init(8, 4)  # only 4 items
        for i in range(4):
            server.set(f"key{i:05d}".encode(), b"v")
        result = server.set(b"key99999", b"v")
        assert result.value == 2  # out of memory

    def test_oversized_rejected_by_driver(self):
        server = fresh()
        with pytest.raises(ValueError):
            server.set(b"k" * 30, b"v")
        with pytest.raises(ValueError):
            server.set(b"k", b"v" * 100)

    def test_chained_buckets(self):
        server = fresh()
        for i in range(40):
            server.set(f"key{i:05d}".encode(), f"value{i:03d}".encode())
        for i in range(40):
            assert server.get(f"key{i:05d}".encode()) == f"value{i:03d}".encode()


class TestSeededBugs:
    def drive(self, server):
        for i in range(40):
            server.set(f"key{i:04d}0".encode(), b"VALUEVALUE16BYTE")
        server.set(b"key00300", b"UPDATED-UPDATED!")
        server.delete(b"key00200")
        server.set(b"keyNEW00", b"NEWVALUE")

    def test_clean_build_is_pmemcheck_clean(self):
        server = fresh()
        self.drive(server)
        assert check_trace(server.finish()).bug_count == 0

    def test_default_seeds_give_ten_bugs(self):
        server = fresh(seeds=MC_SEEDS)
        self.drive(server)
        result = check_trace(server.finish())
        assert result.bug_count == 10
        # mc-10 is the flush&fence one; the rest are missing-flush
        kinds = [b.kind for b in result.bugs]
        assert kinds.count(BugKind.MISSING_FLUSH_FENCE) == 1
        assert kinds.count(BugKind.MISSING_FLUSH) == 9

    @pytest.mark.parametrize("seed", sorted(MC_SEEDS))
    def test_each_seed_detectable_in_isolation(self, seed):
        server = fresh(seeds=frozenset({seed}))
        self.drive(server)
        result = check_trace(server.finish())
        assert result.bug_count == 1, (seed, result.summary())

    def test_unknown_seed_rejected(self):
        with pytest.raises(ValueError):
            build_pmemcached(seeds=frozenset({"mc-99"}))
