"""Property-based tests tying the detector and fixer together.

Over randomly generated multi-function PM programs:

1. a program whose every store is followed by flush+fence is clean;
2. omitting persistence of some stores is always detected;
3. Hippocrates always repairs everything the detector reports, with
   either heuristic setting, and the fixed module verifies.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import Hippocrates
from repro.detect import pmemcheck_run
from repro.ir import I64, ModuleBuilder, PTR, verify_module

#: Each element: (persist?, slot, value, via_helper?)
action = st.tuples(
    st.booleans(),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=1000),
    st.booleans(),
)


def build(actions):
    mb = ModuleBuilder("gen")
    helper = mb.function("set_slot", [("p", PTR), ("v", I64)], source_file="gen.c")
    helper.store(helper.function.args[1], helper.function.args[0])
    helper.ret()

    b = mb.function("main", [], I64, source_file="gen.c")
    base = b.call("pm_alloc", [256], PTR)
    vol = b.call("vol_alloc", [256], PTR)
    b.call("set_slot", [vol, 1])  # volatile helper use
    for persist, slot, value, via_helper in actions:
        target = b.gep(base, slot * 64)
        if via_helper:
            b.call("set_slot", [target, value])
        else:
            b.store(value, target)
        if persist:
            b.flush(target)
            b.fence()
    b.call("checkpoint", [])
    b.ret(0)
    return mb.module


def drive(interp):
    interp.call("main")


@settings(max_examples=50, deadline=None)
@given(actions=st.lists(action, max_size=10))
def test_fully_persisted_programs_are_clean(actions):
    persisted = [(True, s, v, h) for (_, s, v, h) in actions]
    module = build(persisted)
    detection, _, _ = pmemcheck_run(module, drive)
    assert detection.bug_count == 0


@settings(max_examples=50, deadline=None)
@given(actions=st.lists(action, min_size=1, max_size=10))
def test_unpersisted_final_store_always_detected(actions):
    actions = actions[:-1] + [(False,) + actions[-1][1:]]
    module = build(actions)
    detection, _, _ = pmemcheck_run(module, drive)
    assert detection.bug_count >= 1


@settings(max_examples=40, deadline=None)
@given(
    actions=st.lists(action, min_size=1, max_size=8),
    heuristic=st.sampled_from(["full", "trace", "off"]),
)
def test_hippocrates_always_converges_to_clean(actions, heuristic):
    module = build(actions)
    detection, trace, interp = pmemcheck_run(module, drive)
    fixer = Hippocrates(module, trace, interp.machine, heuristic=heuristic)
    report = fixer.fix()
    verify_module(module)
    assert report.bugs_fixed == detection.bug_count
    after, _, _ = pmemcheck_run(module, drive)
    assert after.bug_count == 0


@settings(max_examples=40, deadline=None)
@given(actions=st.lists(action, min_size=1, max_size=8))
def test_fix_is_idempotent(actions):
    """Fixing a fixed module finds nothing and changes nothing."""
    from repro.ir import format_module

    module = build(actions)
    _, trace, interp = pmemcheck_run(module, drive)
    Hippocrates(module, trace, interp.machine).fix()
    after, trace2, interp2 = pmemcheck_run(module, drive)
    before_text = format_module(module)
    report = Hippocrates(module, trace2, interp2.machine).fix()
    assert report.fixes_applied == 0
    assert format_module(module) == before_text
