"""Unit tests for IR instruction construction and validation."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Alloca,
    BasicBlock,
    BinOp,
    Branch,
    Call,
    Cast,
    Constant,
    Fence,
    Flush,
    Gep,
    I1,
    I8,
    I64,
    ICmp,
    Jump,
    Load,
    NULL,
    PTR,
    Ret,
    Select,
    Store,
    Trap,
    VOID,
)


def ptr_value():
    return Constant(0x1000_0000, PTR)


class TestMemoryInstructions:
    def test_alloca(self):
        a = Alloca(16)
        assert a.size == 16
        assert a.type is PTR
        with pytest.raises(IRError):
            Alloca(0)

    def test_load(self):
        load = Load(ptr_value(), I64)
        assert load.size == 8
        with pytest.raises(IRError):
            Load(Constant(1, I64), I64)  # non-pointer operand
        with pytest.raises(IRError):
            Load(ptr_value(), VOID)

    def test_store(self):
        store = Store(Constant(7, I8), ptr_value())
        assert store.size == 1
        assert store.value.value == 7
        assert store.type.is_void
        with pytest.raises(IRError):
            Store(Constant(7, I64), Constant(1, I64))

    def test_gep(self):
        gep = Gep(ptr_value(), Constant(8, I64))
        assert gep.type is PTR
        with pytest.raises(IRError):
            Gep(Constant(1, I64), Constant(8, I64))
        with pytest.raises(IRError):
            Gep(ptr_value(), ptr_value())


class TestArithmetic:
    def test_binop_valid(self):
        op = BinOp("add", Constant(1, I64), Constant(2, I64))
        assert op.opcode == "add"
        assert op.type is I64

    def test_binop_type_mismatch(self):
        with pytest.raises(IRError):
            BinOp("add", Constant(1, I64), Constant(2, I8))

    def test_binop_unknown_op(self):
        with pytest.raises(IRError):
            BinOp("fadd", Constant(1, I64), Constant(2, I64))

    def test_icmp(self):
        cmp = ICmp("ult", Constant(1, I64), Constant(2, I64))
        assert cmp.type is I1
        with pytest.raises(IRError):
            ICmp("slt", Constant(1, I64), Constant(2, I64))  # unsupported pred

    def test_icmp_on_pointers(self):
        # null checks compare pointers for equality
        ICmp("eq", ptr_value(), NULL)

    def test_select(self):
        sel = Select(Constant(1, I1), Constant(2, I64), Constant(3, I64))
        assert sel.type is I64
        with pytest.raises(IRError):
            Select(Constant(1, I1), Constant(2, I64), Constant(3, I8))

    def test_cast(self):
        cast = Cast("ptrtoint", ptr_value(), I64)
        assert cast.type is I64
        with pytest.raises(IRError):
            Cast("ptrtoint", Constant(1, I64), I64)
        with pytest.raises(IRError):
            Cast("inttoptr", Constant(1, I64), I64)
        with pytest.raises(IRError):
            Cast("bitcast", ptr_value(), I64)


class TestControlFlow:
    def test_branch_successors(self):
        then_block, else_block = BasicBlock("a"), BasicBlock("b")
        br = Branch(Constant(1, I1), then_block, else_block)
        assert br.successors() == [then_block, else_block]
        assert br.is_terminator

    def test_jump(self):
        target = BasicBlock("t")
        jmp = Jump(target)
        assert jmp.successors() == [target]

    def test_ret(self):
        assert Ret().value is None
        assert Ret(Constant(1, I64)).value.value == 1
        assert Ret().successors() == []

    def test_trap(self):
        assert Trap().is_terminator


class TestCall:
    def test_fields(self):
        call = Call("memcpy", [ptr_value(), ptr_value(), Constant(8, I64)], VOID)
        assert call.callee == "memcpy"
        assert len(call.args) == 3

    def test_pointer_args(self):
        call = Call("f", [ptr_value(), Constant(8, I64), ptr_value()], VOID)
        assert len(call.pointer_args()) == 2


class TestPersistence:
    def test_flush_kinds(self):
        for kind in ("clwb", "clflushopt", "clflush"):
            assert Flush(ptr_value(), kind).kind == kind
        with pytest.raises(IRError):
            Flush(ptr_value(), "clwb2")
        with pytest.raises(IRError):
            Flush(Constant(1, I64), "clwb")

    def test_fence_kinds(self):
        for kind in ("sfence", "mfence"):
            assert Fence(kind).kind == kind
        with pytest.raises(IRError):
            Fence("lfence")


class TestInstructionInfrastructure:
    def test_unique_iids(self):
        a, b = Alloca(8), Alloca(8)
        assert a.iid != b.iid

    def test_replace_operand(self):
        x, y = Constant(1, I64), Constant(2, I64)
        op = BinOp("add", x, x)
        assert op.replace_operand(op.operands[0], y) >= 1
