"""Modules: the unit of analysis, transformation, and execution."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import IRError
from .function import Function
from .instructions import Instruction
from .types import Type, VOID
from .values import GlobalVariable


class Module:
    """A collection of functions and globals — a whole program.

    Hippocrates operates on whole-program IR ("whole-program LLVM" in
    the paper); all of its passes take a :class:`Module`.
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    # -- construction -----------------------------------------------------------

    def add_function(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]] = (),
        return_type: Type = VOID,
        source_file: str = "",
    ) -> Function:
        if name in self.functions:
            raise IRError(f"duplicate function {name!r}")
        fn = Function(name, params, return_type, source_file or f"{self.name}.c")
        fn.parent = self
        self.functions[name] = fn
        return fn

    def insert_function(self, fn: Function) -> Function:
        """Insert an already-built function (used by cloning)."""
        if fn.name in self.functions:
            raise IRError(f"duplicate function {fn.name!r}")
        fn.parent = self
        self.functions[fn.name] = fn
        return fn

    def remove_function(self, name: str) -> Optional[Function]:
        """Remove a function by name (used by fix rollback).

        Returns the removed function, or None if it was not present.
        """
        fn = self.functions.pop(name, None)
        if fn is not None:
            fn.parent = None
        return fn

    def add_global(
        self,
        name: str,
        size: int,
        space: str = "vol",
        initializer: Optional[bytes] = None,
    ) -> GlobalVariable:
        if name in self.globals:
            raise IRError(f"duplicate global {name!r}")
        gv = GlobalVariable(name, size, space, initializer)
        self.globals[name] = gv
        return gv

    # -- lookup -------------------------------------------------------------------

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function {name!r} in module {self.name!r}") from None

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"no global {name!r} in module {self.name!r}") from None

    def find_instruction(self, iid: int) -> Optional[Instruction]:
        for fn in self.functions.values():
            instr = fn.find_instruction(iid)
            if instr is not None:
                return instr
        return None

    # -- metrics --------------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for fn in self.functions.values():
            yield from fn.instructions()

    def instruction_count(self) -> int:
        """Total instruction count — the module's "lines of IR".

        Used for the code-bloat measurements (paper §6.4) and the KLOC
        column of the offline-overhead table (Fig 5).
        """
        return sum(fn.instruction_count() for fn in self.functions.values())

    def function_names(self) -> List[str]:
        return sorted(self.functions)

    def __repr__(self) -> str:
        return (
            f"<Module {self.name!r}: {len(self.functions)} functions, "
            f"{self.instruction_count()} instructions>"
        )
