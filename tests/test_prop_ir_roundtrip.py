"""Property-based round-trip tests for the textual IR.

Random modules — arithmetic chains, memory traffic, calls, persistence
ops — must survive print -> parse -> print at a fixed point, and the
re-parsed module must execute identically.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.interp import Interpreter
from repro.ir import (
    I64,
    ModuleBuilder,
    PTR,
    format_module,
    parse_module,
    verify_module,
)

#: program steps for the generator
gen_step = st.tuples(
    st.sampled_from(
        ["add", "mul", "xor", "store", "load", "flush", "fence", "call", "emit"]
    ),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=9999),
)


def build(steps):
    mb = ModuleBuilder("gen")
    helper = mb.function("twice", [("x", I64)], I64, source_file="g.c")
    helper.ret(helper.mul(helper.function.args[0], 2))

    b = mb.function("main", [], I64, source_file="g.c")
    base = b.call("pm_alloc", [256], PTR)
    acc = b.add(0, 1)
    for op, slot, value in steps:
        target = b.gep(base, slot * 64)
        if op in ("add", "mul", "xor"):
            acc = b.binop(op, acc, value)
        elif op == "store":
            b.store(acc, target)
        elif op == "load":
            acc = b.add(b.load(target), value)
        elif op == "flush":
            b.flush(target)
        elif op == "fence":
            b.fence()
        elif op == "call":
            acc = b.call("twice", [acc], I64)
        else:
            b.call("emit", [acc])
    b.call("emit", [acc])
    b.ret(acc)
    return mb.module


def run(module):
    interp = Interpreter(module)
    result = interp.call("main")
    return result.value, list(interp.output)


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(gen_step, max_size=20))
def test_print_parse_fixpoint(steps):
    module = build(steps)
    text1 = format_module(module)
    reparsed = parse_module(text1)
    verify_module(reparsed)
    assert format_module(parse_module(format_module(reparsed))) == format_module(
        reparsed
    )


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(gen_step, max_size=20))
def test_reparsed_module_executes_identically(steps):
    module = build(steps)
    reparsed = parse_module(format_module(module))
    assert run(module) == run(reparsed)


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(gen_step, max_size=20))
def test_reparsed_module_produces_same_bug_reports(steps):
    from repro.detect import pmemcheck_run

    module = build(steps)
    reparsed = parse_module(format_module(module))

    def key(bug):
        return (bug.store.function, bug.store.loc.line, bug.kind)

    original, _, _ = pmemcheck_run(module, lambda i: i.call("main"))
    again, _, _ = pmemcheck_run(reparsed, lambda i: i.call("main"))
    assert {key(b) for b in original.bugs} == {key(b) for b in again.bugs}
