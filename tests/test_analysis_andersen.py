"""Unit tests for Andersen's points-to analysis."""

from repro.analysis import PointsTo, UNKNOWN_SITE
from repro.ir import I64, ModuleBuilder, PTR


def test_alloc_sites_distinct():
    mb = ModuleBuilder("a")
    b = mb.function("main", [], I64)
    p = b.call("pm_alloc", [64], PTR)
    q = b.call("vol_alloc", [64], PTR)
    b.ret(0)
    pts = PointsTo(mb.module)
    sp, sq = pts.sites_of(p), pts.sites_of(q)
    assert len(sp) == 1 and len(sq) == 1
    assert next(iter(sp)).space == "pm"
    assert next(iter(sq)).space == "vol"
    assert not pts.may_alias(p, q)


def test_gep_preserves_target():
    mb = ModuleBuilder("a")
    b = mb.function("main", [], I64)
    p = b.call("pm_alloc", [64], PTR)
    g = b.gep(p, 8)
    b.ret(0)
    pts = PointsTo(mb.module)
    assert pts.sites_of(g) == pts.sites_of(p)
    assert pts.may_alias(g, p)


def test_argument_flow_through_calls():
    mb = ModuleBuilder("a")
    b = mb.function("callee", [("q", PTR)], I64)
    b.store(1, b.function.args[0])
    b.ret(0)
    b = mb.function("main", [], I64)
    p = b.call("pm_alloc", [64], PTR)
    v = b.call("vol_alloc", [64], PTR)
    b.call("callee", [p], I64)
    b.call("callee", [v], I64)
    b.ret(0)
    pts = PointsTo(mb.module)
    callee_arg = mb.module.get_function("callee").args[0]
    spaces = {s.space for s in pts.sites_of(callee_arg)}
    assert spaces == {"pm", "vol"}


def test_return_value_flow():
    mb = ModuleBuilder("a")
    b = mb.function("make", [], PTR)
    b.ret(b.call("pm_alloc", [64], PTR))
    b = mb.function("main", [], I64)
    p = b.call("make", [], PTR)
    b.ret(0)
    pts = PointsTo(mb.module)
    assert {s.space for s in pts.sites_of(p)} == {"pm"}


def test_pointers_through_memory():
    """Store a pointer into a slot, load it back: heap constraints."""
    mb = ModuleBuilder("a")
    b = mb.function("main", [], I64)
    slot = b.alloca(8)
    p = b.call("pm_alloc", [64], PTR)
    b.store(p, slot, PTR)
    loaded = b.load(slot, PTR)
    b.ret(0)
    pts = PointsTo(mb.module)
    assert pts.sites_of(loaded) == pts.sites_of(p)


def test_pointer_chains_through_pm():
    """Entries linked through PM (the hash-chain pattern)."""
    mb = ModuleBuilder("a")
    b = mb.function("main", [], I64)
    bucket = b.call("pm_alloc", [8], PTR)
    entry = b.call("pm_alloc", [64], PTR)
    b.store(entry, bucket, PTR)
    walked = b.load(bucket, PTR)
    b.store(7, walked)
    b.ret(0)
    pts = PointsTo(mb.module)
    assert pts.may_alias(walked, entry)
    assert {s.space for s in pts.sites_of(walked)} == {"pm"}


def test_select_union():
    mb = ModuleBuilder("a")
    b = mb.function("main", [("c", I64)], I64)
    p = b.call("pm_alloc", [64], PTR)
    v = b.call("vol_alloc", [64], PTR)
    cond = b.icmp("ne", b.function.args[0], 0)
    chosen = b.select(cond, p, v)
    b.ret(0)
    pts = PointsTo(mb.module)
    assert pts.sites_of(chosen) == pts.sites_of(p) | pts.sites_of(v)


def test_inttoptr_is_unknown():
    mb = ModuleBuilder("a")
    b = mb.function("main", [], I64)
    p = b.call("pm_alloc", [64], PTR)
    as_int = b.cast("ptrtoint", p, I64)
    back = b.cast("inttoptr", as_int, PTR)
    b.ret(0)
    pts = PointsTo(mb.module)
    assert UNKNOWN_SITE in pts.sites_of(back)
    # unknown aliases everything
    assert pts.may_alias(back, p)


def test_globals_are_singleton_sites():
    mb = ModuleBuilder("a")
    table = mb.global_("table", 64, "pm")
    b = mb.function("main", [], I64)
    g = b.gep(table, 8)
    b.ret(0)
    pts = PointsTo(mb.module)
    sites = pts.sites_of(g)
    assert len(sites) == 1 and next(iter(sites)).key == "global:table"


def test_pm_root_shared_site():
    mb = ModuleBuilder("a")
    b = mb.function("f", [], PTR)
    b.ret(b.call("pm_root", [64], PTR))
    b = mb.function("g", [], PTR)
    b.ret(b.call("pm_root", [64], PTR))
    pts = PointsTo(mb.module)
    f_root = mb.module.get_function("f").calls()[0]
    g_root = mb.module.get_function("g").calls()[0]
    assert pts.sites_of(f_root) == pts.sites_of(g_root)


def test_may_point_to_space_conservative_on_empty():
    mb = ModuleBuilder("a")
    b = mb.function("f", [("p", PTR)], I64)
    b.ret(0)
    pts = PointsTo(mb.module)
    arg = mb.module.get_function("f").args[0]
    # No callers: empty points-to set, conservatively maybe-anything.
    assert pts.may_point_to_space(arg, "pm")
    assert pts.may_point_to_space(arg, "vol")
