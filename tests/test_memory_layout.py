"""Unit tests for the simulated address space."""

import pytest

from repro.errors import MemoryError_, SegmentationFault
from repro.memory import (
    AddressSpace,
    CACHE_LINE,
    PM_BASE,
    STACK_BASE,
    VOL_BASE,
    line_of,
    lines_covering,
)


class TestLineMath:
    def test_line_of(self):
        assert line_of(PM_BASE) == PM_BASE
        assert line_of(PM_BASE + 63) == PM_BASE
        assert line_of(PM_BASE + 64) == PM_BASE + 64

    def test_lines_covering_single(self):
        assert lines_covering(PM_BASE + 8, 8) == [PM_BASE]

    def test_lines_covering_straddle(self):
        assert lines_covering(PM_BASE + 60, 8) == [PM_BASE, PM_BASE + 64]

    def test_lines_covering_large(self):
        lines = lines_covering(PM_BASE, 3 * CACHE_LINE)
        assert lines == [PM_BASE, PM_BASE + 64, PM_BASE + 128]

    def test_lines_covering_zero(self):
        assert lines_covering(PM_BASE, 0) == []


class TestAllocation:
    def test_regions_disjoint(self):
        space = AddressSpace()
        vol = space.alloc_vol(64)
        pm = space.alloc_pm(64)
        stack = space.alloc_stack(64)
        assert VOL_BASE <= vol < STACK_BASE
        assert STACK_BASE <= stack < PM_BASE
        assert pm >= PM_BASE

    def test_alignment(self):
        space = AddressSpace()
        space.alloc_pm(3)
        second = space.alloc_pm(8, align=64)
        assert second % 64 == 0

    def test_exhaustion(self):
        space = AddressSpace(pm_size=128)
        space.alloc_pm(100)
        with pytest.raises(MemoryError_):
            space.alloc_pm(100)

    def test_bad_size(self):
        space = AddressSpace()
        with pytest.raises(MemoryError_):
            space.alloc_vol(0)

    def test_stack_mark_release(self):
        space = AddressSpace()
        mark = space.stack_mark()
        first = space.alloc_stack(64)
        space.stack_release(mark)
        second = space.alloc_stack(64)
        assert first == second


class TestAccess:
    def test_int_roundtrip_little_endian(self):
        space = AddressSpace()
        addr = space.alloc_vol(16)
        space.write_int(addr, 8, 0x0102030405060708)
        assert space.read_int(addr, 8) == 0x0102030405060708
        assert space.read_int(addr, 1) == 0x08  # little endian low byte

    def test_bytes_roundtrip(self):
        space = AddressSpace()
        addr = space.alloc_pm(32)
        space.write_bytes(addr, b"hello world")
        assert space.read_bytes(addr, 11) == b"hello world"

    def test_copy(self):
        space = AddressSpace()
        src = space.alloc_vol(16)
        dst = space.alloc_pm(16)
        space.write_bytes(src, b"0123456789abcdef")
        space.copy(dst, src, 16)
        assert space.read_bytes(dst, 16) == b"0123456789abcdef"

    def test_unmapped_access(self):
        space = AddressSpace()
        with pytest.raises(SegmentationFault):
            space.read_int(0x10, 8)
        with pytest.raises(SegmentationFault):
            space.write_int(0xDEAD, 8, 1)

    def test_out_of_region_access(self):
        space = AddressSpace(pm_size=64)
        addr = space.alloc_pm(64)
        with pytest.raises(SegmentationFault):
            space.read_bytes(addr + 60, 8)  # crosses the region end

    def test_write_truncates_value(self):
        space = AddressSpace()
        addr = space.alloc_vol(8)
        space.write_int(addr, 1, 0x1FF)
        assert space.read_int(addr, 1) == 0xFF


class TestSpaceQueries:
    def test_is_pm(self):
        space = AddressSpace()
        assert space.is_pm(space.alloc_pm(8))
        assert not space.is_pm(space.alloc_vol(8))
        assert not space.is_pm(space.alloc_stack(8))

    def test_space_of(self):
        space = AddressSpace()
        assert space.space_of(space.alloc_pm(8)) == "pm"
        assert space.space_of(space.alloc_stack(8)) == "vol"

    def test_pm_bounds(self):
        space = AddressSpace(pm_size=1 << 20)
        lo, hi = space.pm_bounds()
        assert hi - lo == 1 << 20
