"""Structured span tracing over an injectable monotonic clock.

A *span* is a named, nested interval of work — ``phase.apply`` inside
``task`` inside ``batch`` — and an *event* is a named instant
(``supervisor.retry``).  Both are emitted as flat JSONL records so the
output is greppable and diffable without a viewer.

The clock is injectable: production uses ``time.monotonic``, tests use
:class:`ManualClock` (a deterministic counter), which makes the entire
span output **byte-stable** — the determinism tests literally compare
JSONL bytes of two instrumented runs.  That property is also the
guard-rail for the subsystem's core contract: spans carry timing and
structure only, never repair results, so they can never feed back into
the canonical batch report.

Record schema (see :mod:`repro.obs.sink` for the validator):

- span:  ``{"type": "span", "span_id": n, "parent_id": m, "name": s,
  "start": t0, "end": t1, "duration": t1 - t0, "attrs": {...}?,
  "error": "ExcType"?}`` — emitted when the span *closes* (children
  therefore precede parents, as in Chrome trace format);
- event: ``{"type": "event", "name": s, "ts": t, "parent_id": m,
  "attrs": {...}?}``.

``parent_id`` 0 means top-level.  Attribute values must be JSON
scalars; the tracer coerces anything else through ``str`` so a stray
object can never make a record unserializable.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional


class ManualClock:
    """A deterministic monotonic clock for tests.

    Every reading advances time by ``step``, so the k-th clock access
    of a run always returns the same value — making span output a pure
    function of the instrumented code path.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self._now = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        now = self._now
        self._now += self._step
        return now


def _clean_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON scalars (observability must
    never raise because a caller attached a rich object)."""
    cleaned: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            cleaned[key] = value
        else:
            cleaned[key] = str(value)
    return cleaned


class _SpanHandle:
    """Context manager for one open span (re-entry not supported)."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.start = 0.0

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(_clean_attrs(attrs))

    def __enter__(self) -> "_SpanHandle":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self, exc_type)


class Tracer:
    """Builds nested spans and point events; emits them as records.

    :param clock: a zero-argument callable returning monotonic seconds
        (default ``time.monotonic``; tests inject :class:`ManualClock`).
    :param sink: anything with ``emit(record: dict)``; when None,
        finished records buffer in :attr:`records` instead.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sink: Optional[Any] = None,
    ):
        self.clock = clock or time.monotonic
        self.sink = sink
        #: finished records, oldest first (only when no sink is attached)
        self.records: List[Dict[str, Any]] = []
        self._stack: List[int] = []
        self._next_id = 1

    # -- span plumbing --------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """A context manager timing the enclosed block."""
        return _SpanHandle(self, name, _clean_attrs(attrs))

    def _open(self, handle: _SpanHandle) -> None:
        handle.span_id = self._next_id
        self._next_id += 1
        handle.parent_id = self._stack[-1] if self._stack else 0
        self._stack.append(handle.span_id)
        handle.start = self.clock()

    def _close(self, handle: _SpanHandle, exc_type) -> None:
        end = self.clock()
        if self._stack and self._stack[-1] == handle.span_id:
            self._stack.pop()
        record: Dict[str, Any] = {
            "type": "span",
            "span_id": handle.span_id,
            "parent_id": handle.parent_id,
            "name": handle.name,
            "start": handle.start,
            "end": end,
            "duration": end - handle.start,
        }
        if handle.attrs:
            record["attrs"] = handle.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._emit(record)

    # -- events ---------------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Record a named instant under the currently open span."""
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "ts": self.clock(),
            "parent_id": self._stack[-1] if self._stack else 0,
        }
        cleaned = _clean_attrs(attrs)
        if cleaned:
            record["attrs"] = cleaned
        self._emit(record)

    # -- output ---------------------------------------------------------------

    def _emit(self, record: Dict[str, Any]) -> None:
        if self.sink is not None:
            self.sink.emit(record)
        else:
            self.records.append(record)
