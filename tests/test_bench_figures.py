"""Unit tests for the table renderers (cheap checks that every figure
renderer produces complete, well-formed output)."""

from repro.bench import (
    REDIS_FULL,
    REDIS_INTRA,
    REDIS_PM,
    effectiveness_table,
    fig3_table,
    fig4_table,
    fig5_table,
    fig6_table,
    heuristic_table,
    run_case,
)
from repro.bench.harness import Fig4Result, OverheadRow
from repro.core.hippocrates import FixReport
from repro.core.fixes import FixPlan
from repro.corpus import pclht_case, pmdk_cases
from repro.workloads import RunResult


def test_effectiveness_table():
    outcomes = [run_case(pclht_case())]
    text = effectiveness_table(outcomes)
    assert "P-CLHT" in text and "TOTAL" in text
    assert text.count("\n") >= 4


def test_fig3_table():
    case = [c for c in pmdk_cases() if c.case_id == "PMDK-940"][0]
    text = fig3_table([run_case(case)])
    assert "PMDK-940" in text
    assert "functionally equivalent" in text


def test_fig4_table_from_synthetic_result():
    result = Fig4Result(record_count=10, operation_count=10, value_size=8)
    for variant, cycles in ((REDIS_PM, 100), (REDIS_FULL, 90), (REDIS_INTRA, 300)):
        result.results[variant] = {
            "Load": RunResult(operations=10, cycles=cycles * 10, steps=1)
        }
        result.reports[variant] = None
    text = fig4_table(result)
    assert "Load" in text and "RedisH-full" in text
    assert result.speedup_full_over_intra()["Load"] > 3.0
    assert result.full_vs_manual()["Load"] > 1.0


def test_fig5_table():
    rows = [OverheadRow("X", 1.5, 0.25, 12.0, 3)]
    text = fig5_table(rows)
    assert "X" in text and "0.250" in text


def test_fig6_table():
    report = FixReport(plan=FixPlan(), heuristic="full")
    report.ir_size_before = 100
    report.ir_size_after = 110
    report.inserted_instructions = 10
    report.functions_created = ["memcpy_PM"]
    text = fig6_table(report)
    assert "10" in text and "memcpy_PM" in text and "10.000%" in text


def test_heuristic_table():
    text = heuristic_table([("A", True), ("B", False)])
    assert "identical" in text and "DIFFERENT" in text


def test_run_result_throughput_zero_guard():
    assert RunResult(operations=5, cycles=0, steps=0).throughput == 0.0
