"""Unit tests for the cycle-cost model."""

from repro.interp import CostModel, Interpreter
from repro.ir import I64, ModuleBuilder, PTR


def build_flushy():
    mb = ModuleBuilder("t")
    b = mb.function("main", [], I64)
    p = b.call("pm_alloc", [128], PTR)
    b.store(1, p)
    b.flush(p)            # writeback (full cost)
    b.flush(p)            # coalesced (cheap)
    b.fence()
    b.flush(p)            # redundant (cheap)
    v = b.call("vol_alloc", [64], PTR)
    b.store(1, v)
    b.flush(v)            # volatile (full cost, no WPQ)
    b.ret(0)
    return mb.module


def test_flush_cost_tiers():
    model = CostModel()
    interp = Interpreter(build_flushy(), cost_model=model)
    interp.call("main")
    counts = interp.costs.counts
    assert counts["flush"] == 4
    # 2 full-cost flushes (PM writeback + volatile), 2 cheap ones.
    flush_cycles = 2 * model.flush + 2 * model.flush_clean
    # Verify by recomputing total minus everything else is consistent:
    # instead check the machine's categorization directly.
    assert interp.machine.volatile_flushes == 1
    assert interp.machine.cache.clean_flush_count == 1  # the redundant one
    assert flush_cycles <= interp.costs.cycles


def test_pm_store_premium():
    model = CostModel()

    def module(space):
        mb = ModuleBuilder("t")
        b = mb.function("main", [], I64)
        p = b.call(f"{space}_alloc", [64], PTR)
        b.store(1, p)
        b.ret(0)
        return mb.module

    pm = Interpreter(module("pm"), cost_model=model)
    pm.call("main")
    vol = Interpreter(module("vol"), cost_model=model)
    vol.call("main")
    assert pm.costs.cycles - vol.costs.cycles == model.pm_store_extra


def test_fence_per_line_cost():
    model = CostModel()
    mb = ModuleBuilder("t")
    b = mb.function("main", [], I64)
    p = b.call("pm_alloc", [256], PTR)
    for i in range(3):
        target = b.gep(p, i * 64)
        b.store(1, target)
        b.flush(target)
    b.fence()
    b.ret(0)
    interp = Interpreter(mb.module, cost_model=model)
    interp.call("main")
    # The fence drained 3 lines.
    assert interp.machine.image.writebacks == 3


def test_custom_cost_model_respected():
    model = CostModel(flush=1000)
    mb = ModuleBuilder("t")
    b = mb.function("main", [], I64)
    p = b.call("pm_alloc", [64], PTR)
    b.store(1, p)
    b.flush(p)
    b.ret(0)
    interp = Interpreter(mb.module, cost_model=model)
    interp.call("main")
    assert interp.costs.cycles >= 1000


def test_counts_summary():
    interp = Interpreter(build_flushy())
    interp.call("main")
    summary = interp.costs.summary()
    assert summary["cycles"] == interp.costs.cycles
    assert summary["flush"] == 4


def test_cost_model_as_dict():
    d = CostModel().as_dict()
    assert d["flush"] == 60 and "flush_clean" in d and "fence_per_line" in d
