"""Cycle-cost model for executed IR.

The paper's performance results (Fig. 4) depend on one ratio: ordinary
volatile work is cheap, while cache-line flushes and memory fences are
expensive — *and a flush costs the same whether the line holds PM or
volatile data*.  That is precisely why intraprocedural fixes inside a
shared helper like ``memcpy`` are disastrous (every volatile invocation
pays flush costs) and why the hoisting heuristic exists.

The default latencies are drawn from published Optane/x86 measurements
(CLWB ~ tens of ns, SFENCE drains the write-pending queue) scaled to
abstract cycles; the *shape* of results is insensitive to the exact
values, which benchmarks can override.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CostModel:
    """Abstract cycle costs per executed operation."""

    load: int = 1
    store: int = 1
    arith: int = 1
    compare: int = 1
    branch: int = 1
    call: int = 3
    ret: int = 1
    alloca: int = 1
    gep: int = 1
    select: int = 1
    cast: int = 1
    intrinsic: int = 3
    #: A flush of a dirty line (PM write-back) or of any volatile line
    #: (DRAM write-back): paid regardless of the target's region.
    flush: int = 60
    #: A flush of an already-clean or already-queued PM line: CLWB hits
    #: the cache / write-pending queue and schedules no new write-back
    #: (a few cycles on real hardware).
    flush_clean: int = 2
    #: A store fence's base cost; the per-pending-line drain cost is
    #: added on top (an SFENCE with an empty WPQ is nearly free).
    fence: int = 20
    #: Added per cache line drained by a fence (write-pending-queue cost).
    fence_per_line: int = 12
    #: PM store premium over a DRAM store (Optane write latency).
    pm_store_extra: int = 3
    #: Extra cost of a clflush write-back: the instruction serializes
    #: against later accesses to the line instead of queueing in the
    #: WPQ, so it cannot overlap (why clwb+fence is preferred).
    clflush_serial: int = 25

    def as_dict(self) -> Dict[str, int]:
        return {
            "load": self.load,
            "store": self.store,
            "arith": self.arith,
            "compare": self.compare,
            "branch": self.branch,
            "call": self.call,
            "ret": self.ret,
            "alloca": self.alloca,
            "gep": self.gep,
            "select": self.select,
            "cast": self.cast,
            "intrinsic": self.intrinsic,
            "flush": self.flush,
            "flush_clean": self.flush_clean,
            "clflush_serial": self.clflush_serial,
            "fence": self.fence,
            "fence_per_line": self.fence_per_line,
            "pm_store_extra": self.pm_store_extra,
        }


@dataclass
class CostCounter:
    """Accumulates cost and operation counts during a run."""

    model: CostModel = field(default_factory=CostModel)
    cycles: int = 0
    counts: Dict[str, int] = field(default_factory=dict)

    def charge(self, kind: str, amount: int) -> None:
        self.cycles += amount
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def charge_extra(self, amount: int) -> None:
        self.cycles += amount

    def summary(self) -> Dict[str, int]:
        summary = dict(self.counts)
        summary["cycles"] = self.cycles
        return summary
