"""The reproduction IR: a small LLVM-like intermediate representation.

This package provides the program representation every other subsystem
works on: the bug-finding tools trace executions of IR programs, and
Hippocrates repairs durability bugs by rewriting IR (inserting flushes
and fences, cloning subprograms).

Public API re-exported here:

- types: :data:`I1`/:data:`I8`/:data:`I16`/:data:`I32`/:data:`I64`/:data:`PTR`/:data:`VOID`
- values: :class:`Constant`, :class:`Argument`, :class:`GlobalVariable`
- instructions: :class:`Store`, :class:`Load`, :class:`Flush`, :class:`Fence`, ...
- structure: :class:`BasicBlock`, :class:`Function`, :class:`Module`
- construction: :class:`IRBuilder`, :class:`ModuleBuilder`
- text: :func:`format_module`, :func:`parse_module`
- checking: :func:`verify_module`, :func:`verify_function`
"""

from .basicblock import BasicBlock
from .builder import IRBuilder, ModuleBuilder
from .debuginfo import DebugLoc, LineAllocator, SYNTHETIC
from .function import Function
from .instructions import (
    Alloca,
    BINARY_OPS,
    BinOp,
    Branch,
    Call,
    Cast,
    FENCE_KINDS,
    FLUSH_KINDS,
    Fence,
    Flush,
    Gep,
    ICMP_PREDS,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    Trap,
    const,
)
from .module import Module
from .parser import parse_module
from .printer import format_function, format_instruction, format_module
from .types import (
    I1,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PTR,
    PointerType,
    Type,
    VOID,
    VoidType,
    type_from_name,
)
from .values import Argument, Constant, GlobalVariable, NULL, Value
from .verifier import verify_function, verify_module

__all__ = [
    "Alloca",
    "Argument",
    "BasicBlock",
    "BinOp",
    "BINARY_OPS",
    "Branch",
    "Call",
    "Cast",
    "Constant",
    "DebugLoc",
    "Fence",
    "FENCE_KINDS",
    "Flush",
    "FLUSH_KINDS",
    "Function",
    "Gep",
    "GlobalVariable",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "ICmp",
    "ICMP_PREDS",
    "Instruction",
    "IntType",
    "IRBuilder",
    "Jump",
    "LineAllocator",
    "Load",
    "Module",
    "ModuleBuilder",
    "NULL",
    "PointerType",
    "PTR",
    "Ret",
    "Select",
    "Store",
    "SYNTHETIC",
    "Trap",
    "Type",
    "type_from_name",
    "Value",
    "VoidType",
    "VOID",
    "const",
    "format_function",
    "format_instruction",
    "format_module",
    "parse_module",
    "verify_function",
    "verify_module",
]
