"""E5 — Fig. 5: offline overhead of running Hippocrates.

The paper reports seconds-to-minutes runtime and <1 GB peak memory per
target; the reproduction's targets are proportionally smaller, so the
assertions are on the same *feasibility* property (trivially within a
development cycle: seconds and tens of MB here).
"""

from repro.apps import KVStore, build_kvstore
from repro.bench import fig5_table, redis_trace_workload, run_fig5
from repro.core import Hippocrates

from conftest import save_table


def test_fig5_offline_overhead(benchmark):
    rows = run_fig5()
    save_table("fig5_overhead.txt", fig5_table(rows))

    targets = {row.target for row in rows}
    assert "PMDK (Unit Tests)" in targets
    assert "P-CLHT" in targets
    assert "memcached-pm" in targets
    assert "Redis-pmem" in targets
    for row in rows:
        assert row.seconds < 60, row
        assert row.peak_mb < 512, row
        assert row.bugs_fixed >= 1
        assert row.ir_kinstr > 0

    # Benchmark kernel: the complete Hippocrates pipeline on Redis
    # (trace collection excluded, exactly as the paper measures it).
    module = build_kvstore("noflush")
    store = KVStore(module)
    redis_trace_workload(store)
    trace = store.finish()
    machine = store.machine

    def fix_fresh_redis():
        fresh = build_kvstore("noflush")
        return Hippocrates(fresh, trace, heuristic="full").fix()

    report = benchmark(fix_fresh_redis)
    assert report.bugs_fixed > 0
