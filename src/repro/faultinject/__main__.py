"""Command-line entry: run the fault-injection campaign.

::

    PYTHONPATH=src python -m repro.faultinject

Prints one line per (case, plan) run and exits nonzero if any
resilience invariant was violated.
"""

from __future__ import annotations

import sys

from .campaign import run_campaign


def main() -> int:
    result = run_campaign(progress=lambda record: print(record.describe()))
    print(result.summary())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
