"""Call frames for the IR interpreter."""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.values import Value


class Frame:
    """One activation of an IR function.

    :ivar values: runtime value of every argument and instruction result
        defined so far (all values are Python ints).
    :ivar current: the instruction currently executing; for caller
        frames this remains the call instruction, which is exactly what
        a stack trace needs.
    :ivar stack_mark: the stack region watermark at entry, restored on
        return (releases this frame's allocas).
    """

    __slots__ = ("function", "block", "index", "values", "current", "stack_mark")

    def __init__(self, function: Function, stack_mark: int):
        self.function = function
        self.block: BasicBlock = function.entry
        self.index = 0
        self.values: Dict[Value, int] = {}
        self.current: Optional[Instruction] = None
        self.stack_mark = stack_mark

    def jump_to(self, block: BasicBlock) -> None:
        self.block = block
        self.index = 0

    def __repr__(self) -> str:
        at = self.current.iid if self.current is not None else "?"
        return f"<Frame @{self.function.name} at #{at}>"
