"""E4 — Fig. 4: YCSB throughput of the three persistent Redis variants.

Shape targets from the paper (§6.3):

- RedisH-full matches or exceeds Redis-pm on every workload, with its
  largest win on Load (the paper reports +7%; the simulator lands in
  the same low-single-digit range);
- RedisH-full is 2.4-11.7x faster than RedisH-intra (the simulator's
  spread sits inside / near that band, largest on read-heavy
  workloads);
- roughly a quarter of RedisH-full's fixes are interprocedural
  (paper: 12/50), at hoist depths 1-2.

The benchmark kernel is a 25-operation YCSB-A slice on the
RedisH-full build.
"""

from repro.apps import KVStore
from repro.bench import (
    REDIS_FULL,
    REDIS_INTRA,
    REDIS_PM,
    build_redis_variant,
    fig4_table,
)
from repro.workloads import CORE_WORKLOADS, FIG4_ORDER, execute, generate_load, generate_run

from conftest import save_table


def test_fig4_redis_ycsb(benchmark, fig4_result):
    result = fig4_result
    save_table("fig4_redis_ycsb.txt", fig4_table(result))

    assert list(result.results[REDIS_PM].keys()) == FIG4_ORDER

    # RedisH-full ≥ Redis-pm on every workload (within 2% noise).
    for workload, ratio in result.full_vs_manual().items():
        assert ratio >= 0.98, (workload, ratio)
    # ...and strictly ahead on Load, the most durability-heavy phase.
    assert result.full_vs_manual()["Load"] > 1.0

    # RedisH-full beats RedisH-intra everywhere, by a multi-x factor
    # on at least half the workloads.
    speedups = result.speedup_full_over_intra()
    assert all(s > 1.5 for s in speedups.values()), speedups
    assert sum(1 for s in speedups.values() if s >= 2.0) >= 4, speedups
    assert max(speedups.values()) >= 3.0

    # Fix-shape assertions (paper: 50 fixes, 12 interprocedural).
    full_report = result.reports[REDIS_FULL]
    intra_report = result.reports[REDIS_INTRA]
    assert full_report.interprocedural_count >= 2
    assert 0.05 < full_report.interprocedural_count / full_report.fixes_applied < 0.5
    assert all(1 <= d <= 2 for d in full_report.hoist_depths)
    assert intra_report.interprocedural_count == 0

    # Benchmark kernel: a YCSB-A slice on the repaired store.
    module, _ = build_redis_variant("full")
    store = KVStore(module)
    store.init(128, 1 << 22)
    execute(store, generate_load(100, 96))
    ops = generate_run(CORE_WORKLOADS["A"], 100, 25, 96, seed=3)

    benchmark(lambda: execute(store, ops))
