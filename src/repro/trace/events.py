"""PM trace events.

Hippocrates "expects a PM-specific execution trace where each event in
the trace includes the source line where the event occurred, the stack
trace at the time of the event, and PM-specific information" (§4.1).
These dataclasses are exactly that: every event carries its sequence
number, the IR instruction id, the source location, and the full call
stack at the time of the event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir.debuginfo import DebugLoc


@dataclass(frozen=True)
class StackFrame:
    """One frame of a call stack.

    For caller frames, ``iid``/``loc`` identify the *call site*.  For
    the innermost frame they identify the event's own instruction.
    """

    function: str
    iid: int
    loc: DebugLoc

    def __str__(self) -> str:
        return f"{self.function}@{self.loc}#{self.iid}"

    @classmethod
    def parse(cls, text: str) -> "StackFrame":
        head, _, iid = text.rpartition("#")
        function, _, loc = head.partition("@")
        return cls(function, int(iid), DebugLoc.parse(loc))


#: A call stack, outermost frame first, the event's own frame last.
CallStack = Tuple[StackFrame, ...]


@dataclass(frozen=True)
class TraceEvent:
    """Base class for all PM trace events."""

    seq: int
    iid: int
    loc: DebugLoc
    function: str
    stack: CallStack

    kind: str = "event"

    @property
    def caller_frames(self) -> CallStack:
        """The stack without the event's own frame."""
        return self.stack[:-1]


@dataclass(frozen=True)
class StoreEvent(TraceEvent):
    """A store; ``space`` distinguishes PM from volatile targets.

    pmemcheck only logs PM stores; the recorder follows suit unless
    asked to log everything (volatile stores are useful to some tests).
    ``nontemporal`` marks MOVNT stores, which need no flush but still
    need a fence.
    """

    addr: int = 0
    size: int = 0
    space: str = "pm"
    nontemporal: bool = False
    kind: str = "store"


@dataclass(frozen=True)
class FlushEvent(TraceEvent):
    """A cache-line flush (clwb / clflushopt / clflush).

    ``had_work`` is False for a redundant flush of a clean line — the
    detector reports those as performance diagnostics.
    """

    addr: int = 0
    line_addr: int = 0
    flush_kind: str = "clwb"
    had_work: bool = True
    kind: str = "flush"


@dataclass(frozen=True)
class FenceEvent(TraceEvent):
    """A memory fence (sfence / mfence)."""

    fence_kind: str = "sfence"
    kind: str = "fence"


@dataclass(frozen=True)
class BoundaryEvent(TraceEvent):
    """A durability boundary: the instruction *I* of the paper's
    X -> F(X) -> M -> I obligation.

    Boundaries come from explicit ``checkpoint`` calls in the program
    under test (modelling transaction commits, replies to clients, and
    other points by which prior PM updates must be durable) and from
    program exit.
    """

    label: str = "exit"
    kind: str = "boundary"


def innermost(event: TraceEvent) -> Optional[StackFrame]:
    """The event's own frame (None for synthetic events)."""
    return event.stack[-1] if event.stack else None
