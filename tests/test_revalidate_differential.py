"""Differential equivalence: incremental revalidation on vs off.

The incremental engine's contract is *byte-identity*: for every corpus
case, the full repair pipeline must produce identical canonical records
— detection counts, fix lists, do-no-harm verdicts, module digests —
whether post-fix revalidation re-executes the workload or goes through
the synthesis/replay tiers.  These tests run the whole pipeline both
ways and diff the bytes, then check that the engine actually took the
fast tier where it should (flush/fence-only repairs) and fell back
where it must (structural repairs).
"""

from __future__ import annotations

import json
import re

import pytest

from repro.core.hippocrates import Hippocrates
from repro.corpus.bugs import all_cases
from repro.detect import pmemcheck_run
from repro.faultinject.resume import run_kill_resume
from repro.revalidate import IncrementalRevalidator
from repro.supervisor import RepairTask, SupervisorConfig, run_batch
from repro.supervisor.tasks import corpus_tasks, execute_task, run_case

#: Cases whose repairs are flush/fence-only; every other corpus case
#: also needs a structural (clone/retarget) fix.  Both kinds now take
#: the synthesis tier — flush/fence via event splicing, structural via
#: callee-span rewriting — with zero re-execution.
SYNTH_CASES = {"PMDK-452", "PMDK-940", "PMDK-943", "P-CLHT"}
STRUCTURAL_CASES = sorted(
    case.case_id for case in all_cases() if case.case_id not in SYNTH_CASES
)

CASE_IDS = [case.case_id for case in all_cases()]


def _task(case_id: str, incremental: bool) -> RepairTask:
    return RepairTask(
        task_id=case_id,
        kind="corpus",
        case_id=case_id,
        incremental_revalidate=incremental,
    )


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_records_byte_identical_on_vs_off(case_id):
    """The journaled record — the batch layer's unit of truth — must not
    depend on how revalidation ran."""
    on = execute_task(_task(case_id, True)).record
    off = execute_task(_task(case_id, False)).record
    assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_outcome_equivalence_and_expected_mode(case_id):
    case = next(c for c in all_cases() if c.case_id == case_id)
    inc = run_case(case, incremental_revalidate=True)
    ref = run_case(case, incremental_revalidate=False)

    assert inc.reports_found == ref.reports_found
    assert inc.reports_after_fix == ref.reports_after_fix
    assert inc.fix_kinds == ref.fix_kinds
    assert inc.comparison == ref.comparison
    assert inc.fixed == ref.fixed
    # iids are globally unique across module builds, so strip them from
    # the human descriptions before comparing the two pipelines.
    def scrubbed(outcome):
        return [
            re.sub(r"#\d+", "#N", f.describe())
            for f in outcome.fix_report.plan.fixes
        ]

    assert scrubbed(inc) == scrubbed(ref)

    assert ref.revalidation is None  # escape hatch: engine never built
    assert inc.revalidation is not None
    mode = inc.revalidation["mode"]
    assert mode == "synthesized"
    assert inc.revalidation["chains_rechecked"] >= 1
    assert inc.revalidation["segments_replayed"] == 0


@pytest.mark.parametrize(
    "case_id", sorted(SYNTH_CASES) + STRUCTURAL_CASES
)
def test_synthesized_trace_and_detection_are_byte_exact(case_id):
    """Against the *same repaired module instance*, the synthesized
    trace must equal a from-scratch run event for event, and the
    detection records must match exactly."""
    case = next(c for c in all_cases() if c.case_id == case_id)
    module = case.build()
    engine = IncrementalRevalidator(case.drive)
    _, trace, interp = engine.record(module)
    fixer = Hippocrates(module, trace, interp.machine, revalidator=engine)
    fixer.apply(fixer.compute_fixes())
    outcome = fixer.revalidate()
    assert outcome.mode == "synthesized"

    scratch, scratch_trace, _ = pmemcheck_run(module, case.drive)
    assert len(outcome.trace.events) == len(scratch_trace.events)
    for ours, theirs in zip(outcome.trace.events, scratch_trace.events):
        assert ours == theirs
    assert [b.as_record() for b in outcome.detection.bugs] == [
        b.as_record() for b in scratch.bugs
    ]
    assert [p.describe() for p in outcome.detection.perf] == [
        p.describe() for p in scratch.perf
    ]


def test_revalidate_is_idempotent():
    """A second revalidation after the first (no new commits) is a
    baseline hit with the same detection."""
    case = next(c for c in all_cases() if c.case_id == "PMDK-452")
    module = case.build()
    engine = IncrementalRevalidator(case.drive)
    _, trace, interp = engine.record(module)
    fixer = Hippocrates(module, trace, interp.machine, revalidator=engine)
    fixer.apply(fixer.compute_fixes())
    first = fixer.revalidate()
    assert first.mode == "synthesized"
    second = fixer.revalidate()
    # The module did not change since the recording was installed, but
    # the recording predates the fixes — so the engine re-synthesizes
    # (same witness, same baseline) and must reach the same verdict.
    assert second.mode == first.mode
    assert [b.as_record() for b in second.detection.bugs] == [
        b.as_record() for b in first.detection.bugs
    ]


# ---------------------------------------------------------------------------
# batch + kill/resume interaction
# ---------------------------------------------------------------------------

#: a small mixed batch: two synthesis-tier cases + one structural
BATCH_CASES = ["PMDK-452", "PMDK-940", "PMDK-447"]


def _fast_config() -> SupervisorConfig:
    return SupervisorConfig(
        mode="inprocess", max_retries=1, backoff_base=0.0, task_timeout=600.0
    )


def test_batch_reports_byte_identical_across_flag(tmp_path):
    on_tasks = corpus_tasks(BATCH_CASES, incremental_revalidate=True)
    off_tasks = corpus_tasks(BATCH_CASES, incremental_revalidate=False)
    on = run_batch(on_tasks, journal_path=str(tmp_path / "on.journal"),
                   config=_fast_config())
    off = run_batch(off_tasks, journal_path=str(tmp_path / "off.journal"),
                    config=_fast_config())
    assert on.canonical_json() == off.canonical_json()


@pytest.mark.parametrize("torn", [False, True])
def test_kill_mid_incremental_batch_resumes_byte_identical(tmp_path, torn):
    """A worker killed mid-incremental-revalidation resumes to the same
    canonical bytes: the resumed task re-records its baseline and
    dependency index from pristine state — nothing half-built is ever
    trusted.  Boundary 4 lands after the first task-done, so the kill
    interrupts the second task (PMDK-940, a synthesis-tier case)."""
    tasks = corpus_tasks(BATCH_CASES, incremental_revalidate=True)
    baseline = run_batch(
        tasks, journal_path=str(tmp_path / "base.journal"),
        config=_fast_config(),
    ).canonical_json()
    suffix = "torn" if torn else "plain"
    record = run_kill_resume(
        tasks,
        str(tmp_path / f"kill-{suffix}.journal"),
        boundary=4,
        baseline_bytes=baseline,
        torn=torn,
    )
    assert record.ok, record.problems


def test_kill_resume_matches_non_incremental_baseline(tmp_path):
    """The strongest cross-check: kill an *incremental* batch, resume
    it, and compare against an uninterrupted *non-incremental* run."""
    off_tasks = corpus_tasks(BATCH_CASES, incremental_revalidate=False)
    baseline = run_batch(
        off_tasks, journal_path=str(tmp_path / "off.journal"),
        config=_fast_config(),
    ).canonical_json()
    on_tasks = corpus_tasks(BATCH_CASES, incremental_revalidate=True)
    record = run_kill_resume(
        on_tasks,
        str(tmp_path / "kill-on.journal"),
        boundary=4,
        baseline_bytes=baseline,
        torn=False,
    )
    assert record.ok, record.problems


# ---------------------------------------------------------------------------
# machine pooling
# ---------------------------------------------------------------------------


def test_batch_reports_byte_identical_across_machine_pool_flag(tmp_path):
    """Pooled buffer reuse is a pure allocation optimisation: the batch
    canonical report must not change with the pool disabled."""
    on_tasks = corpus_tasks(BATCH_CASES, machine_pool=True)
    off_tasks = corpus_tasks(BATCH_CASES, machine_pool=False)
    on = run_batch(on_tasks, journal_path=str(tmp_path / "pool-on.journal"),
                   config=_fast_config())
    off = run_batch(off_tasks, journal_path=str(tmp_path / "pool-off.journal"),
                    config=_fast_config())
    assert on.canonical_json() == off.canonical_json()


def test_kill_resume_pooled_matches_unpooled_baseline(tmp_path):
    """Kill a *pooled* batch mid-task, resume it, and compare against an
    uninterrupted *unpooled* run: reused buffers must never leak state
    into the canonical bytes, even across a death boundary."""
    off_tasks = corpus_tasks(BATCH_CASES, machine_pool=False)
    baseline = run_batch(
        off_tasks, journal_path=str(tmp_path / "nopool.journal"),
        config=_fast_config(),
    ).canonical_json()
    on_tasks = corpus_tasks(BATCH_CASES, machine_pool=True)
    record = run_kill_resume(
        on_tasks,
        str(tmp_path / "kill-pool.journal"),
        boundary=4,
        baseline_bytes=baseline,
        torn=False,
    )
    assert record.ok, record.problems
