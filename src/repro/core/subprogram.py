"""The persistent subprogram transformation (paper §4.2.4).

Given a call site chosen by the heuristic, this pass:

1. clones the callee (and, recursively, every transitively-called
   function that may store to PM) into ``<name>_PM`` variants;
2. inserts a ``clwb`` flush after every may-PM store inside the clones
   (the clone *reuses the subprogram's own semantics* — its address
   arithmetic — to know exactly which cache lines to flush);
3. retargets the call site to the clone and inserts a single ``sfence``
   after it.

Clones are cached and shared: if ``update_PM`` already exists because an
earlier fix cloned ``modify``, a later fix that clones ``permute`` calls
the existing ``update_PM`` rather than minting ``update_PM_2`` — this is
the paper's code-bloat mitigation (§6.4: +0.013% IR on Redis).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.aliasing import PMClassification
from ..analysis.callgraph import CallGraph
from ..errors import FixError
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Fence,
    Flush,
    Gep,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    Trap,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, Value
from ..revalidate.witness import (
    CloneSpec,
    StructuralSpec,
    SynthFence,
    spec_for_fix,
)

#: Suffix for persistent clones (the paper's ``modify_PM`` convention).
PM_SUFFIX = "_PM"


def clone_function(
    fn: Function, new_name: str
) -> Tuple[Function, Dict[Instruction, Instruction]]:
    """Structurally clone a function; returns (clone, old->new map)."""
    clone = Function(
        new_name,
        [(a.name, a.type) for a in fn.args],
        fn.return_type,
        fn.source_file,
    )
    clone.cloned_from = fn.name

    value_map: Dict[Value, Value] = dict(zip(fn.args, clone.args))
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in fn.blocks:
        block_map[block] = clone.add_block(block.name)

    def mapped(value: Value) -> Value:
        if isinstance(value, (Constant, GlobalVariable)):
            return value
        try:
            return value_map[value]
        except KeyError:
            raise FixError(
                f"clone of @{fn.name}: unmapped operand {value.short()}"
            ) from None

    instr_map: Dict[Instruction, Instruction] = {}
    for block in fn.blocks:
        new_block = block_map[block]
        for instr in block:
            new_instr = _clone_instruction(instr, mapped, block_map)
            new_instr.loc = instr.loc
            new_instr.name = instr.name
            new_block.append(new_instr)
            value_map[instr] = new_instr
            instr_map[instr] = new_instr
    return clone, instr_map


def _clone_instruction(instr: Instruction, mapped, block_map) -> Instruction:
    if isinstance(instr, Alloca):
        return Alloca(instr.size)
    if isinstance(instr, Load):
        return Load(mapped(instr.pointer), instr.type)
    if isinstance(instr, Store):
        return Store(mapped(instr.value), mapped(instr.pointer), instr.nontemporal)
    if isinstance(instr, Gep):
        return Gep(mapped(instr.base), mapped(instr.offset))
    if isinstance(instr, BinOp):
        return BinOp(instr.op, mapped(instr.operands[0]), mapped(instr.operands[1]))
    if isinstance(instr, ICmp):
        return ICmp(instr.pred, mapped(instr.operands[0]), mapped(instr.operands[1]))
    if isinstance(instr, Select):
        return Select(
            mapped(instr.operands[0]),
            mapped(instr.operands[1]),
            mapped(instr.operands[2]),
        )
    if isinstance(instr, Cast):
        return Cast(instr.kind, mapped(instr.operands[0]), instr.type)
    if isinstance(instr, Branch):
        return Branch(
            mapped(instr.cond), block_map[instr.then_block], block_map[instr.else_block]
        )
    if isinstance(instr, Jump):
        return Jump(block_map[instr.target])
    if isinstance(instr, Ret):
        return Ret(None if instr.value is None else mapped(instr.value))
    if isinstance(instr, Trap):
        return Trap()
    if isinstance(instr, Call):
        return Call(instr.callee, [mapped(a) for a in instr.args], instr.type)
    if isinstance(instr, Flush):
        return Flush(mapped(instr.pointer), instr.kind)
    if isinstance(instr, Fence):
        return Fence(instr.kind)
    raise FixError(f"cannot clone {instr!r}")  # pragma: no cover


class _CloneMeta:
    """Per-clone revalidation witness, retained by the transformer.

    ``spec`` is None when any inserted covering flush could not be
    described (degraded witness); ``retargeted`` lists the *original*
    names of nested callees this clone was retargeted at, so a call
    site's full clone closure can be walked.
    """

    __slots__ = ("spec", "retargeted")

    def __init__(self, spec: Optional[CloneSpec], retargeted: Tuple[str, ...]):
        self.spec = spec
        self.retargeted = retargeted


class SubprogramTransformer:
    """Builds and caches persistent subprogram clones for one module."""

    def __init__(
        self,
        module: Module,
        classifier: PMClassification,
        callgraph: Optional[CallGraph] = None,
    ):
        self.module = module
        self.classifier = classifier
        self.callgraph = callgraph or CallGraph(module)
        self.pm_functions = classifier.functions_with_pm_stores(self.callgraph)
        #: original function name -> clone name (reuse cache)
        self.clones: Dict[str, str] = {}
        #: instructions inserted across all transformations
        self.inserted: List[Instruction] = []
        #: functions newly created
        self.created: List[str] = []
        #: original function name -> :class:`_CloneMeta` (the structural
        #: synthesis witness for that clone)
        self.clone_meta: Dict[str, _CloneMeta] = {}

    # -- clone creation ---------------------------------------------------------

    def persistent_clone(self, fn_name: str) -> str:
        """Get or create the ``_PM`` clone of a function."""
        if fn_name in self.clones:
            return self.clones[fn_name]
        fn = self.module.get_function(fn_name)
        clone_name = self._fresh_name(fn_name)
        # Register before processing the body so recursion terminates.
        self.clones[fn_name] = clone_name
        clone, instr_map = clone_function(fn, clone_name)
        self.module.insert_function(clone)
        self.created.append(clone_name)

        # Insert flushes after every may-PM store, reusing the clone's
        # own address computation (the store's pointer operand) and
        # covering line-straddling stores.  Each store's inserted run is
        # also described as an InsertionSpec anchored at the *clone's*
        # store — the structural-synthesis witness; a run that cannot be
        # described degrades the whole clone's witness.
        from .fixes import insert_covering_flushes

        flush_specs: List[object] = []
        degraded = False
        for orig, copy in instr_map.items():
            if isinstance(orig, Store) and self.classifier.store_may_be_pm(orig):
                mark = len(self.inserted)
                insert_covering_flushes(copy, "clwb", into=self.inserted)
                spec = spec_for_fix(copy, self.inserted[mark:])
                if spec is None:
                    degraded = True
                else:
                    flush_specs.append(spec)

        # Retarget calls to PM-storing callees at their clones.
        retargeted: List[str] = []
        for orig, copy in instr_map.items():
            if isinstance(copy, Call) and self._needs_clone(copy.callee):
                retargeted.append(copy.callee)
                copy.callee = self.persistent_clone(copy.callee)
                self.module.bump_epoch()

        self.clone_meta[fn_name] = _CloneMeta(
            spec=None
            if degraded
            else CloneSpec(
                orig_name=fn_name,
                clone_name=clone_name,
                iid_map=tuple(
                    (orig.iid, copy.iid) for orig, copy in instr_map.items()
                ),
                flush_specs=tuple(flush_specs),
            ),
            retargeted=tuple(retargeted),
        )
        return clone_name

    def _needs_clone(self, callee: str) -> bool:
        return callee in self.pm_functions and self.module.has_function(callee)

    def _fresh_name(self, fn_name: str) -> str:
        candidate = fn_name + PM_SUFFIX
        counter = 1
        while self.module.has_function(candidate):
            counter += 1
            candidate = f"{fn_name}{PM_SUFFIX}{counter}"
        return candidate

    # -- call-site transformation ----------------------------------------------------

    def transform_call_site(self, call: Call) -> Tuple[str, Optional[Fence]]:
        """Retarget a call site at its callee's persistent clone and
        fence after it.

        Idempotent: a call site already transformed (by an earlier bug
        hoisted to the same place) is left alone.
        """
        if call.parent is None:
            raise FixError(f"call #{call.iid} is detached")
        already_clone = call.callee in self.clones.values()
        if not already_clone:
            if not self.module.has_function(call.callee):
                raise FixError(
                    f"cannot transform call to intrinsic @{call.callee}"
                )
            call.callee = self.persistent_clone(call.callee)
            self.module.bump_epoch()

        block = call.parent
        index = block.index_of(call)
        following = (
            block.instructions[index + 1]
            if index + 1 < len(block.instructions)
            else None
        )
        if isinstance(following, Fence):
            return call.callee, None  # fence already present
        fence = Fence("sfence")
        fence.loc = call.loc
        block.insert_after(call, fence)
        self.inserted.append(fence)
        return call.callee, fence

    # -- structural-synthesis witness -------------------------------------------

    def structural_spec(
        self, call: Call, orig_callee: str, fence: Optional[Fence]
    ) -> Optional[StructuralSpec]:
        """Describe a transformed call site as a :class:`StructuralSpec`.

        Walks the clone closure rooted at ``orig_callee`` (the callee's
        clone plus every transitively retargeted nested clone).  Returns
        None when any clone in the closure lacks a usable witness — the
        revalidation engine then falls back to a full re-record.
        """
        clones: List[CloneSpec] = []
        seen: set = set()
        frontier = [orig_callee]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            meta = self.clone_meta.get(name)
            if meta is None or meta.spec is None:
                return None
            clones.append(meta.spec)
            frontier.extend(meta.retargeted)
        return StructuralSpec(
            call_iid=call.iid,
            caller_function=(
                call.function.name if call.function is not None else ""
            ),
            orig_callee=orig_callee,
            clone_callee=call.callee,
            fence=(
                SynthFence(fence.iid, fence.loc, fence.kind)
                if fence is not None
                else None
            ),
            clones=tuple(clones),
        )
