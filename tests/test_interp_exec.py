"""Unit tests for IR execution semantics."""

import pytest

from repro.errors import FuelExhausted, InterpreterError, TrapError
from repro.interp import Interpreter, run_module
from repro.ir import I1, I8, I64, ModuleBuilder, PTR


def run_main(build, args=None, **kwargs):
    mb = ModuleBuilder("t")
    build(mb)
    result, trace, machine = run_module(mb.module, "main", args, **kwargs)
    return result


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 3, 4, (3 - 4) & ((1 << 64) - 1)),
            ("mul", 5, 6, 30),
            ("udiv", 17, 5, 3),
            ("urem", 17, 5, 2),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 5, 32),
            ("lshr", 32, 5, 1),
        ],
    )
    def test_binops(self, op, a, b, expected):
        def build(mb):
            builder = mb.function("main", [], I64)
            builder.ret(builder.binop(op, a, b))

        assert run_main(build).value == expected

    def test_division_by_zero_traps(self):
        def build(mb):
            builder = mb.function("main", [], I64)
            builder.ret(builder.udiv(1, 0))

        with pytest.raises(TrapError):
            run_main(build)

    def test_narrow_type_wraps(self):
        def build(mb):
            builder = mb.function("main", [], I64)
            wide = builder.binop("add", builder._value(250, I8), builder._value(10, I8))
            builder.ret(builder.cast("zext", wide, I64))

        assert run_main(build).value == (250 + 10) & 0xFF

    @pytest.mark.parametrize(
        "pred,a,b,expected",
        [("eq", 3, 3, 1), ("ne", 3, 3, 0), ("ult", 2, 3, 1),
         ("ule", 3, 3, 1), ("ugt", 4, 3, 1), ("uge", 2, 3, 0)],
    )
    def test_icmp(self, pred, a, b, expected):
        def build(mb):
            builder = mb.function("main", [], I64)
            cmp = builder.icmp(pred, a, b)
            builder.ret(builder.cast("zext", cmp, I64))

        assert run_main(build).value == expected


class TestControlFlow:
    def test_branch_and_loop(self):
        def build(mb):
            b = mb.function("main", [("n", I64)], I64)
            acc = b.alloca(8)
            i = b.alloca(8)
            b.store(0, acc)
            b.store(0, i)
            cond = b.new_block("cond")
            body = b.new_block("body")
            done = b.new_block("done")
            b.jmp(cond)
            b.position_at_end(cond)
            iv = b.load(i)
            b.br(b.icmp("ult", iv, b.function.args[0]), body, done)
            b.position_at_end(body)
            b.store(b.add(b.load(acc), b.load(i)), acc)
            b.store(b.add(b.load(i), 1), i)
            b.jmp(cond)
            b.position_at_end(done)
            b.ret(b.load(acc))

        assert run_main(build, [10]).value == sum(range(10))

    def test_select(self):
        def build(mb):
            b = mb.function("main", [("c", I64)], I64)
            cond = b.icmp("ne", b.function.args[0], 0)
            b.ret(b.select(cond, 111, 222))

        assert run_main(build, [1]).value == 111
        assert run_main(build, [0]).value == 222

    def test_trap_instruction(self):
        def build(mb):
            b = mb.function("main", [], I64)
            b.trap()

        with pytest.raises(TrapError):
            run_main(build)


class TestCalls:
    def test_call_and_return(self):
        def build(mb):
            b = mb.function("double", [("x", I64)], I64)
            b.ret(b.mul(b.function.args[0], 2))
            b = mb.function("main", [], I64)
            b.ret(b.call("double", [21], I64))

        assert run_main(build).value == 42

    def test_recursion(self):
        def build(mb):
            b = mb.function("fact", [("n", I64)], I64)
            base = b.new_block("base")
            rec = b.new_block("rec")
            b.br(b.icmp("ule", b.function.args[0], 1), base, rec)
            b.position_at_end(base)
            b.ret(1)
            b.position_at_end(rec)
            sub = b.call("fact", [b.sub(b.function.args[0], 1)], I64)
            b.ret(b.mul(b.function.args[0], sub))
            b = mb.function("main", [], I64)
            b.ret(b.call("fact", [6], I64))

        assert run_main(build).value == 720

    def test_stack_overflow(self):
        def build(mb):
            b = mb.function("loop", [], I64)
            b.ret(b.call("loop", [], I64))
            b = mb.function("main", [], I64)
            b.ret(b.call("loop", [], I64))

        with pytest.raises(InterpreterError, match="stack overflow"):
            run_main(build)

    def test_unknown_callee(self):
        def build(mb):
            b = mb.function("main", [], I64)
            b.ret(b.call("no_such_fn", [], I64))

        with pytest.raises(InterpreterError, match="unknown function"):
            run_main(build)

    def test_arity_checked(self):
        mb = ModuleBuilder("t")
        b = mb.function("main", [("x", I64)], I64)
        b.ret(b.function.args[0])
        interp = Interpreter(mb.module)
        with pytest.raises(InterpreterError, match="expects 1 args"):
            interp.call("main", [])


class TestMemorySemantics:
    def test_alloca_store_load(self):
        def build(mb):
            b = mb.function("main", [], I64)
            slot = b.alloca(8)
            b.store(1234, slot)
            b.ret(b.load(slot))

        assert run_main(build).value == 1234

    def test_alloca_released_on_return(self):
        def build(mb):
            b = mb.function("leaf", [], PTR)
            b.ret(b.alloca(64))
            b = mb.function("main", [], I64)
            p1 = b.call("leaf", [], PTR)
            p2 = b.call("leaf", [], PTR)
            same = b.icmp("eq", b.cast("ptrtoint", p1, I64), b.cast("ptrtoint", p2, I64))
            b.ret(b.cast("zext", same, I64))

        assert run_main(build).value == 1  # frames reuse the stack region

    def test_byte_granular_store(self):
        def build(mb):
            b = mb.function("main", [], I64)
            slot = b.alloca(8)
            b.store(0, slot)
            b.store(0xAB, b.gep(slot, 1), I8)
            b.ret(b.load(slot))

        assert run_main(build).value == 0xAB00

    def test_global_access(self):
        def build(mb):
            mb.global_("g", 8, "vol", (1000).to_bytes(8, "little"))
            b = mb.function("main", [], I64)
            g = mb.module.get_global("g")
            value = b.load(g)
            b.store(b.add(value, 1), g)
            b.ret(b.load(g))

        assert run_main(build).value == 1001


class TestFuelAndCost:
    def test_fuel_exhaustion(self):
        def build(mb):
            b = mb.function("main", [], I64)
            loop = b.new_block("loop")
            b.jmp(loop)
            b.position_at_end(loop)
            b.jmp(loop)

        mb = ModuleBuilder("t")
        build(mb)
        with pytest.raises(FuelExhausted):
            run_module(mb.module, "main", fuel=1000)

    def test_cycles_accumulate(self):
        def build(mb):
            b = mb.function("main", [], I64)
            b.ret(b.add(1, 2))

        assert run_main(build).cycles > 0
