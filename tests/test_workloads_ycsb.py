"""Unit tests for YCSB workload generation and execution."""

from collections import Counter

from repro.apps import KVStore, build_kvstore
from repro.workloads import (
    CORE_WORKLOADS,
    FIG4_ORDER,
    INSERT,
    READ,
    RMW,
    SCAN,
    UPDATE,
    execute,
    generate_load,
    generate_run,
    make_key,
    make_value,
)


class TestGeneration:
    def test_load_inserts_every_record(self):
        ops = generate_load(50, value_size=32)
        assert len(ops) == 50
        assert all(op.kind == INSERT for op in ops)
        assert len({op.key for op in ops}) == 50
        assert all(len(op.value) == 32 for op in ops)

    def test_workload_a_mix(self):
        ops = generate_run(CORE_WORKLOADS["A"], 100, 2000, seed=1)
        counts = Counter(op.kind for op in ops)
        assert 0.4 < counts[READ] / 2000 < 0.6
        assert 0.4 < counts[UPDATE] / 2000 < 0.6

    def test_workload_c_read_only(self):
        ops = generate_run(CORE_WORKLOADS["C"], 100, 500, seed=2)
        assert all(op.kind == READ for op in ops)

    def test_workload_d_inserts_fresh_keys(self):
        ops = generate_run(CORE_WORKLOADS["D"], 100, 1000, seed=3)
        inserts = [op for op in ops if op.kind == INSERT]
        assert inserts, "D should contain inserts"
        assert all(int(op.key[4:]) >= 100 for op in inserts)

    def test_workload_e_scans(self):
        ops = generate_run(CORE_WORKLOADS["E"], 100, 500, seed=4, max_scan_length=8)
        scans = [op for op in ops if op.kind == SCAN]
        assert len(scans) > 400
        assert all(1 <= op.scan_length <= 8 for op in scans)

    def test_workload_f_rmw(self):
        ops = generate_run(CORE_WORKLOADS["F"], 100, 1000, seed=5)
        counts = Counter(op.kind for op in ops)
        assert counts[RMW] > 300

    def test_determinism(self):
        a = generate_run(CORE_WORKLOADS["A"], 100, 200, seed=9)
        b = generate_run(CORE_WORKLOADS["A"], 100, 200, seed=9)
        assert a == b

    def test_reads_target_loaded_keyspace(self):
        ops = generate_run(CORE_WORKLOADS["B"], 100, 500, seed=6)
        for op in ops:
            if op.kind == READ:
                assert 0 <= int(op.key[4:]) < 100 + 500

    def test_key_value_format(self):
        assert make_key(3) == b"user000000000003"
        assert len(make_value(3, 96)) == 96

    def test_fig4_order(self):
        assert FIG4_ORDER[0] == "Load"
        assert set(FIG4_ORDER[1:]) == set(CORE_WORKLOADS)


class TestExecution:
    def test_execute_load_and_run(self):
        store = KVStore(build_kvstore("manual"))
        store.init(64, 1 << 21)
        load = execute(store, generate_load(40, value_size=48))
        assert load.operations == 40
        assert load.cycles > 0
        assert load.throughput > 0
        run = execute(store, generate_run(CORE_WORKLOADS["B"], 40, 80, 48, seed=1))
        assert run.operations == 80
        # zipfian reads over loaded keys mostly hit
        assert run.read_hits > run.read_misses

    def test_rmw_round_trips(self):
        store = KVStore(build_kvstore("manual"))
        store.init(32, 1 << 20)
        execute(store, generate_load(10, value_size=24))
        ops = generate_run(CORE_WORKLOADS["F"], 10, 40, 24, seed=2)
        execute(store, ops)
        assert store.count() >= 10
