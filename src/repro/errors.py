"""Exception hierarchy for the Hippocrates reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the package's failures with a single except clause
while still distinguishing subsystems by subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed IR: bad operands, type mismatches, broken CFG."""


class IRParseError(IRError):
    """Textual IR could not be parsed."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class VerificationError(IRError):
    """The IR verifier found a structural violation."""


class MemoryError_(ReproError):
    """Bad access to the simulated address space (OOB, unmapped, misuse)."""


class SegmentationFault(MemoryError_):
    """Access to an unmapped or out-of-bounds simulated address."""


class InterpreterError(ReproError):
    """Runtime failure while executing IR (bad call, missing function)."""


class TrapError(InterpreterError):
    """The program executed an explicit ``trap`` instruction."""


class FuelExhausted(InterpreterError):
    """The interpreter ran out of its instruction budget (likely a loop)."""


class TraceError(ReproError):
    """A PM trace was malformed or could not be parsed.

    ``line`` is the 1-based line number of the offending record when the
    trace came from a pmemcheck-style text log (0 when unknown).
    """

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class DetectionError(ReproError):
    """A bug detector was misused (e.g., bad checkpoint nesting)."""


class FixError(ReproError):
    """Hippocrates could not compute or apply a fix."""


class LocateError(FixError):
    """A trace event could not be mapped back to an IR instruction."""


class ValidationError(FixError):
    """A fixed module still contains durability bugs (should never happen)."""


class RollbackError(FixError):
    """A fix-transaction rollback itself failed (double failure).

    The module may be left partially mutated, so this is never
    quarantined-and-continued: it propagates even under ``keep_going``.
    ``__cause__`` is the original failure that triggered the rollback;
    ``__context__`` is the undo action's own exception.
    """


class BudgetExceeded(ReproError):
    """A resource budget (wall clock, states, fixpoint work) ran out.

    Raised by the Andersen fixpoint and :class:`~repro.memory.crash.
    CrashExplorer` when given a strict :class:`~repro.budget.Budget`;
    the repair pipeline treats it as a downgrade signal, not a failure.
    """

    def __init__(self, message: str, spent: int = 0, limit: int = 0):
        self.spent = spent
        self.limit = limit
        super().__init__(message)
