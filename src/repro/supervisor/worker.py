"""Worker subprocess entry: ``python -m repro.supervisor.worker``.

One worker runs one task and exits — process-per-task keeps the blast
radius of a crash, hang, or leak to a single task, and lets the
supervisor's watchdog use plain SIGKILL with no cleanup protocol.

Protocol (line-oriented, over stdio):

- stdin: a single JSON object — the :class:`~repro.supervisor.tasks.
  RepairTask` spec.
- stdout: ``HB <n>`` heartbeat lines every ``REPRO_WORKER_HEARTBEAT``
  seconds from a daemon thread (so a worker stuck in a long Andersen
  fixpoint still heartbeats, while a *dead* one goes silent); when
  ``REPRO_WORKER_OBS=1``, interleaved ``OBS <json>`` lines — span/event
  records forwarded live to the supervisor's sink; one
  ``METRICS <json>`` line — the full volatile metrics snapshot
  (analysis-cache counters, interpreter totals, pipeline counts),
  reported separately from the result precisely so it never enters the
  deterministic record or the journal — then exactly one terminal line:

  - ``RESULT <json>`` — the deterministic task result record, or
  - ``FAIL <json>`` — ``{"error_type", "error", "traceback"}``.

Exit codes: 0 after ``RESULT``, 3 after ``FAIL``, 2 on a protocol
error (bad spec).  The supervisor trusts the *lines*, not the exit
code — a worker that dies after ``RESULT`` already delivered its work.

Fault injection (for the resilience harness) rides on environment
variables so production specs stay clean:

- ``REPRO_WORKER_FAULT=hang``  — heartbeat normally but never finish
  (a stuck fixpoint; the watchdog must kill us);
- ``REPRO_WORKER_FAULT=kill``  — SIGKILL ourselves mid-task (silent
  death; heartbeat tracking must notice, not just waitpid).
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
import traceback


class _StdoutSink:
    """Forward span/event records to the supervisor as ``OBS`` lines.

    Line-oriented like the rest of the protocol; the supervisor's
    stdout reader re-emits each record into its own sink with the task
    id attached.
    """

    def __init__(self) -> None:
        self.dropped = 0
        self.emitted = 0

    def emit(self, record: dict) -> None:
        try:
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            print(f"OBS {line}", flush=True)
            self.emitted += 1
        except (OSError, ValueError, TypeError):
            self.dropped += 1


def _start_heartbeats(interval: float) -> None:
    def beat() -> None:
        n = 0
        while True:
            n += 1
            print(f"HB {n}", flush=True)
            time.sleep(interval)

    thread = threading.Thread(target=beat, name="heartbeat", daemon=True)
    thread.start()


def _inject_fault() -> None:
    fault = os.environ.get("REPRO_WORKER_FAULT", "")
    if fault == "hang":
        while True:  # pragma: no cover - killed by the watchdog
            time.sleep(0.5)
    if fault == "kill":
        os.kill(os.getpid(), signal.SIGKILL)


def main() -> int:
    from ..obs.observability import Observability
    from .tasks import RepairTask, execute_task

    interval = float(os.environ.get("REPRO_WORKER_HEARTBEAT", "0.2"))
    try:
        spec = json.loads(sys.stdin.read())
        task = RepairTask.from_spec(spec)
    except Exception as exc:
        print(f"FAIL {json.dumps({'error_type': type(exc).__name__, 'error': str(exc), 'traceback': ''})}",
              flush=True)
        return 2
    _start_heartbeats(interval)
    _inject_fault()
    # The worker always runs instrumented: the metrics snapshot is the
    # replacement for the old STATS line, so the supervisor can derive
    # analysis stats from it in every configuration.  Span *forwarding*
    # costs a stdout line per record, so it stays opt-in.
    forward_spans = os.environ.get("REPRO_WORKER_OBS", "") == "1"
    obs = Observability(sink=_StdoutSink() if forward_spans else None)
    try:
        result = execute_task(task, obs=obs)
    except Exception as exc:
        payload = {
            "error_type": type(exc).__name__,
            "error": str(exc),
            "traceback": traceback.format_exc(),
        }
        print(f"FAIL {json.dumps(payload)}", flush=True)
        return 3
    print(f"METRICS {json.dumps(obs.metrics_snapshot(), sort_keys=True)}",
          flush=True)
    print(f"RESULT {json.dumps(result.record, sort_keys=True)}", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
