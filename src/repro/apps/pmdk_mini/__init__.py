"""mini-PMDK: libpmem persistence primitives + a libpmemobj-style
object pool, written in the reproduction IR.

:func:`build_pmdk_module` assembles a complete module (stdlib + libpmem
+ objpool), optionally seeding the study's core-library bugs.
"""

from typing import FrozenSet, Iterable

from ...ir.builder import ModuleBuilder
from ..stdlib import add_stdlib
from .libpmem import add_libpmem
from .objpool import (
    ARENA_META,
    LIBRARY_SEEDS,
    LOG_SIZE,
    OFF_ARENA,
    OFF_HEAP_TOP,
    OFF_LAYOUT,
    OFF_LOG,
    OFF_LOG_HEAD,
    OFF_MAGIC,
    OFF_ROOT_OBJ,
    POOL_MAGIC,
    ROOT_SIZE,
    add_objpool,
)


def build_pmdk_module(
    seeds: Iterable[str] = (), name: str = "pmdk"
) -> ModuleBuilder:
    """A ModuleBuilder preloaded with the whole mini-PMDK stack.

    Returns the builder (not the module) so callers — unit tests, the
    corpus, the apps — can keep adding their own functions on top.
    """
    mb = ModuleBuilder(name)
    add_stdlib(mb)
    add_libpmem(mb)
    add_objpool(mb, frozenset(seeds))
    return mb


__all__ = [
    "ARENA_META",
    "build_pmdk_module",
    "LIBRARY_SEEDS",
    "LOG_SIZE",
    "OFF_ARENA",
    "OFF_HEAP_TOP",
    "OFF_LAYOUT",
    "OFF_LOG",
    "OFF_LOG_HEAD",
    "OFF_MAGIC",
    "OFF_ROOT_OBJ",
    "POOL_MAGIC",
    "ROOT_SIZE",
    "add_objpool",
]
