"""Content-addressed on-disk analysis cache.

Batch repair runs the same whole-program analyses again and again: a
corpus batch rebuilds each case's module in a fresh worker process, and
``module:trace`` tasks repairing one module against many traces re-solve
the same Andersen fixpoint per task.  The fixpoint is a pure function of
module *content*, so its solution can be shared across processes through
a content-addressed store: ``<dir>/<module fingerprint>.json`` holds the
serialized points-to solution plus the call-graph edge summary, and any
worker whose module prints to the same bytes can reuse it.

Two representation problems make this more than ``json.dumps``:

- **Values are process-local.**  The solution maps IR values (and
  allocation sites keyed by instruction id) to site sets, but
  instruction ids depend on per-process allocation order.  Values are
  therefore serialized as stable *paths* — ``i:<fn>:<block#>:<instr#>``
  for instructions, ``a:<fn>:<arg#>`` for arguments — and translated
  back to the loading process's local objects (and local ids) on
  restore.  Identical fingerprints guarantee the paths resolve.
- **The UNKNOWN site is a singleton.**  Classifiers compare it by
  identity, so restore maps the ``unknown`` key back to
  :data:`~repro.analysis.andersen.UNKNOWN_SITE` itself, never a copy.

Writes go through :func:`~repro.fsutil.atomic_write_text`, so two
workers racing to populate the same fingerprint both land a complete
entry and a crash mid-write never tears one.  A corrupt, stale-schema,
or mismatched entry loads as a miss, never an error.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional, Set, Tuple

from ..fsutil import atomic_write_text
from ..ir.module import Module
from ..ir.values import Value
from .andersen import AllocSite, PointsTo, UNKNOWN_SITE
from .callgraph import CallGraph

#: on-disk schema tag (bump on any format change; old entries become misses)
SCHEMA = "repro-analysis-cache-v1"

#: allocation-site keys that embed a process-local instruction id
_IID_SITE = re.compile(r"^(alloca|call):(\d+)$")


class _Unserializable(Exception):
    """The solution references values outside the module (uncacheable)."""


def _value_index(module: Module):
    """Stable path maps for a module's values.

    Returns ``(to_path, from_path, iid_to_path)`` where paths are
    ``a:<fn>:<arg#>`` / ``i:<fn>:<block#>:<instr#>`` — positional, so
    equal-content modules in different processes agree on them.
    """
    to_path: Dict[int, str] = {}
    from_path: Dict[str, Value] = {}
    iid_to_path: Dict[int, str] = {}
    for fn in module.functions.values():
        for ai, arg in enumerate(fn.args):
            path = f"a:{fn.name}:{ai}"
            to_path[id(arg)] = path
            from_path[path] = arg
        for bi, block in enumerate(fn.blocks):
            for ii, instr in enumerate(block.instructions):
                path = f"i:{fn.name}:{bi}:{ii}"
                to_path[id(instr)] = path
                from_path[path] = instr
                iid_to_path[instr.iid] = path
    return to_path, from_path, iid_to_path


def serialize_points_to(points_to: PointsTo) -> Dict:
    """The JSON form of a solved :class:`PointsTo` (see module docs)."""
    to_path, _, iid_to_path = _value_index(points_to.module)
    site_list: List[List] = []
    site_index: Dict[str, int] = {}

    def descriptor(site: AllocSite) -> List:
        registered = site.key in points_to.sites
        match = _IID_SITE.match(site.key)
        if match:
            path = iid_to_path.get(int(match.group(2)))
            if path is None:
                raise _Unserializable(f"site {site.key} not in module")
            return ["instr", match.group(1), path, site.space, registered]
        return ["key", site.key, site.space, registered]

    def index_of(site: AllocSite) -> int:
        if site.key not in site_index:
            site_index[site.key] = len(site_list)
            site_list.append(descriptor(site))
        return site_index[site.key]

    # Seed with the registry so registered-but-unreferenced sites (e.g.
    # a pm global the classifier enumerates) survive the round trip.
    for site in points_to.sites.values():
        index_of(site)

    # Solved sets are heavily shared (a propagation chain converges to
    # one set repeated at every step), so sets are interned: each
    # distinct set is serialized once in ``sets`` and referenced by
    # index.  This shrinks entries — and restore cost — by orders of
    # magnitude on chain-heavy modules.
    set_list: List[List[int]] = []
    set_index: Dict[Tuple[int, ...], int] = {}

    def intern(sites: Set[AllocSite]) -> int:
        key = tuple(sorted(index_of(site) for site in sites))
        if key not in set_index:
            set_index[key] = len(set_list)
            set_list.append(list(key))
        return set_index[key]

    var: Dict[str, int] = {}
    for value, sites in points_to._var_pts.items():
        if not sites:
            continue
        path = to_path.get(id(value))
        if path is None:
            raise _Unserializable(f"value {value!r} not in module")
        var[path] = intern(sites)
    heap: List[List[int]] = []
    for site, sites in points_to._heap_pts.items():
        if not sites:
            continue
        heap.append([index_of(site), intern(sites)])
    heap.sort()
    return {"sites": site_list, "sets": set_list, "var": var, "heap": heap}


def restore_points_to(module: Module, data: Dict) -> PointsTo:
    """Translate a serialized solution back onto ``module``'s values."""
    _, from_path, _ = _value_index(module)
    sites: List[AllocSite] = []
    registry: Dict[str, AllocSite] = {}
    for desc in data["sites"]:
        if desc[0] == "instr":
            _, prefix, path, space, registered = desc
            instr = from_path[path]
            site = AllocSite(f"{prefix}:{instr.iid}", space)
        else:
            _, key, space, registered = desc
            site = UNKNOWN_SITE if key == UNKNOWN_SITE.key else AllocSite(key, space)
        sites.append(site)
        if registered:
            registry[site.key] = site
    # Interned sets: materialize each distinct set once, then hand out
    # *copies* per consumer — PointsTo mutates sets in place, so shared
    # instances would couple unrelated variables.
    interned = [frozenset(sites[i] for i in indexes) for indexes in data["sets"]]
    var_pts: Dict[Value, Set[AllocSite]] = {}
    for path, set_id in data["var"].items():
        var_pts[from_path[path]] = set(interned[set_id])
    heap_pts = {sites[i]: set(interned[set_id]) for i, set_id in data["heap"]}
    return PointsTo.from_solution(module, registry, var_pts, heap_pts)


class AnalysisDiskCache:
    """A directory of ``<fingerprint>.json`` analysis entries."""

    def __init__(self, directory: str):
        self.directory = directory

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.json")

    def load(self, module: Module) -> Optional[Tuple[PointsTo, CallGraph]]:
        """The cached ``(points_to, callgraph)`` for this module's
        content, or None (missing, corrupt, or stale schema)."""
        try:
            with open(self._path(module.fingerprint())) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if data.get("schema") != SCHEMA:
            return None
        try:
            points_to = restore_points_to(module, data["points_to"])
            callgraph = CallGraph.from_summary(module, data["callgraph"])
        except (KeyError, IndexError, TypeError, ValueError):
            return None
        return points_to, callgraph

    def store(
        self, module: Module, points_to: PointsTo, callgraph: CallGraph
    ) -> bool:
        """Persist one solved entry; returns False if uncacheable."""
        fingerprint = module.fingerprint()
        try:
            payload = {
                "schema": SCHEMA,
                "fingerprint": fingerprint,
                "points_to": serialize_points_to(points_to),
                "callgraph": callgraph.summary(),
            }
        except _Unserializable:
            return False
        os.makedirs(self.directory, exist_ok=True)
        atomic_write_text(
            self._path(fingerprint), json.dumps(payload, sort_keys=True)
        )
        return True
