"""Bench-smoke for the shared analysis cache: cold vs warm, plus a
cache-on/cache-off differential.

Two questions, answered with numbers in ``BENCH_analysis_cache.json``:

1. **Does the cache pay?**  A batch of ``file`` repair tasks over
   analysis-heavy modules (dense pointer-chain constraint systems, so
   the Andersen fixpoint dominates each task) is run three ways through
   the real :class:`~repro.supervisor.supervisor.BatchSupervisor`:
   cache **off**, cache **cold** (empty directory — later tasks already
   reuse entries stored by earlier ones), and cache **warm** (same
   directory again).  The warm/cold speedup and hit rates are recorded.
2. **Is it harmless?**  The effectiveness corpus is batch-repaired cold
   and warm against one cache directory and once with the cache off;
   all three :meth:`~repro.supervisor.report.BatchReport.
   canonical_json` byte forms must be identical.  A content-addressed
   cache may only change *when* analyses run, never what the repair
   produces.

Exit status (the CI gate): 0 when the warm runs actually hit the cache
and every differential matches; 1 otherwise.  The measured speedup is
recorded but deliberately *not* gated — wall-clock ratios on shared CI
runners are too noisy to fail a build over, whereas a zero hit rate or
a canonical-bytes divergence is a correctness bug at any speed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from ..detect import pmemcheck_run
from ..fsutil import atomic_write_text
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from ..ir.printer import format_module
from ..ir.types import PTR
from ..supervisor import (
    BatchReport,
    BatchSupervisor,
    RepairTask,
    SupervisorConfig,
    corpus_tasks,
)
from ..trace.pmemcheck import dump_trace

#: synthetic-batch shape: distinct modules x repeated tasks per module
VARIANTS = 2
TASKS_PER_VARIANT = 2
#: bug-driver size (unflushed PM stores = bugs to fix)
BUGS = 4
#: pointer-web size knobs (functions, gep-chain length, merged sites)
WEB_FUNCTIONS = 10
WEB_CHAIN = 150
WEB_SITES = 24


def build_bench_module(variant: int) -> Module:
    """An analysis-heavy module with real durability bugs.

    Two deliberately separate parts:

    - A small ``work`` driver whose unflushed PM stores give
      Hippocrates real bugs to fix.  Kept minimal so locating, hoisting,
      and applying fixes stays cheap.
    - A dense *pointer web* of ``WEB_FUNCTIONS`` helpers that the driver
      never calls.  Andersen is a whole-module analysis, so the web's
      constraints are solved regardless: each helper merges
      ``WEB_SITES`` allocation sites through a select chain (big
      points-to sets) and threads them down a ``WEB_CHAIN``-long gep
      chain (one propagation step per fixpoint pass), so solve time
      scales superlinearly while parse/verify stay linear.  That is the
      analysis-dominated regime the content-addressed cache exists for.

    ``variant`` perturbs the module so fingerprints differ.
    """
    mb = ModuleBuilder(f"acache_bench_{variant}")

    for i in range(WEB_FUNCTIONS):
        b = mb.function(f"web{i}", [("p", PTR)], PTR, source_file=f"web{i}.c")
        (p,) = b.function.args
        cond = b.icmp("eq", i + variant, i)
        merged = p
        for _ in range(WEB_SITES):
            site = b.call("pm_alloc", [8], PTR)
            merged = b.select(cond, site, merged)
        slot = b.alloca(8)
        b.store(merged, slot)
        cursor = b.load(slot, PTR)
        for _ in range(WEB_CHAIN):
            cursor = b.gep(cursor, 8)
        # Store the fully-propagated set back through the merged pointer
        # so heap constraints keep changing until the chain converges.
        b.store(cursor, merged)
        if i + 1 < WEB_FUNCTIONS:
            linked = b.call(f"web{i + 1}", [cursor], PTR)
            cursor = b.select(cond, cursor, linked)
        b.ret(cursor)

    b = mb.function("work", [], source_file="work.c")
    b.call("pm_root", [64], PTR)
    for i in range(BUGS):
        obj = b.call("pm_alloc", [64], PTR)
        b.store(variant + i + 1, obj)  # durability bug: never flushed
    b.call("checkpoint", [])
    b.ret()
    return mb.module


def _write_inputs(directory: str) -> List[Tuple[str, str]]:
    """Build, trace, and serialize the bench modules; returns
    ``(module_path, trace_path)`` per variant."""
    inputs = []
    for variant in range(VARIANTS):
        module = build_bench_module(variant)
        _, trace, _ = pmemcheck_run(module, lambda interp: interp.call("work"))
        module_path = os.path.join(directory, f"bench{variant}.ir")
        trace_path = os.path.join(directory, f"bench{variant}.trace")
        atomic_write_text(module_path, format_module(module))
        atomic_write_text(trace_path, dump_trace(trace))
        inputs.append((module_path, trace_path))
    return inputs


def _file_tasks(
    inputs: List[Tuple[str, str]], cache_dir: Optional[str]
) -> List[RepairTask]:
    tasks = []
    for variant, (module_path, trace_path) in enumerate(inputs):
        for repeat in range(TASKS_PER_VARIANT):
            tasks.append(
                RepairTask(
                    task_id=f"bench{variant}#{repeat}",
                    kind="file",
                    module_path=module_path,
                    trace_path=trace_path,
                    heuristic="full",
                    analysis_cache_dir=cache_dir,
                )
            )
    return tasks


def _run_batch(tasks: List[RepairTask]) -> Tuple[float, BatchReport]:
    supervisor = BatchSupervisor(
        tasks,
        config=SupervisorConfig(
            mode="inprocess", jobs=1, max_retries=0, task_timeout=600.0
        ),
    )
    start = time.monotonic()
    report = supervisor.run()
    elapsed = time.monotonic() - start
    if report.quarantined or report.interrupted:
        bad = ", ".join(o.task_id for o in report.quarantined) or "interrupted"
        raise RuntimeError(f"bench batch did not complete cleanly: {bad}")
    return elapsed, report


def _corpus_batch(cache_dir: Optional[str]) -> Tuple[float, BatchReport]:
    supervisor = BatchSupervisor(
        corpus_tasks(analysis_cache_dir=cache_dir),
        config=SupervisorConfig(
            mode="inprocess", jobs=1, max_retries=0, task_timeout=600.0
        ),
    )
    start = time.monotonic()
    report = supervisor.run()
    return time.monotonic() - start, report


def run_bench(skip_corpus: bool = False) -> Dict:
    """Run the full bench; returns the result document (see module docs)."""
    result: Dict = {"schema": "repro-bench-analysis-cache-v1", "failures": []}

    with tempfile.TemporaryDirectory(prefix="repro-acache-bench-") as tmp:
        inputs_dir = os.path.join(tmp, "inputs")
        os.makedirs(inputs_dir)
        inputs = _write_inputs(inputs_dir)
        cache_dir = os.path.join(tmp, "cache")

        off_elapsed, off_report = _run_batch(_file_tasks(inputs, None))
        cold_elapsed, cold_report = _run_batch(_file_tasks(inputs, cache_dir))
        warm_elapsed, warm_report = _run_batch(_file_tasks(inputs, cache_dir))

        result["synthetic"] = {
            "tasks": VARIANTS * TASKS_PER_VARIANT,
            "off_seconds": round(off_elapsed, 4),
            "cold_seconds": round(cold_elapsed, 4),
            "warm_seconds": round(warm_elapsed, 4),
            "warm_speedup_vs_cold": round(cold_elapsed / max(warm_elapsed, 1e-9), 3),
            "warm_speedup_vs_off": round(off_elapsed / max(warm_elapsed, 1e-9), 3),
            "cold_stats": cold_report.analysis_stats,
            "warm_stats": warm_report.analysis_stats,
        }
        if warm_report.analysis_stats.get("disk_hits", 0) == 0:
            result["failures"].append("synthetic warm run had zero cache hits")
        canon = off_report.canonical_json()
        if cold_report.canonical_json() != canon:
            result["failures"].append("synthetic cold report diverged from cache-off")
        if warm_report.canonical_json() != canon:
            result["failures"].append("synthetic warm report diverged from cache-off")

        if not skip_corpus:
            corpus_cache = os.path.join(tmp, "corpus-cache")
            c_off_elapsed, c_off = _corpus_batch(None)
            c_cold_elapsed, c_cold = _corpus_batch(corpus_cache)
            c_warm_elapsed, c_warm = _corpus_batch(corpus_cache)
            result["corpus"] = {
                "tasks": len(c_off.outcomes),
                "off_seconds": round(c_off_elapsed, 4),
                "cold_seconds": round(c_cold_elapsed, 4),
                "warm_seconds": round(c_warm_elapsed, 4),
                "warm_speedup_vs_cold": round(
                    c_cold_elapsed / max(c_warm_elapsed, 1e-9), 3
                ),
                "cold_stats": c_cold.analysis_stats,
                "warm_stats": c_warm.analysis_stats,
            }
            corpus_canon = c_off.canonical_json()
            if c_cold.canonical_json() != corpus_canon:
                result["failures"].append("corpus cold report diverged from cache-off")
            if c_warm.canonical_json() != corpus_canon:
                result["failures"].append("corpus warm report diverged from cache-off")
            if c_warm.analysis_stats.get("disk_hits", 0) == 0:
                result["failures"].append("corpus warm run had zero cache hits")

    result["ok"] = not result["failures"]
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.analysis_cache", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out",
        default="BENCH_analysis_cache.json",
        help="where to write the result document",
    )
    parser.add_argument(
        "--skip-corpus",
        action="store_true",
        help="only run the synthetic batch (fast smoke)",
    )
    args = parser.parse_args(argv)
    result = run_bench(skip_corpus=args.skip_corpus)
    atomic_write_text(args.out, json.dumps(result, indent=2, sort_keys=True) + "\n")
    synthetic = result["synthetic"]
    print(
        f"analysis cache bench: off {synthetic['off_seconds']}s, "
        f"cold {synthetic['cold_seconds']}s, warm {synthetic['warm_seconds']}s "
        f"(warm {synthetic['warm_speedup_vs_cold']}x vs cold)"
    )
    if "corpus" in result:
        corpus = result["corpus"]
        print(
            f"corpus: off {corpus['off_seconds']}s, cold {corpus['cold_seconds']}s, "
            f"warm {corpus['warm_seconds']}s "
            f"(warm {corpus['warm_speedup_vs_cold']}x vs cold)"
        )
    for failure in result["failures"]:
        print(f"FAILURE: {failure}", file=sys.stderr)
    return 0 if result["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    sys.exit(main())
