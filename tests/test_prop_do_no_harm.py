"""Property-based tests of the paper's safety theorems.

Theorem 1 (fence insertion is safe) and Theorem 2 (flush insertion is
safe) are proved in the paper for *any* program point.  Here hypothesis
makes them executable: for randomly generated straight-line PM programs
and arbitrary insertion points, inserting a flush or a fence never
changes observable behavior (emitted output and PM cache-view
contents), and never *introduces* new bug reports.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.detect import pmemcheck_run
from repro.interp import Interpreter
from repro.ir import (
    Fence,
    Flush,
    I64,
    ModuleBuilder,
    PTR,
    Store,
    verify_module,
)

#: One program step: (op, slot_index, value) over 4 PM slots.
step = st.tuples(
    st.sampled_from(["store", "flush", "fence", "emit"]),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=255),
)


def build_program(steps):
    """A straight-line program over 4 PM cache lines."""
    mb = ModuleBuilder("prog")
    b = mb.function("main", [], I64)
    base = b.call("pm_alloc", [256], PTR)
    slots = [b.gep(base, i * 64) for i in range(4)]
    for op, index, value in steps:
        if op == "store":
            b.store(value, slots[index])
        elif op == "flush":
            b.flush(slots[index])
        elif op == "fence":
            b.fence()
        else:
            b.call("emit", [b.add(b.load(slots[index]), value)])
    for slot in slots:
        b.call("emit", [b.load(slot)])
    b.ret(0)
    return mb.module


def observe(module):
    interp = Interpreter(module)
    result = interp.call("main")
    trace = interp.finish()
    return result.output, trace


def insert_at(module, position, instr):
    """Insert an instruction at a linear position in main's entry."""
    entry = module.get_function("main").entry
    index = min(position, len(entry.instructions) - 1)
    anchor = entry.instructions[index]
    if anchor.is_terminator:
        anchor = entry.instructions[index - 1]
    entry.insert_after(anchor, instr)


def pm_pointer(module):
    """Any PM pointer value from the program (a store target)."""
    for instr in module.get_function("main").instructions():
        if isinstance(instr, Store):
            return instr.pointer
    return None


@settings(max_examples=40, deadline=None)
@given(steps=st.lists(step, min_size=1, max_size=12), position=st.integers(0, 40))
def test_fence_insertion_does_no_harm(steps, position):
    baseline_output, _ = observe(build_program(steps))
    patched = build_program(steps)
    insert_at(patched, position + 1, Fence("sfence"))
    verify_module(patched)
    output, _ = observe(patched)
    assert output == baseline_output


@settings(max_examples=40, deadline=None)
@given(steps=st.lists(step, min_size=1, max_size=12), position=st.integers(0, 40))
def test_flush_insertion_does_no_harm(steps, position):
    baseline_output, _ = observe(build_program(steps))
    patched = build_program(steps)
    target = pm_pointer(patched)
    if target is None:
        return
    # Insert after the target's definition so the IR stays valid.
    entry = patched.get_function("main").entry
    def_index = entry.index_of(target) if target.parent is entry else 0
    insert_at(patched, max(def_index, position + 1), Flush(target, "clwb"))
    verify_module(patched)
    output, _ = observe(patched)
    assert output == baseline_output


@settings(max_examples=40, deadline=None)
@given(steps=st.lists(step, min_size=1, max_size=12))
def test_hippocrates_fix_does_no_harm_and_fixes(steps):
    """The composed guarantee: after Hippocrates, behavior is unchanged
    and the detector finds nothing."""
    from repro.core import Hippocrates

    baseline_output, _ = observe(build_program(steps))
    module = build_program(steps)
    detection, trace, interp = pmemcheck_run(module, lambda i: i.call("main"))
    Hippocrates(module, trace, interp.machine).fix()
    verify_module(module)
    after, _, _ = pmemcheck_run(module, lambda i: i.call("main"))
    assert after.bug_count == 0
    output, _ = observe(module)
    assert output == baseline_output


@settings(max_examples=30, deadline=None)
@given(steps=st.lists(step, min_size=1, max_size=10))
def test_fix_insertion_never_adds_bugs(steps):
    """Inserting a fence anywhere never creates a new report (the
    definition of "safe" from §4.2)."""
    module = build_program(steps)
    detection, _, _ = pmemcheck_run(module, lambda i: i.call("main"))
    before_keys = {(b.store.iid, b.kind) for b in detection.bugs}
    patched = build_program(steps)
    insert_at(patched, 3, Fence("sfence"))
    after, _, _ = pmemcheck_run(patched, lambda i: i.call("main"))
    # Bug iids differ between builds; compare by (function, line, kind).
    def key(bug):
        return (bug.store.function, bug.store.loc.line, bug.kind)

    before_set = {key(b) for b in detection.bugs}
    after_set = {key(b) for b in after.bugs}
    assert after_set <= before_set
