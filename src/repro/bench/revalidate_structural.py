"""Bench-smoke for structural-fix synthesis and pooled machine reuse.

Two coupled construction-cost levers, one result document
(``BENCH_pool.json``):

1. **Structural synthesis.**  Every corpus case needing a clone +
   retarget (``HoistedFix``) repair must revalidate on the synthesis
   tier — the recorded callee span is rewritten in place instead of
   re-executing the workload.  The revalidate-phase wall time is
   compared against the full re-run escape hatch, per case and in
   aggregate.
2. **Machine pooling.**  On the construction-bound corpus cases (a few
   thousand interpreted steps against three 16 MiB regions plus a
   16 MiB durable image per run), reusing pooled buffers must cut the
   whole-case wall time by at least ``GATE_POOL_SPEEDUP`` per case.
   The two workload-heavy cases (P-CLHT, memcached-pm) are measured
   but not gated: their interpretation time dominates construction, so
   the pool's effect there is within noise by design.

Exit status (the CI gate): 0 when every structural case took the
synthesis tier and every construction-bound case cleared the per-case
pool speedup gate.  Timings use the best of ``REPEATS`` runs per
configuration to shave scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from ..corpus.bugs import all_cases
from ..fsutil import atomic_write_text
from ..memory.pool import MachinePool
from ..obs.observability import Observability
from ..supervisor.tasks import run_case
from .revalidate import SYNTH_CASES, _phase_seconds

#: Required per-case whole-pipeline speedup from pooled machine reuse
#: on the construction-bound cases (measured 2.2x-8.2x locally; 1.5x
#: leaves generous headroom for CI noise).
GATE_POOL_SPEEDUP = 1.5

#: Cases whose wall time is dominated by interpretation, not machine
#: construction — measured, but exempt from the pool gate.
WORKLOAD_BOUND = ("P-CLHT", "memcached-pm")

#: Timed repetitions per configuration; the best run is kept.
REPEATS = 2


def _best_wall(case, repeats: int, **kwargs) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_case(case, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def run_bench() -> Dict:
    """Run the corpus through both levers; returns the result document."""
    result: Dict = {"schema": "repro-bench-pool-v1", "failures": []}
    structural: Dict[str, Dict] = {}
    pool_cases: Dict[str, Dict] = {}

    synth_total = 0.0
    full_total = 0.0
    for case in all_cases():
        # -- lever 1: structural synthesis (revalidate phase) -------------
        if case.case_id not in SYNTH_CASES:
            obs_inc = Observability()
            outcome = run_case(case, obs=obs_inc, incremental_revalidate=True)
            obs_full = Observability()
            run_case(case, obs=obs_full, incremental_revalidate=False)
            mode = (outcome.revalidation or {}).get("mode", "?")
            inc_seconds = _phase_seconds(obs_inc, "revalidate")
            full_seconds = _phase_seconds(obs_full, "revalidate")
            structural[case.case_id] = {
                "mode": mode,
                "revalidate_seconds": {
                    "synthesized": round(inc_seconds, 6),
                    "full": round(full_seconds, 6),
                },
            }
            if mode != "synthesized":
                result["failures"].append(
                    f"{case.case_id}: structural repair should take the "
                    f"synthesis tier, got mode {mode!r}"
                )
            synth_total += inc_seconds
            full_total += full_seconds

        # -- lever 2: pooled machine construction (whole case) ------------
        unpooled = _best_wall(case, REPEATS, machine_pool=False)
        pool = MachinePool()
        run_case(case, machine_pool=pool)  # cold run fills the pool
        pooled = _best_wall(case, REPEATS, machine_pool=pool)
        speedup = unpooled / max(pooled, 1e-9)
        gated = case.case_id not in WORKLOAD_BOUND
        pool_cases[case.case_id] = {
            "unpooled_seconds": round(unpooled, 6),
            "pooled_seconds": round(pooled, 6),
            "speedup": round(speedup, 3),
            "gated": gated,
        }
        if gated and speedup < GATE_POOL_SPEEDUP:
            result["failures"].append(
                f"{case.case_id}: pooled speedup {speedup:.2f}x is below "
                f"the {GATE_POOL_SPEEDUP}x gate"
            )

    result["structural_revalidate"] = {
        "cases": structural,
        "full_seconds": round(full_total, 6),
        "synthesized_seconds": round(synth_total, 6),
        "speedup": round(full_total / max(synth_total, 1e-9), 3),
    }
    result["pool"] = {
        "cases": pool_cases,
        "gate": GATE_POOL_SPEEDUP,
        "workload_bound": list(WORKLOAD_BOUND),
    }
    result["ok"] = not result["failures"]
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.revalidate_structural",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--out",
        default="BENCH_pool.json",
        help="where to write the result document",
    )
    args = parser.parse_args(argv)
    result = run_bench()
    atomic_write_text(args.out, json.dumps(result, indent=2, sort_keys=True) + "\n")
    struct = result["structural_revalidate"]
    gated = [c for c in result["pool"]["cases"].values() if c["gated"]]
    print(
        f"structural bench: revalidation {struct['full_seconds']}s full vs "
        f"{struct['synthesized_seconds']}s synthesized "
        f"({struct['speedup']}x); pool: min per-case speedup "
        f"{min(c['speedup'] for c in gated)}x over {len(gated)} gated "
        f"case(s) (gate {GATE_POOL_SPEEDUP}x)"
    )
    for failure in result["failures"]:
        print(f"FAILURE: {failure}", file=sys.stderr)
    return 0 if result["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    sys.exit(main())
