"""P-CLHT: a persistent cache-line hash table (RECIPE), in IR.

CLHT's defining property is that every bucket is exactly one cache
line, so any update touches (and must flush) a single line.  Layout of
a 64-byte bucket::

    +0,+8,+16   keys[3]        (0 = empty slot)
    +24,+32,+40 values[3]
    +48         next bucket pointer (overflow chain)
    +56         metadata (unused here)

The paper found 2 previously-undocumented durability bugs in P-CLHT
with pmemcheck; we seed two of the same classes:

- ``pclht-1`` — the insert path writes value+key into the bucket line
  but omits both the flush and the fence (missing-flush&fence);
- ``pclht-2`` — the overflow path flushes the new bucket's line with
  ``clwb`` but omits the ordering ``sfence`` (missing-fence).

Keys and values are 8-byte integers, as in CLHT.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..interp import make_interpreter
from ..interp.interpreter import Interpreter
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from ..ir.types import I64, PTR
from .pmdk_mini import build_pmdk_module

PCLHT_FILE = "pclht.c"

BUCKET_SIZE = 64
SLOTS = 3
OFF_KEYS = 0
OFF_VALS = 24
OFF_NEXT = 48

#: root fields (the pool root's app region)
OFF_TABLE = 80
OFF_NBUCKETS = 88

PCLHT_SEEDS = frozenset({"pclht-1", "pclht-2"})


def _add_clht_create(mb: ModuleBuilder) -> None:
    b = mb.function("clht_create", [("nbuckets", I64)], source_file=PCLHT_FILE)
    (nbuckets,) = b.function.args
    root = b.call("pm_root", [128], PTR)
    size = b.mul(nbuckets, BUCKET_SIZE)
    table = b.call("pm_alloc", [size], PTR)
    b.call("memset", [table, 0, size])
    b.call("pmem_persist", [table, size])
    b.store(table, b.gep(root, OFF_TABLE), PTR)
    b.store(nbuckets, b.gep(root, OFF_NBUCKETS))
    b.call("pmem_persist", [b.gep(root, OFF_TABLE), 16])
    b.ret()


def _add_clht_hash(mb: ModuleBuilder) -> None:
    """CLHT's multiplicative hash (Fibonacci hashing)."""
    b = mb.function(
        "clht_hash", [("key", I64)], return_type=I64, source_file=PCLHT_FILE
    )
    (key,) = b.function.args
    h = b.mul(key, 0x9E3779B97F4A7C15)
    h = b.xor(h, b.lshr(h, 29))
    b.ret(h)


def _add_clht_put(mb: ModuleBuilder, seeds: FrozenSet[str]) -> None:
    """Insert or update; returns 0 (insert) or 1 (update)."""
    b = mb.function(
        "clht_put",
        [("key", I64), ("val", I64)],
        return_type=I64,
        source_file=PCLHT_FILE,
    )
    key, val = b.function.args
    root = b.call("pm_root", [128], PTR)
    table = b.load(b.gep(root, OFF_TABLE), PTR)
    nbuckets = b.load(b.gep(root, OFF_NBUCKETS))
    h = b.call("clht_hash", [key], I64)
    idx = b.urem(h, nbuckets)
    bucket_slot = b.alloca(8)
    b.store(b.gep(table, b.mul(idx, BUCKET_SIZE)), bucket_slot, PTR)

    scan = b.new_block("scan")
    slot_loop_init = b.new_block("slots_init")
    slot_cond = b.new_block("slot_cond")
    slot_body = b.new_block("slot_body")
    slot_next = b.new_block("slot_next")
    hit = b.new_block("hit")
    empty = b.new_block("empty")
    overflow = b.new_block("overflow")
    chain = b.new_block("chain")
    i_slot = b.alloca(8)
    b.jmp(scan)

    # -- scan the current bucket's three slots ----------------------------
    b.position_at_end(scan)
    b.jmp(slot_loop_init)
    b.position_at_end(slot_loop_init)
    b.store(0, i_slot)
    b.jmp(slot_cond)

    b.position_at_end(slot_cond)
    i = b.load(i_slot)
    in_range = b.icmp("ult", i, SLOTS)
    b.br(in_range, slot_body, overflow)

    b.position_at_end(slot_body)
    i = b.load(i_slot)
    bucket = b.load(bucket_slot, PTR)
    key_ptr = b.gep(bucket, b.mul(i, 8))
    k = b.load(key_ptr)
    is_match = b.icmp("eq", k, key)
    check_empty = b.new_block("check_empty")
    b.br(is_match, hit, check_empty)
    b.position_at_end(check_empty)
    is_empty = b.icmp("eq", k, 0)
    b.br(is_empty, empty, slot_next)

    b.position_at_end(slot_next)
    b.store(b.add(b.load(i_slot), 1), i_slot)
    b.jmp(slot_cond)

    # -- update in place: value store + flush + fence ----------------------
    b.position_at_end(hit)
    i = b.load(i_slot)
    bucket = b.load(bucket_slot, PTR)
    val_ptr = b.gep(bucket, b.add(OFF_VALS, b.mul(i, 8)))
    b.store(val, val_ptr)
    b.flush(val_ptr, "clwb")
    b.fence("sfence")
    b.call("checkpoint", [])
    b.ret(1)

    # -- insert into the empty slot (CLHT order: value before key) ---------
    b.position_at_end(empty)
    i = b.load(i_slot)
    bucket = b.load(bucket_slot, PTR)
    val_ptr = b.gep(bucket, b.add(OFF_VALS, b.mul(i, 8)))
    key_ptr = b.gep(bucket, b.mul(i, 8))
    b.store(val, val_ptr)
    b.flush(val_ptr, "clwb")
    b.fence("sfence")
    b.store(key, key_ptr)
    if "pclht-1" not in seeds:
        # Publishing the key makes the slot visible to recovery; it
        # must be flushed and fenced (seed pclht-1 forgets both).
        b.flush(key_ptr, "clwb")
        b.fence("sfence")
    b.call("checkpoint", [])
    b.ret(0)

    # -- overflow: follow or extend the chain -------------------------------
    b.position_at_end(overflow)
    bucket = b.load(bucket_slot, PTR)
    nxt = b.load(b.gep(bucket, OFF_NEXT), PTR)
    has_next = b.icmp("ne", nxt, 0)
    b.br(has_next, chain, b.new_block("grow"))

    b.position_at_end(chain)
    bucket = b.load(bucket_slot, PTR)
    nxt = b.load(b.gep(bucket, OFF_NEXT), PTR)
    b.store(nxt, bucket_slot, PTR)
    b.jmp(slot_loop_init)

    grow = b.function.get_block("grow")
    b.position_at_end(grow)
    fresh = b.call("pm_alloc", [BUCKET_SIZE], PTR)
    b.call("memset", [fresh, 0, BUCKET_SIZE])
    b.store(val, b.gep(fresh, OFF_VALS))
    b.store(key, b.gep(fresh, OFF_KEYS))
    b.call("pmem_persist", [fresh, BUCKET_SIZE])
    bucket = b.load(bucket_slot, PTR)
    next_ptr = b.gep(bucket, OFF_NEXT)
    b.store(fresh, next_ptr, PTR)
    b.flush(next_ptr, "clwb")
    if "pclht-2" not in seeds:
        # The chain link's clwb is weakly ordered; without the sfence
        # the new bucket may be unreachable after a crash (seed
        # pclht-2 forgets the fence).
        b.fence("sfence")
    b.call("checkpoint", [])
    b.ret(0)


def _add_clht_get(mb: ModuleBuilder) -> None:
    """Lookup; returns the value, or 0 when absent."""
    b = mb.function(
        "clht_get", [("key", I64)], return_type=I64, source_file=PCLHT_FILE
    )
    (key,) = b.function.args
    root = b.call("pm_root", [128], PTR)
    table = b.load(b.gep(root, OFF_TABLE), PTR)
    nbuckets = b.load(b.gep(root, OFF_NBUCKETS))
    h = b.call("clht_hash", [key], I64)
    idx = b.urem(h, nbuckets)
    bucket_slot = b.alloca(8)
    i_slot = b.alloca(8)
    b.store(b.gep(table, b.mul(idx, BUCKET_SIZE)), bucket_slot, PTR)

    bucket_loop = b.new_block("bucket_loop")
    slot_cond = b.new_block("slot_cond")
    slot_body = b.new_block("slot_body")
    slot_next = b.new_block("slot_next")
    follow = b.new_block("follow")
    found = b.new_block("found")
    miss = b.new_block("miss")
    b.jmp(bucket_loop)

    b.position_at_end(bucket_loop)
    bucket = b.load(bucket_slot, PTR)
    is_null = b.icmp("eq", bucket, 0)
    b.br(is_null, miss, slot_cond)
    # reset slot index on entering a bucket
    b.position_at_end(slot_cond)
    b.store(0, i_slot)
    b.jmp(slot_body)

    b.position_at_end(slot_body)
    i = b.load(i_slot)
    in_range = b.icmp("ult", i, SLOTS)
    body2 = b.new_block("slot_check")
    b.br(in_range, body2, follow)
    b.position_at_end(body2)
    i = b.load(i_slot)
    bucket = b.load(bucket_slot, PTR)
    k = b.load(b.gep(bucket, b.mul(i, 8)))
    is_match = b.icmp("eq", k, key)
    b.br(is_match, found, slot_next)

    b.position_at_end(slot_next)
    b.store(b.add(b.load(i_slot), 1), i_slot)
    b.jmp(slot_body)

    b.position_at_end(follow)
    bucket = b.load(bucket_slot, PTR)
    b.store(b.load(b.gep(bucket, OFF_NEXT), PTR), bucket_slot, PTR)
    b.jmp(bucket_loop)

    b.position_at_end(found)
    i = b.load(i_slot)
    bucket = b.load(bucket_slot, PTR)
    b.ret(b.load(b.gep(bucket, b.add(OFF_VALS, b.mul(i, 8)))))
    b.position_at_end(miss)
    b.ret(0)


def _add_clht_delete(mb: ModuleBuilder) -> None:
    """Remove a key; returns 1 when removed (correct: flush + fence)."""
    b = mb.function(
        "clht_delete", [("key", I64)], return_type=I64, source_file=PCLHT_FILE
    )
    (key,) = b.function.args
    root = b.call("pm_root", [128], PTR)
    table = b.load(b.gep(root, OFF_TABLE), PTR)
    nbuckets = b.load(b.gep(root, OFF_NBUCKETS))
    h = b.call("clht_hash", [key], I64)
    idx = b.urem(h, nbuckets)
    bucket_slot = b.alloca(8)
    i_slot = b.alloca(8)
    b.store(b.gep(table, b.mul(idx, BUCKET_SIZE)), bucket_slot, PTR)

    bucket_loop = b.new_block("bucket_loop")
    slot_init = b.new_block("slot_init")
    slot_cond = b.new_block("slot_cond")
    slot_check = b.new_block("slot_check")
    slot_next = b.new_block("slot_next")
    follow = b.new_block("follow")
    found = b.new_block("found")
    miss = b.new_block("miss")
    b.jmp(bucket_loop)

    b.position_at_end(bucket_loop)
    bucket = b.load(bucket_slot, PTR)
    is_null = b.icmp("eq", bucket, 0)
    b.br(is_null, miss, slot_init)
    b.position_at_end(slot_init)
    b.store(0, i_slot)
    b.jmp(slot_cond)

    b.position_at_end(slot_cond)
    i = b.load(i_slot)
    in_range = b.icmp("ult", i, SLOTS)
    b.br(in_range, slot_check, follow)
    b.position_at_end(slot_check)
    i = b.load(i_slot)
    bucket = b.load(bucket_slot, PTR)
    k = b.load(b.gep(bucket, b.mul(i, 8)))
    is_match = b.icmp("eq", k, key)
    b.br(is_match, found, slot_next)

    b.position_at_end(slot_next)
    b.store(b.add(b.load(i_slot), 1), i_slot)
    b.jmp(slot_cond)

    b.position_at_end(follow)
    bucket = b.load(bucket_slot, PTR)
    b.store(b.load(b.gep(bucket, OFF_NEXT), PTR), bucket_slot, PTR)
    b.jmp(bucket_loop)

    b.position_at_end(found)
    i = b.load(i_slot)
    bucket = b.load(bucket_slot, PTR)
    key_ptr = b.gep(bucket, b.mul(i, 8))
    b.store(0, key_ptr)
    b.flush(key_ptr, "clwb")
    b.fence("sfence")
    b.call("checkpoint", [])
    b.ret(1)
    b.position_at_end(miss)
    b.ret(0)


def build_pclht(seeds: FrozenSet[str] = PCLHT_SEEDS, name: str = "pclht") -> Module:
    """Build P-CLHT; default seeds reproduce the two study bugs."""
    unknown = set(seeds) - PCLHT_SEEDS
    if unknown:
        raise ValueError(f"unknown P-CLHT seeds: {sorted(unknown)}")
    mb = build_pmdk_module(name=name)
    _add_clht_create(mb)
    _add_clht_hash(mb)
    _add_clht_put(mb, frozenset(seeds))
    _add_clht_get(mb)
    _add_clht_delete(mb)
    return mb.module


class PCLHT:
    """Host driver for the P-CLHT index."""

    def __init__(self, module: Module, interp: Optional[Interpreter] = None):
        self.module = module
        self.interp = interp or make_interpreter(module)

    def create(self, nbuckets: int = 64) -> None:
        self.interp.call("clht_create", [nbuckets])

    def put(self, key: int, val: int) -> int:
        return self.interp.call("clht_put", [key, val]).value

    def get(self, key: int) -> int:
        return self.interp.call("clht_get", [key]).value

    def delete(self, key: int) -> int:
        return self.interp.call("clht_delete", [key]).value

    def finish(self):
        return self.interp.finish()
