"""Crash-recovery integration tests: reboot from a crash image and
observe what a recovering process actually sees."""

import pytest

from repro.apps import KVStore, build_kvstore
from repro.bench import redis_trace_workload
from repro.core import Hippocrates
from repro.errors import TrapError
from repro.interp import Interpreter, Machine
from repro.memory import CrashExplorer


def fixed_kvstore():
    module = build_kvstore("noflush")
    tracer = KVStore(module)
    redis_trace_workload(tracer)
    Hippocrates(module, tracer.finish(), tracer.machine).fix()
    return module


def reopen(module, machine, image):
    rebooted = Machine.reboot(machine, image)
    return KVStore(module, Interpreter(module, machine=rebooted))


class TestRebootMechanics:
    def test_reboot_preserves_durable_pm(self):
        module = build_kvstore("manual")
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        kv.put(b"key-one", b"value-one!!")
        image = kv.machine.image.crash()  # adversarial crash
        recovered = reopen(module, kv.machine, image)
        assert recovered.get(b"key-one") == b"value-one!!"

    def test_reboot_drops_pending_lines(self):
        module = build_kvstore("noflush")  # buggy: nothing durable
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        kv.put(b"key-one", b"value-one!!")
        image = kv.machine.image.crash()
        recovered = reopen(module, kv.machine, image)
        # Nothing reached the media — not even kv_init's pool metadata.
        # Recovery finds an unformatted pool and fails outright (the
        # strongest form of the durability bug's consequence).
        with pytest.raises(TrapError):
            recovered.get(b"key-one")

    def test_recovered_store_remains_usable(self):
        module = build_kvstore("manual")
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        for i in range(10):
            kv.put(f"key{i:02d}".encode(), f"val{i:02d}".encode() * 2)
        recovered = reopen(module, kv.machine, kv.machine.image.crash())
        # reads, updates, inserts, deletes all work post-recovery
        assert recovered.get(b"key03") == b"val03" * 2
        recovered.put(b"key03", b"NEW03NEW03")
        assert recovered.get(b"key03") == b"NEW03NEW03"
        recovered.put(b"fresh0", b"x" * 10)
        assert recovered.get(b"fresh0") == b"x" * 10
        assert recovered.delete(b"key05")
        assert recovered.get(b"key05") is None


class TestRecoveryAcrossCrashStates:
    def test_fixed_store_recovers_in_every_crash_state(self):
        module = fixed_kvstore()
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        kv.put(b"the-key-1", b"the-value-001")
        explorer = CrashExplorer(kv.machine.cache, kv.machine.image)
        states = list(explorer.states(max_states=32))
        for state in states:
            recovered = reopen(module, kv.machine, state.image)
            assert recovered.get(b"the-key-1") == b"the-value-001", (
                state.surviving_lines
            )

    def test_buggy_store_loses_data_in_some_crash_state(self):
        module = build_kvstore("noflush")
        kv = KVStore(module)
        kv.init(32, 1 << 20)
        kv.put(b"the-key-1", b"the-value-001")
        explorer = CrashExplorer(kv.machine.cache, kv.machine.image)
        lost = 0
        for state in explorer.states(max_states=16):
            recovered = reopen(module, kv.machine, state.image)
            try:
                value = recovered.get(b"the-key-1")
            except TrapError:
                value = None  # unrecoverable pool: data effectively lost
            if value != b"the-value-001":
                lost += 1
        assert lost > 0
