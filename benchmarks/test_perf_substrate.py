"""Substrate micro-benchmarks: interpreter, detector, and analysis
throughput.  Not a paper figure — these guard the simulator's own
performance so the evaluation suite stays runnable.
"""

from repro.analysis import PointsTo
from repro.apps import KVStore, build_kvstore
from repro.bench import redis_trace_workload
from repro.detect import check_trace
from repro.interp import Interpreter
from repro.ir import I64, ModuleBuilder
from repro.trace import dump_trace, load_trace


def _loop_module(iterations: int):
    mb = ModuleBuilder("hot")
    b = mb.function("main", [], I64)
    acc = b.alloca(8)
    i = b.alloca(8)
    b.store(0, acc)
    b.store(0, i)
    cond = b.new_block("cond")
    body = b.new_block("body")
    done = b.new_block("done")
    b.jmp(cond)
    b.position_at_end(cond)
    b.br(b.icmp("ult", b.load(i), iterations), body, done)
    b.position_at_end(body)
    b.store(b.add(b.load(acc), b.load(i)), acc)
    b.store(b.add(b.load(i), 1), i)
    b.jmp(cond)
    b.position_at_end(done)
    b.ret(b.load(acc))
    return mb.module


def test_interpreter_throughput(benchmark):
    module = _loop_module(2000)

    def run():
        interp = Interpreter(module)
        return interp.call("main").value

    assert benchmark(run) == sum(range(2000))


def test_detector_throughput(benchmark):
    module = build_kvstore("noflush")
    store = KVStore(module)
    redis_trace_workload(store)
    trace = store.finish()
    result = benchmark(lambda: check_trace(trace))
    assert result.bug_count > 0


def test_trace_serialization_throughput(benchmark):
    module = build_kvstore("noflush")
    store = KVStore(module)
    redis_trace_workload(store)
    trace = store.finish()

    def roundtrip():
        return len(load_trace(dump_trace(trace)))

    assert benchmark(roundtrip) == len(trace)


def test_points_to_analysis_throughput(benchmark):
    module = build_kvstore("manual")
    pts = benchmark(lambda: PointsTo(module))
    assert pts.sites


def test_kvstore_operation_latency(benchmark):
    module = build_kvstore("manual")
    store = KVStore(module)
    store.init(128, 1 << 22)
    counter = [0]

    def one_put():
        counter[0] += 1
        store.put(f"key{counter[0]:08d}".encode(), b"v" * 96)

    benchmark(one_put)
