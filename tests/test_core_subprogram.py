"""Unit tests for function cloning and the persistent subprogram
transformation."""

from repro.analysis import classify_full_aa
from repro.core import PM_SUFFIX, SubprogramTransformer, clone_function
from repro.detect import pmemcheck_run
from repro.interp import Interpreter
from repro.ir import (
    Fence,
    Flush,
    I64,
    ModuleBuilder,
    PTR,
    Store,
    verify_module,
)

from conftest import build_listing5_module, drive_main


class TestCloneFunction:
    def test_clone_is_structurally_identical(self):
        module = build_listing5_module()
        original = module.get_function("foo")
        clone, instr_map = clone_function(original, "foo_copy")
        assert clone.instruction_count() == original.instruction_count()
        assert len(clone.blocks) == len(original.blocks)
        assert clone.cloned_from == "foo"
        assert [a.type for a in clone.args] == [a.type for a in original.args]
        # iids are fresh, locations preserved
        for old, new in instr_map.items():
            assert old.iid != new.iid
            assert old.loc == new.loc

    def test_clone_executes_identically(self):
        module = build_listing5_module()
        clone, _ = clone_function(module.get_function("update"), "update_copy")
        module.insert_function(clone)
        verify_module(module)
        interp = Interpreter(module)
        p = interp.machine.space.alloc_vol(64)
        interp.call("update", [p, 0, 77])
        original_value = interp.machine.space.read_int(p, 1)
        q = interp.machine.space.alloc_vol(64)
        interp.call("update_copy", [q, 0, 77])
        assert interp.machine.space.read_int(q, 1) == original_value


class TestTransformation:
    def setup_transformed(self):
        module = build_listing5_module()
        _, trace, interp = pmemcheck_run(module, drive_main)
        classifier = classify_full_aa(module)
        transformer = SubprogramTransformer(module, classifier)
        foo = module.get_function("foo")
        pm_call = [c for c in foo.calls() if c.callee == "modify"][-1]
        transformer.transform_call_site(pm_call)
        return module, transformer, pm_call

    def test_clone_chain_created(self):
        module, transformer, call = self.setup_transformed()
        assert call.callee == "modify" + PM_SUFFIX
        assert module.has_function("modify_PM")
        assert module.has_function("update_PM")
        verify_module(module)

    def test_clone_has_flushes_after_pm_stores(self):
        module, transformer, _ = self.setup_transformed()
        update_pm = module.get_function("update_PM")
        ops = [i.opcode for i in update_pm.instructions()]
        store_index = ops.index("store")
        assert ops[store_index + 1] == "flush"
        # the original is untouched
        assert "flush" not in [i.opcode for i in module.get_function("update").instructions()]

    def test_fence_after_call_site_unless_present(self):
        module = build_listing5_module()
        classifier = classify_full_aa(module)
        transformer = SubprogramTransformer(module, classifier)
        foo = module.get_function("foo")
        pm_call = [c for c in foo.calls() if c.callee == "modify"][-1]
        # Listing 5's foo already has a fence right after the call.
        _, fence = transformer.transform_call_site(pm_call)
        assert fence is None

    def test_fence_inserted_when_absent(self):
        mb = ModuleBuilder("t")
        b = mb.function("w", [("p", PTR)], I64)
        b.store(1, b.function.args[0])
        b.ret(0)
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        call = b.call("w", [p], I64)
        b.ret(0)
        classifier = classify_full_aa(mb.module)
        transformer = SubprogramTransformer(mb.module, classifier)
        _, fence = transformer.transform_call_site(call)
        assert isinstance(fence, Fence)
        block = call.parent
        assert block.instructions[block.index_of(call) + 1] is fence
        verify_module(mb.module)

    def test_clone_reuse_across_call_sites(self):
        """The paper's permute example: a second transformation reuses
        update_PM instead of minting update_PM_2 (code-bloat control)."""
        mb = ModuleBuilder("t")
        b = mb.function("update", [("p", PTR)], I64)
        b.store(1, b.function.args[0])
        b.ret(0)
        b = mb.function("modify", [("p", PTR)], I64)
        b.ret(b.call("update", [b.function.args[0]], I64))
        b = mb.function("permute", [("p", PTR)], I64)
        b.ret(b.call("update", [b.function.args[0]], I64))
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        c1 = b.call("modify", [p], I64)
        c2 = b.call("permute", [p], I64)
        b.ret(0)
        classifier = classify_full_aa(mb.module)
        transformer = SubprogramTransformer(mb.module, classifier)
        main = mb.module.get_function("main")
        for call in [c for c in main.calls() if c.callee in ("modify", "permute")]:
            transformer.transform_call_site(call)
        assert mb.module.has_function("update_PM")
        assert not mb.module.has_function("update_PM2")
        modify_pm = mb.module.get_function("modify_PM")
        permute_pm = mb.module.get_function("permute_PM")
        assert [c.callee for c in modify_pm.calls()] == ["update_PM"]
        assert [c.callee for c in permute_pm.calls()] == ["update_PM"]
        verify_module(mb.module)

    def test_transform_idempotent(self):
        module = build_listing5_module()
        classifier = classify_full_aa(module)
        transformer = SubprogramTransformer(module, classifier)
        foo = module.get_function("foo")
        pm_call = [c for c in foo.calls() if c.callee == "modify"][-1]
        transformer.transform_call_site(pm_call)
        size_after_first = module.instruction_count()
        transformer.transform_call_site(pm_call)
        assert module.instruction_count() == size_after_first

    def test_recursive_functions_clone_safely(self):
        mb = ModuleBuilder("t")
        b = mb.function("rec", [("p", PTR), ("n", I64)], I64)
        base = b.new_block("base")
        step = b.new_block("step")
        b.br(b.icmp("eq", b.function.args[1], 0), base, step)
        b.position_at_end(base)
        b.ret(0)
        b.position_at_end(step)
        b.store(b.function.args[1], b.function.args[0])
        v = b.call("rec", [b.function.args[0], b.sub(b.function.args[1], 1)], I64)
        b.ret(v)
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        call = b.call("rec", [p, 3], I64)
        b.ret(0)
        classifier = classify_full_aa(mb.module)
        transformer = SubprogramTransformer(mb.module, classifier)
        transformer.transform_call_site(call)
        rec_pm = mb.module.get_function("rec_PM")
        # the clone's recursive call targets the clone, not the original
        assert [c.callee for c in rec_pm.calls()] == ["rec_PM"]
        verify_module(mb.module)

    def test_volatile_only_callees_not_cloned(self):
        mb = ModuleBuilder("t")
        b = mb.function("pure", [("x", I64)], I64)
        b.ret(b.mul(b.function.args[0], 3))
        b = mb.function("w", [("p", PTR)], I64)
        v = b.call("pure", [5], I64)
        b.store(v, b.function.args[0])
        b.ret(0)
        b = mb.function("main", [], I64)
        p = b.call("pm_alloc", [64], PTR)
        call = b.call("w", [p], I64)
        b.ret(0)
        classifier = classify_full_aa(mb.module)
        transformer = SubprogramTransformer(mb.module, classifier)
        transformer.transform_call_site(call)
        w_pm = mb.module.get_function("w_PM")
        # pure has no PM stores: the clone still calls the original
        assert [c.callee for c in w_pm.calls()] == ["pure"]
        assert not mb.module.has_function("pure_PM")
