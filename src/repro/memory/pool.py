"""Pooled reuse of machine memory across runs.

A corpus case is construction-bound: at ~2.8K interpreted steps per
case, allocating three 16 MiB :class:`~repro.memory.layout.Region`
buffers plus the 16 MiB :class:`~repro.memory.persistence.PersistentImage`
copy for every detect / replay / revalidate run costs more than the
interpretation itself.  :class:`MachinePool` keeps retired
``(AddressSpace, PersistentImage)`` pairs and hands them back out,
resetting only the live prefixes in place (regions zero up to their
high-water mark, the image up to its dirty bound) instead of
reallocating.

The pool is a pure allocation cache: a machine built from pooled parts
is byte-for-byte indistinguishable from one built from fresh buffers.
Two reset disciplines cover the two construction paths:

* ``acquire`` — for fresh-machine construction (detect, re-record).
  The pair comes back fully reset: all-zero regions, all-zero durable
  view, zeroed counters.
* ``acquire_raw`` — for :meth:`MachineSnapshot.materialize`, which
  overwrites state wholesale anyway.  The pair comes back *dirty* and
  the snapshot-restore path zeroes exactly the gaps it does not
  overwrite (see ``_restore_region`` / ``restore_prefix``).

Pairs are released raw (no reset on release), so a release is O(1); the
zeroing cost is paid only when a pair is actually reused.  The pool is
not thread-safe — each supervisor worker (one process per task) or
in-process batch loop owns its own pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .layout import _DEFAULT_REGION_SIZE, AddressSpace
from .persistence import PersistentImage

_SizeKey = Tuple[int, int, int]
_Pair = Tuple[AddressSpace, PersistentImage]


class MachinePool:
    """A bounded free-list of ``(AddressSpace, PersistentImage)`` pairs."""

    def __init__(self, max_idle: int = 4):
        if max_idle < 1:
            raise ValueError("max_idle must be >= 1")
        self.max_idle = max_idle
        self._idle: Dict[_SizeKey, List[_Pair]] = {}
        self._idle_ids: set = set()
        #: reuse statistics (observability; never affect semantics)
        self.hits = 0
        self.misses = 0
        self.releases = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        idle = sum(len(pairs) for pairs in self._idle.values())
        return f"MachinePool(idle={idle}, hits={self.hits}, misses={self.misses})"

    # -- internal ----------------------------------------------------------------

    def _take(self, key: _SizeKey) -> Optional[_Pair]:
        pairs = self._idle.get(key)
        if not pairs:
            return None
        pair = pairs.pop()
        self._idle_ids.discard(id(pair[0]))
        self.hits += 1
        return pair

    # -- acquire ------------------------------------------------------------------

    def acquire(
        self,
        vol_size: int = _DEFAULT_REGION_SIZE,
        stack_size: int = _DEFAULT_REGION_SIZE,
        pm_size: int = _DEFAULT_REGION_SIZE,
    ) -> Tuple[AddressSpace, PersistentImage]:
        """A clean pair, indistinguishable from freshly constructed."""
        pair = self._take((vol_size, stack_size, pm_size))
        if pair is None:
            self.misses += 1
            space = AddressSpace(vol_size, stack_size, pm_size)
            return space, PersistentImage(space)
        space, image = pair
        space.reset()
        image.reset()
        return space, image

    def acquire_raw(
        self,
        vol_size: int,
        stack_size: int,
        pm_size: int,
    ) -> Optional[Tuple[AddressSpace, PersistentImage]]:
        """A dirty pair for snapshot restore, or ``None`` on a miss.

        The caller owns re-establishing every invariant: region
        contents, brk and high-water marks, and the durable prefix.
        """
        pair = self._take((vol_size, stack_size, pm_size))
        if pair is None:
            self.misses += 1
        return pair

    # -- release ------------------------------------------------------------------

    def release(self, machine) -> None:
        """Retire a machine's buffers into the pool.

        The machine must not be used afterwards.  Double releases and
        machines whose image belongs to a different space are ignored
        (defensive: a pooled buffer must never sit on the free list
        twice, or two live machines would alias it).
        """
        space = getattr(machine, "space", None)
        image = getattr(machine, "image", None)
        if space is None or image is None or image.space is not space:
            return
        self.release_parts(space, image)

    def release_parts(self, space: AddressSpace, image: PersistentImage) -> None:
        if id(space) in self._idle_ids:
            return
        key = (space.vol.size, space.stack.size, space.pm.size)
        pairs = self._idle.setdefault(key, [])
        if len(pairs) >= self.max_idle:
            return
        pairs.append((space, image))
        self._idle_ids.add(id(space))
        self.releases += 1
