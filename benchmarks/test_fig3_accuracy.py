"""E3 — Fig. 3: qualitative comparison with developer fixes.

The paper: 8/11 fixes functionally identical to the PMDK developers'
(interprocedural flush+fence), 3/11 functionally equivalent but the
developer fix is more machine-portable (issues 452, 940, 943:
intraprocedural clwb vs interprocedural pmem_flush).
"""

from repro.bench import fig3_table, run_case
from repro.corpus import EQUIVALENT_PORTABLE, IDENTICAL, pmdk_cases

from conftest import save_table


def test_fig3_accuracy(benchmark, fig3_outcomes):
    outcomes = fig3_outcomes
    save_table("fig3_accuracy.txt", fig3_table(outcomes))

    assert len(outcomes) == 11
    identical = [o for o in outcomes if o.comparison == IDENTICAL]
    equivalent = [o for o in outcomes if o.comparison == EQUIVALENT_PORTABLE]
    assert len(identical) == 8
    assert len(equivalent) == 3
    assert sorted(o.case.case_id for o in equivalent) == [
        "PMDK-452",
        "PMDK-940",
        "PMDK-943",
    ]
    # every case has a verdict; nothing fell into "different"
    assert all(o.comparison in (IDENTICAL, EQUIVALENT_PORTABLE) for o in outcomes)

    # Benchmark kernel: fix accuracy comparison for one issue.
    case_447 = [c for c in pmdk_cases() if c.case_id == "PMDK-447"][0]
    benchmark(lambda: run_case(case_447).comparison)
