"""Zipfian and related request distributions (YCSB's generators).

Implements the standard YCSB generator family:

- :class:`ZipfianGenerator` — Gray et al.'s rejection-free zipfian
  sampler (the same algorithm YCSB uses), skew ``theta`` = 0.99.
- :class:`ScrambledZipfianGenerator` — zipfian over a hashed keyspace,
  so the popular items are spread across the key range.
- :class:`LatestGenerator` — skewed towards recently inserted items
  (workload D).
- :class:`UniformGenerator` — uniform over the item count.

All generators draw from a seeded :class:`random.Random`, so workloads
are reproducible.
"""

from __future__ import annotations

import random


def fnv1a64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's
    key-scrambling hash)."""
    result = 0xCBF29CE484222325
    for _ in range(8):
        result = ((result ^ (value & 0xFF)) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return result


class UniformGenerator:
    """Uniform over ``[0, item_count)``."""

    def __init__(self, item_count: int, rng: random.Random):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self._rng = rng

    def next(self) -> int:
        return self._rng.randrange(self.item_count)


class ZipfianGenerator:
    """Gray et al.'s zipfian sampler over ``[0, item_count)``.

    Item 0 is the most popular.  ``theta`` = 0.99 matches YCSB.
    """

    def __init__(self, item_count: int, rng: random.Random, theta: float = 0.99):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self.theta = theta
        self._rng = rng
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
            1 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.item_count * ((self._eta * u - self._eta + 1) ** self._alpha)
        )


class ScrambledZipfianGenerator:
    """Zipfian with FNV-scrambled ranks, as in YCSB: popularity is
    zipfian but popular items are scattered over the keyspace."""

    def __init__(self, item_count: int, rng: random.Random, theta: float = 0.99):
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, rng, theta)

    def next(self) -> int:
        return fnv1a64(self._zipf.next()) % self.item_count


class LatestGenerator:
    """Skewed towards the most recently inserted item (workload D).

    ``max_item`` grows as the client inserts; ``next`` favors items
    near the current maximum.
    """

    def __init__(self, item_count: int, rng: random.Random, theta: float = 0.99):
        self.max_item = item_count
        self._rng = rng
        self._theta = theta
        self._rebuild()

    def _rebuild(self) -> None:
        self._zipf = ZipfianGenerator(self.max_item, self._rng, self._theta)

    def advance(self) -> int:
        """Record an insert; returns the new item's index."""
        index = self.max_item
        self.max_item += 1
        self._rebuild()
        return index

    def next(self) -> int:
        return self.max_item - 1 - self._zipf.next() % self.max_item
