"""Value hierarchy for the reproduction IR.

Everything an instruction can reference as an operand is a
:class:`Value`: constants, function arguments, global variables, and
instructions themselves (an instruction *is* the value it produces,
exactly as in LLVM).
"""

from __future__ import annotations

from typing import Optional

from .types import I64, PTR, IntType, Type


class Value:
    """Base class for everything that can appear as an operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    def short(self) -> str:
        """A compact printable reference to this value (``%x``, ``42``)."""
        return f"%{self.name}" if self.name else "%?"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()}: {self.type}>"


class Constant(Value):
    """An integer (or pointer-valued) literal."""

    def __init__(self, value: int, type_: Type = I64):
        super().__init__(type_)
        if isinstance(type_, IntType):
            value &= type_.mask
        else:
            value &= (1 << 64) - 1
        self.value = value

    def short(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.value == self.value
            and other.type == self.type
        )

    def __hash__(self) -> int:
        return hash((self.value, repr(self.type)))


#: The null pointer constant, shared for convenience.
NULL = Constant(0, PTR)


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, name: str, type_: Type, index: int):
        super().__init__(type_, name)
        self.index = index
        self.parent: Optional[object] = None  # set by Function

    def short(self) -> str:
        return f"%{self.name}"


class GlobalVariable(Value):
    """A module-level variable living in PM or volatile memory.

    Globals are pointer-valued: referencing the global in an operand
    position yields its address, as in LLVM.  The backing storage is
    allocated by the interpreter when a module is loaded.

    :param space: ``"pm"`` for persistent storage or ``"vol"`` for
        volatile storage.
    :param size: storage size in bytes.
    :param initializer: optional initial bytes (zero-filled otherwise).
    """

    def __init__(
        self,
        name: str,
        size: int,
        space: str = "vol",
        initializer: Optional[bytes] = None,
    ):
        if space not in ("pm", "vol"):
            raise ValueError(f"bad global space: {space!r}")
        if size <= 0:
            raise ValueError("global size must be positive")
        if initializer is not None and len(initializer) > size:
            raise ValueError("initializer larger than global")
        super().__init__(PTR, name)
        self.size = size
        self.space = space
        self.initializer = initializer

    def short(self) -> str:
        return f"@{self.name}"
