"""Phase 2: fix reduction — merging redundant flush and fence fixes.

Two reductions, both direct from the paper's §4.3:

1. *Duplicate elimination*: two fixes that flush the same store (or
   fence the same flush) merge into one, since one ``F(X)`` already
   satisfies ``X -> F(X) -> M -> I`` for every bug involved.
2. *Fence coalescing*: flush&fence fixes anchored to stores in the same
   basic block whose bugs share the same durability boundary keep one
   fence — after the last flush — because a single ``M`` with
   ``F(X1) -> M`` and ``F(X2) -> M`` orders both.

Coalescing groups by the *set* of boundaries a fix's bugs need ordered,
not by any single representative bug: after duplicate elimination a
merged fix can discharge bugs with different boundaries, and demoting
its fence because it shares a block with a fix for just one of those
boundaries would leave the other boundary's ``F(X) -> M`` edge
unsatisfied.  Only fixes whose boundary sets match exactly may share a
fence.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..ir.basicblock import BasicBlock
from .fixes import (
    Fix,
    HoistedFix,
    InsertFenceAfterFlush,
    InsertFenceAfterStore,
    InsertFlush,
    InsertFlushAndFence,
)


def _dedupe(fixes: List[Fix]) -> List[Fix]:
    """Merge fixes that target the same anchor instruction."""
    merged: Dict[Tuple[str, int], Fix] = {}
    order: List[Tuple[str, int]] = []
    for fix in fixes:
        if isinstance(fix, InsertFlush):
            key = ("flush", fix.store.iid)
        elif isinstance(fix, InsertFlushAndFence):
            key = ("flush+fence", fix.store.iid)
        elif isinstance(fix, InsertFenceAfterFlush):
            key = ("fence", fix.flush.iid)
        elif isinstance(fix, InsertFenceAfterStore):
            key = ("fence-nt", fix.store.iid)
        else:
            key = ("other", id(fix))
        existing = merged.get(key)
        if existing is None:
            merged[key] = fix
            order.append(key)
        else:
            existing.bugs.extend(fix.bugs)
    # A flush+fence at a store subsumes a plain flush at the same store.
    for key in list(merged):
        kind, iid = key
        if kind == "flush" and ("flush+fence", iid) in merged:
            merged[("flush+fence", iid)].bugs.extend(merged[key].bugs)
            del merged[key]
            order.remove(key)
    return [merged[key] for key in order]


def _boundary_set(fix: InsertFlushAndFence) -> FrozenSet[int]:
    """Every boundary iid this fix's fence must order flushes before."""
    if not fix.bugs:
        return frozenset({-1})
    return frozenset(bug.boundary.iid for bug in fix.bugs)


def _coalesce_fences(fixes: List[Fix]) -> List[Fix]:
    """Keep one fence per (block, boundary-set) group of flush&fence
    fixes.

    The group key is the frozen set of *all* boundary iids the fix's
    bugs reference — a fix that (after ``_dedupe``) discharges bugs
    with two different boundaries may only coalesce with a fix needing
    the same two, never with a single-boundary neighbour.  Group
    members are tracked by list position, not by value: ``Fix``
    subclasses are dataclasses with value equality, so ``list.index``
    could demote a different-but-equal entry.
    """
    groups: Dict[
        Tuple[int, FrozenSet[int]], List[Tuple[int, InsertFlushAndFence]]
    ] = {}
    for pos, fix in enumerate(fixes):
        if not isinstance(fix, InsertFlushAndFence):
            continue
        block = fix.store.parent
        groups.setdefault((id(block), _boundary_set(fix)), []).append((pos, fix))

    result: List[Fix] = list(fixes)
    for group in groups.values():
        if len(group) < 2:
            continue
        block: BasicBlock = group[0][1].store.parent  # type: ignore[assignment]
        # The fix whose store appears last in the block keeps its fence;
        # the rest become flush-only fixes.
        group.sort(key=lambda entry: block.index_of(entry[1].store))
        for pos, fix in group[:-1]:
            result[pos] = InsertFlush(
                bugs=fix.bugs, store=fix.store, flush_kind=fix.flush_kind
            )
    return result


def reduce_fixes(fixes: List[Fix]) -> List[Fix]:
    """Apply both reductions; hoisted fixes pass through untouched."""
    plain = [f for f in fixes if not isinstance(f, HoistedFix)]
    hoisted = [f for f in fixes if isinstance(f, HoistedFix)]
    reduced = _coalesce_fences(_dedupe(plain))
    return reduced + hoisted
