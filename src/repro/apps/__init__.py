"""Evaluation targets written in the reproduction IR.

- :mod:`repro.apps.stdlib` — memcpy/memset/memcmp (the shared helpers)
- :mod:`repro.apps.pmdk_mini` — libpmem + a libpmemobj-style pool
- :mod:`repro.apps.kvstore` — Redis-pmem analog (Fig. 4 target)
- :mod:`repro.apps.pclht` — RECIPE's P-CLHT analog (2 seeded bugs)
- :mod:`repro.apps.pmemcached` — memcached-pm analog (10 seeded bugs)
"""

from .kvstore import KVStore, build_kvstore
from .pclht import PCLHT, PCLHT_SEEDS, build_pclht
from .pmdk_mini import build_pmdk_module
from .pmemcached import MC_SEEDS, Memcached, build_pmemcached
from .stdlib import add_stdlib

__all__ = [
    "add_stdlib",
    "build_kvstore",
    "build_pclht",
    "build_pmdk_module",
    "build_pmemcached",
    "KVStore",
    "MC_SEEDS",
    "Memcached",
    "PCLHT",
    "PCLHT_SEEDS",
]
