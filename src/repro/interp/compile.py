"""The per-function compiler behind the flat execution engine.

Lowers IR functions into :class:`CompiledFunction` objects the flat
engine (:mod:`repro.interp.engine`) dispatches over:

- every SSA value (argument, instruction result, constant, global
  address) gets a dense **register slot**; operands are resolved to
  slot indexes at compile time, so the engine reads ``regs[slot]``
  instead of hashing a ``Dict[Value, int]`` per operand;
- constants are folded into the frame **template** (copied per
  activation), so a constant operand costs the same list index as any
  other register;
- global variables get template slots too, filled with their machine
  addresses at *link* time (the compiled program itself is
  machine-independent — one compile serves every machine);
- basic blocks are concatenated into one flat instruction stream and
  branch targets resolved to **pc offsets**, killing the
  ``frame.block.instructions[frame.index]`` double-indexing;
- call instructions pre-resolve their callee: module function, known
  intrinsic, declaration (error when executed), or unknown (ditto) —
  sound because any module change that could alter resolution bumps the
  module epoch and changes the caller's :func:`function_signature`.

Each instruction becomes a flat tuple ``(opcode, iid, ...)`` whose
layout is opcode-specific (see the ``_encode_*`` helpers); a parallel
``insts`` tuple keeps the original :class:`Instruction` objects for the
cold paths that need source locations or stack frames.

**Incremental recompilation**: :func:`compile_module` accepts the
previous :class:`CompiledProgram` and reuses any function whose
:func:`function_signature` is unchanged, so the repair loop's
flush/fence insertions recompile only the touched function(s).
:func:`cached_program` is the module-level entry point — a weak
per-module cache validated against the mutation epoch, shared by every
engine (and by the analysis manager's ``compiled_program`` key) so
detection, replay, and revalidation all link against one compile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from ..errors import InterpreterError
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Fence,
    Flush,
    Gep,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    Trap,
)
from ..ir.module import Module
from ..ir.opcodes import (
    BINOP_OPCODES,
    ICMP_OPCODES,
    OP_ALLOCA,
    OP_BR,
    OP_CALL,
    OP_CAST,
    OP_FELL_OFF,
    OP_FENCE,
    OP_FLUSH,
    OP_GEP,
    OP_JMP,
    OP_LOAD,
    OP_RET,
    OP_SELECT,
    OP_STORE,
    OP_TRAP,
)
from ..ir.types import IntType
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .intrinsics import is_intrinsic, lookup

_U64 = (1 << 64) - 1

#: Call resolution kinds (slot 6 of an OP_CALL tuple).
CALL_MODULE = 0
CALL_INTRINSIC = 1
CALL_DECLARATION = 2
CALL_UNKNOWN = 3


def _mask_of(type_) -> int:
    """The truncation mask for a value of ``type_`` (pointer = 64-bit),
    mirroring ``Interpreter._truncate``."""
    if isinstance(type_, IntType):
        return type_.mask
    return _U64


def function_signature(fn: Function, module: Module) -> Tuple:
    """A cheap per-function change detector for incremental recompiles.

    Captures, in block order: every instruction's globally unique iid
    (insertions/removals/clones always mint fresh iids) and, for calls,
    the callee name plus whether it currently resolves to a module
    function (a call retarget changes the name; adding/removing the
    callee function flips the resolution bit).  Equal signatures at
    different epochs mean the compiled form is still exact.
    """
    sig: List = []
    for block in fn.blocks:
        for instr in block:
            if isinstance(instr, Call):
                sig.append(
                    (instr.iid, instr.callee, module.has_function(instr.callee))
                )
            else:
                sig.append(instr.iid)
    return tuple(sig)


class CompiledFunction:
    """One function lowered to the flat format.

    :ivar code: tuple of per-instruction opcode tuples (pc-indexed).
    :ivar insts: parallel tuple of the source :class:`Instruction`
        objects (``None`` at fell-off pseudo-slots); cold paths use it
        for source locations and stack capture.
    :ivar base_template: machine-independent register file prototype —
        constants pre-stored, everything else ``None``.  Engines link it
        against a machine by filling :attr:`global_slots`.
    :ivar global_slots: ``(slot, global_name)`` pairs to resolve at link
        time.
    :ivar arg_masks: per-formal truncation masks (args occupy register
        slots ``0..len(arg_masks)-1``).
    :ivar slots: the value -> slot map (debugging / error translation
        only — never on the execution hot path).
    :ivar signature: the :func:`function_signature` this was compiled
        from, compared on recompiles for reuse.
    """

    __slots__ = (
        "name",
        "code",
        "insts",
        "base_template",
        "global_slots",
        "arg_masks",
        "slots",
        "signature",
    )

    def __init__(self, name: str, signature: Tuple):
        self.name = name
        self.signature = signature
        self.code: Tuple[tuple, ...] = ()
        self.insts: Tuple[Optional[Instruction], ...] = ()
        self.base_template: List = []
        self.global_slots: Tuple[Tuple[int, str], ...] = ()
        self.arg_masks: Tuple[int, ...] = ()
        self.slots: Dict[Value, int] = {}

    def __repr__(self) -> str:
        return (
            f"<CompiledFunction @{self.name}: {len(self.code)} slots, "
            f"{len(self.base_template)} regs>"
        )


class CompiledProgram:
    """A module compiled at one mutation epoch."""

    __slots__ = ("module_name", "epoch", "functions")

    def __init__(
        self, module_name: str, epoch: int, functions: Dict[str, CompiledFunction]
    ):
        self.module_name = module_name
        self.epoch = epoch
        self.functions = functions

    def reused_from(self, previous: Optional["CompiledProgram"]) -> int:
        """How many functions were carried over from ``previous``
        (identity comparison; diagnostics for tests and benchmarks)."""
        if previous is None:
            return 0
        return sum(
            1
            for name, cf in self.functions.items()
            if previous.functions.get(name) is cf
        )

    def __repr__(self) -> str:
        return (
            f"<CompiledProgram {self.module_name!r} epoch={self.epoch} "
            f"({len(self.functions)} functions)>"
        )


class _FunctionCompiler:
    """Single-use lowering context for one function."""

    def __init__(self, fn: Function, module: Module):
        self.fn = fn
        self.module = module
        self.slots: Dict[Value, int] = {}
        self.template: List = []
        self.const_slots: Dict[int, int] = {}
        self.global_slots: List[Tuple[int, str]] = []

    def _new_slot(self, initial=None) -> int:
        slot = len(self.template)
        self.template.append(initial)
        return slot

    def slot_of(self, value: Value) -> int:
        slot = self.slots.get(value)
        if slot is not None:
            return slot
        if isinstance(value, Constant):
            slot = self.const_slots.get(value.value)
            if slot is None:
                slot = self._new_slot(value.value)
                self.const_slots[value.value] = slot
        elif isinstance(value, GlobalVariable):
            slot = self._new_slot()
            self.global_slots.append((slot, value.name))
        else:
            # Instruction result (possibly referenced before its
            # definition — the verifier flags that, but the compiler
            # must still produce something; the slot stays None and
            # reads of it reproduce the "undefined value" error) or a
            # foreign value, which likewise reads as undefined.
            slot = self._new_slot()
        self.slots[value] = slot
        return slot

    def result_slot(self, instr: Instruction) -> int:
        return self.slot_of(instr)

    def compile(self) -> CompiledFunction:
        fn, module = self.fn, self.module
        cf = CompiledFunction(fn.name, function_signature(fn, module))

        # Formals first: slots 0..n-1, filled (masked) at frame push.
        for arg in fn.args:
            self.slots[arg] = self._new_slot()
        arg_masks = tuple(_mask_of(arg.type) for arg in fn.args)

        # Block layout: blocks concatenate in order, each followed by a
        # fell-off pseudo-slot (reached only when a block lacks a
        # terminator — same error, same timing as the tree-walker).
        block_pc: Dict[object, int] = {}
        pc = 0
        for block in fn.blocks:
            block_pc[block] = pc
            pc += len(block.instructions) + 1

        code: List[tuple] = []
        insts: List[Optional[Instruction]] = []
        for block in fn.blocks:
            for instr in block.instructions:
                code.append(self._encode(instr, block_pc))
                insts.append(instr)
            code.append((OP_FELL_OFF, 0, block.name))
            insts.append(None)

        cf.code = tuple(code)
        cf.insts = tuple(insts)
        cf.base_template = self.template
        cf.global_slots = tuple(self.global_slots)
        cf.arg_masks = arg_masks
        cf.slots = self.slots
        return cf

    def _encode(self, instr: Instruction, block_pc: Dict[object, int]) -> tuple:
        slot = self.slot_of
        if isinstance(instr, Store):
            return (
                OP_STORE,
                instr.iid,
                slot(instr.value),
                slot(instr.pointer),
                instr.size,
                instr.nontemporal,
            )
        if isinstance(instr, Load):
            return (
                OP_LOAD,
                instr.iid,
                self.result_slot(instr),
                slot(instr.pointer),
                instr.size,
            )
        if isinstance(instr, BinOp):
            return (
                BINOP_OPCODES[instr.op],
                instr.iid,
                self.result_slot(instr),
                slot(instr.operands[0]),
                slot(instr.operands[1]),
                instr.type.mask,
            )
        if isinstance(instr, ICmp):
            return (
                ICMP_OPCODES[instr.pred],
                instr.iid,
                self.result_slot(instr),
                slot(instr.operands[0]),
                slot(instr.operands[1]),
            )
        if isinstance(instr, Gep):
            return (
                OP_GEP,
                instr.iid,
                self.result_slot(instr),
                slot(instr.base),
                slot(instr.offset),
            )
        if isinstance(instr, Branch):
            return (
                OP_BR,
                instr.iid,
                slot(instr.cond),
                block_pc[instr.then_block],
                block_pc[instr.else_block],
            )
        if isinstance(instr, Jump):
            return (OP_JMP, instr.iid, block_pc[instr.target])
        if isinstance(instr, Call):
            return self._encode_call(instr)
        if isinstance(instr, Ret):
            value_slot = -1 if instr.value is None else slot(instr.value)
            return (OP_RET, instr.iid, value_slot)
        if isinstance(instr, Flush):
            return (
                OP_FLUSH,
                instr.iid,
                slot(instr.pointer),
                instr.kind,
                instr.kind == "clflush",
            )
        if isinstance(instr, Fence):
            return (OP_FENCE, instr.iid, instr.kind)
        if isinstance(instr, Alloca):
            return (OP_ALLOCA, instr.iid, self.result_slot(instr), instr.size)
        if isinstance(instr, Select):
            cond, a, b = instr.operands
            return (
                OP_SELECT,
                instr.iid,
                self.result_slot(instr),
                slot(cond),
                slot(a),
                slot(b),
            )
        if isinstance(instr, Cast):
            return (
                OP_CAST,
                instr.iid,
                self.result_slot(instr),
                slot(instr.operands[0]),
                _mask_of(instr.type),
            )
        if isinstance(instr, Trap):
            return (OP_TRAP, instr.iid)
        raise InterpreterError(f"cannot compile {instr!r}")

    def _encode_call(self, instr: Call) -> tuple:
        # (op, iid, dst, arg_slots, callee, ret_mask, kind, intrinsic_fn)
        dst = -1
        ret_mask = 0
        if not instr.type.is_void:
            dst = self.result_slot(instr)
            ret_mask = _mask_of(instr.type)
        arg_slots = tuple(self.slot_of(a) for a in instr.args)
        callee = instr.callee
        if self.module.has_function(callee):
            if self.module.get_function(callee).is_declaration:
                kind, fn_ref = CALL_DECLARATION, None
            else:
                kind, fn_ref = CALL_MODULE, None
        elif is_intrinsic(callee):
            kind, fn_ref = CALL_INTRINSIC, lookup(callee)
        else:
            kind, fn_ref = CALL_UNKNOWN, None
        return (OP_CALL, instr.iid, dst, arg_slots, callee, ret_mask, kind, fn_ref)


def compile_function(fn: Function, module: Module) -> CompiledFunction:
    """Lower one (defined) function to its flat form."""
    return _FunctionCompiler(fn, module).compile()


def compile_module(
    module: Module, previous: Optional[CompiledProgram] = None
) -> CompiledProgram:
    """Compile every defined function, reusing unchanged ones.

    ``previous`` (a compile of an earlier epoch of the *same* module) is
    consulted per function: equal :func:`function_signature` means the
    lowered form is still exact and the object is shared, so a
    flush-insertion into one function recompiles one function.
    """
    prev_fns = previous.functions if previous is not None else {}
    functions: Dict[str, CompiledFunction] = {}
    for name, fn in module.functions.items():
        if fn.is_declaration:
            continue
        prev = prev_fns.get(name)
        if prev is not None and prev.signature == function_signature(fn, module):
            functions[name] = prev
        else:
            functions[name] = compile_function(fn, module)
    return CompiledProgram(module.name, module.epoch, functions)


#: module -> its latest CompiledProgram (weak: dropping the module
#: drops the compile).
_PROGRAMS: "WeakKeyDictionary[Module, CompiledProgram]" = WeakKeyDictionary()


def cached_program(module: Module) -> CompiledProgram:
    """The module's compiled program at its current epoch.

    Recompiles (incrementally, against the cached previous compile) when
    the mutation epoch moved; otherwise returns the cached object.  All
    engines executing one module share this, so a detection run, a
    snapshot replay, and a revalidation re-record never repeat a
    compile.
    """
    program = _PROGRAMS.get(module)
    if program is not None and program.epoch == module.epoch:
        return program
    program = compile_module(module, previous=program)
    _PROGRAMS[module] = program
    return program
