"""Typed metrics: counters, gauges, and histograms behind one registry.

The repair pipeline, the analysis manager, the interpreter, and the
batch supervisor all want to report *numbers* — cache hits, executed
flushes, retries, per-phase fix counts.  Before this layer each of them
invented an ad-hoc channel (the worker's ``STATS`` stdout line, the
``AnalysisStats`` dataclass, ``CostCounter.counts``); the registry
gives them one typed vocabulary:

- :class:`Counter` — a monotonically increasing count (``inc``);
- :class:`Gauge` — a last-write-wins level (``set``);
- :class:`Histogram` — a running distribution summary (``observe``):
  count, total, min, max — enough for per-phase latency reporting
  without storing samples.

Everything here is observability-only: a registry snapshot is **never**
part of a canonical batch report (cache weather and wall-clock
durations vary run to run), which is exactly why the batch layer's
byte-identity contract can hold with metrics on or off.

Snapshots are plain JSON-serializable dicts, and :meth:`MetricsRegistry
.merge` folds one snapshot into another — the supervisor aggregates
worker-process registries that way (counters add, gauges last-write-
win, histograms pool).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: schema tag stamped on serialized metrics files
METRICS_SCHEMA = "repro-obs-metrics-v1"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A last-write-wins level (queue depth, effective heuristic...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A running distribution summary: count / total / min / max.

    Deliberately bucket-free: the consumers here want "how many, how
    long in aggregate, and the extremes" (per-phase latency, backoff
    delays), and a four-number summary merges exactly across worker
    processes where bucket boundaries would have to be negotiated.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Create-on-first-use instruments, keyed by dotted name.

    One name belongs to one instrument kind for the life of the
    registry; asking for ``counter("x")`` after ``gauge("x")`` is a
    programming error and raises immediately.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors -------------------------------------------------

    def _check_free(self, name: str, want: Dict) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not want and name in table:
                raise ValueError(f"metric {name!r} is already a {kind}")

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, self._histograms)
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- serialization --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The JSON-serializable state of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add, gauges take the incoming value, histograms pool
        their summaries.  Unknown or malformed sections are skipped —
        merging is observability plumbing and must never raise on data
        that crossed a process boundary.
        """
        if not isinstance(snapshot, dict):
            return
        counters = snapshot.get("counters") or {}
        if isinstance(counters, dict):
            for name, value in counters.items():
                if isinstance(value, int) and value >= 0:
                    self.counter(name).inc(value)
        gauges = snapshot.get("gauges") or {}
        if isinstance(gauges, dict):
            for name, value in gauges.items():
                if isinstance(value, (int, float)):
                    self.gauge(name).set(value)
        histograms = snapshot.get("histograms") or {}
        if isinstance(histograms, dict):
            for name, summary in histograms.items():
                if not isinstance(summary, dict):
                    continue
                count = summary.get("count")
                if not isinstance(count, int) or count <= 0:
                    continue
                pooled = self.histogram(name)
                pooled.count += count
                pooled.total += float(summary.get("total") or 0.0)
                for bound, pick in (("min", min), ("max", max)):
                    incoming = summary.get(bound)
                    if incoming is None:
                        continue
                    current = getattr(pooled, bound)
                    setattr(
                        pooled,
                        bound,
                        incoming if current is None else pick(current, incoming),
                    )
