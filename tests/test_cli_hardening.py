"""CLI failure-mode hardening: distinct exit codes, --lenient,
--keep-going, and stderr quarantine summaries."""

from __future__ import annotations

import pytest

from repro.cli import EXIT_CODES, main
from repro.errors import (
    BudgetExceeded,
    FixError,
    LocateError,
    ReproError,
    TraceError,
    ValidationError,
)
from repro.ir import I64, ModuleBuilder, PTR, format_module


@pytest.fixture
def workspace(tmp_path):
    """A buggy module file plus its detect-produced trace file."""
    mb = ModuleBuilder("cli")
    b = mb.function("main", [], I64, source_file="cli.c")
    p = b.call("pm_alloc", [64], PTR)
    b.store(42, p)
    b.call("emit", [b.load(p)])
    b.ret(0)
    ir = tmp_path / "app.ir"
    ir.write_text(format_module(mb.module))
    trace = tmp_path / "app.trace"
    assert main(["detect", str(ir), "--trace-out", str(trace)]) == 1
    return ir, trace


def test_exit_code_table_is_ordered_most_specific_first():
    codes = dict(EXIT_CODES)
    assert codes[TraceError] == 3
    assert codes[LocateError] == 4
    assert codes[FixError] == 5
    assert codes[ValidationError] == 6
    assert codes[BudgetExceeded] == 7
    assert codes[ReproError] == 2
    classes = [cls for cls, _ in EXIT_CODES]
    # subclasses must be matched before their bases
    assert classes.index(LocateError) < classes.index(FixError)
    assert classes.index(ValidationError) < classes.index(FixError)
    assert classes.index(FixError) < classes.index(ReproError)


def test_malformed_trace_exits_3(workspace, capsys):
    ir, trace = workspace
    text = trace.read_text().splitlines()
    text[1] = text[1][:9]  # crash-truncate the STORE record
    trace.write_text("\n".join(text) + "\n")

    assert main(["fix", str(ir), "--trace", str(trace)]) == 3
    assert "line 2:" in capsys.readouterr().err


def test_lenient_flag_skips_malformed_lines(workspace, capsys):
    ir, trace = workspace
    lines = trace.read_text().splitlines()
    lines.insert(2, "%%%garbage%%%")
    trace.write_text("\n".join(lines) + "\n")

    assert main(["fix", str(ir), "--trace", str(trace), "--lenient"]) == 0
    captured = capsys.readouterr()
    # warnings carry the source filename so batch logs stay attributable
    assert f"warning: {trace}: line 3:" in captured.err
    assert "malformed trace line(s) skipped" in captured.out
    assert main(["detect", str(ir)]) == 0  # the bug still got fixed


def test_unlocatable_bug_exits_4(workspace, capsys):
    ir, trace = workspace
    # debug-info drift: the trace names a function the module lacks
    trace.write_text(trace.read_text().replace("main@", "ghost@"))
    assert main(["fix", str(ir), "--trace", str(trace)]) == 4
    assert "error:" in capsys.readouterr().err


def test_keep_going_quarantines_and_exits_1(workspace, capsys):
    ir, trace = workspace
    trace.write_text(trace.read_text().replace("main@", "ghost@"))
    code = main(["fix", str(ir), "--trace", str(trace), "--keep-going"])
    assert code == 1
    captured = capsys.readouterr()
    assert "[quarantined:locate]" in captured.err
    assert "LocateError" in captured.err
    assert "1 bug(s) quarantined" in captured.out
    # the (unfixed) module was still written out and is valid
    assert main(["show", str(ir)]) == 0


def test_missing_trace_file_exits_2(workspace, capsys):
    ir, _ = workspace
    assert main(["fix", str(ir), "--trace", str(ir.parent / "nope.trace")]) == 2
    assert "error:" in capsys.readouterr().err
