"""Observability wired through the repair pipeline and the supervisor.

The contract under test, per layer:

- every pipeline phase shows up as a span and the typed counters are
  populated (pipeline, interpreter, analysis);
- with a :class:`ManualClock` the span output is byte-stable across
  identical runs;
- the canonical batch report is byte-identical with observability on
  or off — including across a kill + resume — because spans and
  metrics never feed back into repair results;
- subprocess workers forward spans (``OBS`` lines) and ship a metrics
  snapshot (``METRICS`` line) that the supervisor merges, and the
  analysis stats the batch report aggregates are derived from it.
"""

from __future__ import annotations

import json

from repro.faultinject.resume import run_kill_resume
from repro.obs import (
    JsonlSink,
    ManualClock,
    Observability,
    read_spans,
    validate_spans_file,
)
from repro.supervisor import SupervisorConfig, corpus_tasks, run_batch
from repro.supervisor.tasks import execute_task

CASES = ["PMDK-447", "PMDK-452"]

PHASES = (
    "phase.locate",
    "phase.generate",
    "phase.reduce",
    "phase.hoist",
    "phase.apply",
    "phase.verify",
)


def fast_config(**overrides):
    defaults = dict(
        mode="inprocess", max_retries=1, backoff_base=0.0, task_timeout=600.0
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def run_one_task(case_id=CASES[0]):
    obs = Observability(clock=ManualClock())
    (task,) = corpus_tasks([case_id])
    result = execute_task(task, obs=obs)
    return obs, result


def serialize(records):
    return b"".join(
        json.dumps(r, sort_keys=True, separators=(",", ":")).encode() + b"\n"
        for r in records
    )


# ---------------------------------------------------------------------------
# task-level instrumentation
# ---------------------------------------------------------------------------


class TestTaskInstrumentation:
    def test_all_phases_become_spans(self):
        obs, result = run_one_task()
        assert result.record["fixed"]
        names = [r["name"] for r in obs.tracer.records if r["type"] == "span"]
        for phase in PHASES:
            assert phase in names, f"missing span {phase}"
        assert names.count("phase.reduce") == 2  # pre- and post-hoist
        assert "detect" in names and "revalidate" in names
        # Everything nests under the task span, which closes last.
        assert names[-1] == "task"

    def test_typed_counters_populated(self):
        obs, result = run_one_task()
        counters = obs.metrics_snapshot()["counters"]
        assert counters["pipeline.bugs"] > 0
        assert counters["pipeline.fixes_applied"] > 0
        assert counters["interp.steps"] > 0
        assert counters["interp.stores"] > 0
        # The analysis manager mirrors its stats into the registry.
        assert counters["analysis.misses"] > 0
        assert counters["analysis.misses"] == result.stats["misses"]

    def test_span_output_is_byte_stable(self):
        first, _ = run_one_task()
        second, _ = run_one_task()
        assert serialize(first.tracer.records) == serialize(second.tracer.records)

    def test_disabled_obs_changes_nothing(self):
        (task,) = corpus_tasks([CASES[0]])
        plain = execute_task(task)
        obs, instrumented = run_one_task()
        assert plain.stats == instrumented.stats
        assert plain.record == instrumented.record


# ---------------------------------------------------------------------------
# batch-level byte identity
# ---------------------------------------------------------------------------


class TestBatchByteIdentity:
    def test_report_identical_with_obs_on_or_off(self, tmp_path):
        baseline = run_batch(corpus_tasks(CASES), config=fast_config())
        sink = JsonlSink(str(tmp_path / "spans.jsonl"))
        obs = Observability(sink=sink)
        instrumented = run_batch(corpus_tasks(CASES), config=fast_config(), obs=obs)
        obs.close()
        assert instrumented.canonical_json() == baseline.canonical_json()
        assert sink.dropped == 0
        # The sink captured real batch structure while staying off-path.
        names = {r["name"] for r in read_spans(str(tmp_path / "spans.jsonl"))}
        assert {"batch.start", "batch.end", "supervisor.spawn", "task"} <= names

    def test_kill_resume_with_obs_is_byte_identical(self, tmp_path):
        tasks = corpus_tasks(CASES)
        baseline = run_batch(
            tasks, journal_path=str(tmp_path / "base.journal"),
            config=fast_config(),
        ).canonical_json()
        record = run_kill_resume(
            corpus_tasks(CASES),
            str(tmp_path / "kill.journal"),
            boundary=3,  # right after the first task-done
            baseline_bytes=baseline,
            torn=False,
            obs_factory=Observability,
        )
        assert record.obs
        assert record.ok, record.problems
        assert "obs" in record.describe()


# ---------------------------------------------------------------------------
# subprocess forwarding
# ---------------------------------------------------------------------------


class TestSubprocessForwarding:
    def test_worker_spans_and_metrics_cross_the_pipe(self, tmp_path):
        spans_path = str(tmp_path / "spans.jsonl")
        obs = Observability(sink=JsonlSink(spans_path))
        report = run_batch(
            corpus_tasks([CASES[0]]),
            config=fast_config(mode="subprocess", task_timeout=120.0),
            obs=obs,
        )
        obs.close()
        assert report.ok
        assert validate_spans_file(spans_path) > 0
        records = read_spans(spans_path)
        forwarded = [
            r
            for r in records
            if r["type"] == "span" and r["name"].startswith("phase.")
        ]
        assert forwarded, "no worker phase spans were forwarded"
        # The supervisor stamps forwarded records with task/attempt.
        for record in forwarded:
            assert record["attrs"]["task"] == CASES[0]
            assert record["attrs"]["attempt"] == 1
        # Analysis stats reached the report via the METRICS snapshot.
        assert report.analysis_stats["misses"] > 0
        counters = obs.metrics_snapshot()["counters"]
        assert counters["analysis.misses"] == report.analysis_stats["misses"]
        assert counters["pipeline.fixes_applied"] > 0
        assert counters["supervisor.spawns"] == 1
