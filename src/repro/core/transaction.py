"""Transactional fix application: an undo journal for module mutations.

Applying a fix touches the module in several places — inserted flushes
and fences, cloned ``_PM`` functions, retargeted call sites.  If any
step throws (a malformed fix, an injected fault, a verifier rejection),
the module must not be left half-mutated: "do no harm" is a property of
the *pipeline*, not only of the fixes it computes.

:class:`FixTransaction` records enough to undo one fix.  Mutation sites
register undo actions *before* mutating (or register trackers whose
undo diffs state observed later), so a fault at any point mid-fix rolls
back cleanly.  Undo actions run in reverse registration order.
"""

from __future__ import annotations

from typing import Callable, List, TYPE_CHECKING

from ..errors import RollbackError
from ..ir.instructions import Instruction
from ..ir.module import Module

if TYPE_CHECKING:  # pragma: no cover
    from .fixes import Fix
    from .subprogram import SubprogramTransformer


class FixTransaction:
    """An undo journal covering the application of a single fix."""

    def __init__(self, module: Module):
        self.module = module
        self._undo: List[Callable[[], None]] = []
        self._done = False

    # -- trackers -----------------------------------------------------------

    def track_attr(self, obj: object, name: str) -> None:
        """Snapshot ``obj.name`` now; restore it on rollback.

        Used for call-site retargeting (``call.callee``)."""
        saved = getattr(obj, name)
        self._undo.append(lambda: setattr(obj, name, saved))

    def track_fix(self, fix: "Fix") -> None:
        """Track ``fix.inserted`` growth: on rollback, every instruction
        appended after this point is detached from its block and dropped
        from the list (the fix can then be re-applied)."""
        mark = len(fix.inserted)

        def undo() -> None:
            for instr in reversed(fix.inserted[mark:]):
                self._detach(instr)
            del fix.inserted[mark:]

        self._undo.append(undo)

    def track_transformer(self, transformer: "SubprogramTransformer") -> None:
        """Track a subprogram transformer's growth: clones created and
        instructions inserted after this point are removed on rollback,
        and the clone-reuse cache is restored so a later fix re-creates
        (rather than silently reusing) a rolled-back clone."""
        created_mark = len(transformer.created)
        inserted_mark = len(transformer.inserted)
        clones_before = dict(transformer.clones)

        def undo() -> None:
            for name in transformer.created[created_mark:]:
                self.module.remove_function(name)
            for instr in reversed(transformer.inserted[inserted_mark:]):
                self._detach(instr)
            del transformer.created[created_mark:]
            del transformer.inserted[inserted_mark:]
            transformer.clones.clear()
            transformer.clones.update(clones_before)

        self._undo.append(undo)

    @staticmethod
    def _detach(instr: Instruction) -> None:
        block = instr.parent
        if block is not None:
            block.remove(instr)

    # -- outcome ------------------------------------------------------------

    def commit(self) -> None:
        """Discard the journal; the fix is permanent."""
        self._undo.clear()
        self._done = True

    def rollback(self) -> None:
        """Undo every recorded mutation, most recent first.

        A failing undo action does not stop the rollback: the remaining
        actions still run (restoring as much state as possible), then a
        :class:`~repro.errors.RollbackError` is raised describing every
        undo that failed.  Callers unwinding from an original failure
        must chain it (``raise rollback_error from original``) so the
        root cause is never masked by the double failure.
        """
        if self._done:
            return
        failures: List[BaseException] = []
        while self._undo:
            undo = self._undo.pop()
            try:
                undo()
            except Exception as exc:
                failures.append(exc)
        self._done = True
        if failures:
            detail = "; ".join(f"{type(e).__name__}: {e}" for e in failures)
            error = RollbackError(
                f"rollback failed ({len(failures)} undo action(s) raised): {detail}"
            )
            error.__context__ = failures[0]
            raise error
