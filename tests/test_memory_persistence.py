"""Unit tests for the durable PM image."""

import pytest

from repro.memory import AddressSpace, PersistentImage, line_of


@pytest.fixture
def parts():
    space = AddressSpace()
    image = PersistentImage(space)
    addr = space.alloc_pm(256, align=64)
    return space, image, addr


def test_views_start_in_sync(parts):
    space, image, addr = parts
    assert image.cache_bytes(addr, 64) == image.durable_bytes(addr, 64)
    assert image.line_divergence() == []


def test_store_diverges_views(parts):
    space, image, addr = parts
    space.write_int(addr, 8, 99)
    assert image.cache_bytes(addr, 8) != image.durable_bytes(addr, 8)
    assert line_of(addr) in image.line_divergence()
    assert not image.is_line_durable(addr)


def test_write_back_line(parts):
    space, image, addr = parts
    space.write_int(addr, 8, 99)
    image.write_back_line(line_of(addr))
    assert image.durable_bytes(addr, 8) == image.cache_bytes(addr, 8)
    assert image.is_line_durable(addr)
    assert image.writebacks == 1


def test_write_back_lines_sorted(parts):
    space, image, addr = parts
    space.write_int(addr, 8, 1)
    space.write_int(addr + 128, 8, 2)
    image.write_back_lines([line_of(addr + 128), line_of(addr)])
    assert image.line_divergence() == []
    assert image.writebacks == 2


def test_crash_adversarial_default(parts):
    space, image, addr = parts
    space.write_int(addr, 8, 0xDEAD)
    post = image.crash()
    offset = addr - space.pm.base
    assert post[offset : offset + 8] == bytes(8)  # update lost


def test_crash_with_surviving_line(parts):
    space, image, addr = parts
    space.write_int(addr, 8, 0xDEAD)
    post = image.crash([line_of(addr)])
    offset = addr - space.pm.base
    assert int.from_bytes(post[offset : offset + 8], "little") == 0xDEAD


def test_snapshot_is_copy(parts):
    space, image, addr = parts
    snapshot = image.snapshot_durable()
    space.write_int(addr, 8, 5)
    image.write_back_line(line_of(addr))
    assert snapshot != image.snapshot_durable()


def test_durable_read_bounds(parts):
    _, image, _ = parts
    with pytest.raises(IndexError):
        image.durable_bytes(0x5, 8)
