"""Cycle-cost model for executed IR.

The paper's performance results (Fig. 4) depend on one ratio: ordinary
volatile work is cheap, while cache-line flushes and memory fences are
expensive — *and a flush costs the same whether the line holds PM or
volatile data*.  That is precisely why intraprocedural fixes inside a
shared helper like ``memcpy`` are disastrous (every volatile invocation
pays flush costs) and why the hoisting heuristic exists.

The default latencies are drawn from published Optane/x86 measurements
(CLWB ~ tens of ns, SFENCE drains the write-pending queue) scaled to
abstract cycles; the *shape* of results is insensitive to the exact
values, which benchmarks can override.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class CostModel:
    """Abstract cycle costs per executed operation."""

    load: int = 1
    store: int = 1
    arith: int = 1
    compare: int = 1
    branch: int = 1
    call: int = 3
    ret: int = 1
    alloca: int = 1
    gep: int = 1
    select: int = 1
    cast: int = 1
    intrinsic: int = 3
    #: A flush of a dirty line (PM write-back) or of any volatile line
    #: (DRAM write-back): paid regardless of the target's region.
    flush: int = 60
    #: A flush of an already-clean or already-queued PM line: CLWB hits
    #: the cache / write-pending queue and schedules no new write-back
    #: (a few cycles on real hardware).
    flush_clean: int = 2
    #: A store fence's base cost; the per-pending-line drain cost is
    #: added on top (an SFENCE with an empty WPQ is nearly free).
    fence: int = 20
    #: Added per cache line drained by a fence (write-pending-queue cost).
    fence_per_line: int = 12
    #: PM store premium over a DRAM store (Optane write latency).
    pm_store_extra: int = 3
    #: Extra cost of a clflush write-back: the instruction serializes
    #: against later accesses to the line instead of queueing in the
    #: WPQ, so it cannot overlap (why clwb+fence is preferred).
    clflush_serial: int = 25

    def as_dict(self) -> Dict[str, int]:
        return {
            "load": self.load,
            "store": self.store,
            "arith": self.arith,
            "compare": self.compare,
            "branch": self.branch,
            "call": self.call,
            "ret": self.ret,
            "alloca": self.alloca,
            "gep": self.gep,
            "select": self.select,
            "cast": self.cast,
            "intrinsic": self.intrinsic,
            "flush": self.flush,
            "flush_clean": self.flush_clean,
            "clflush_serial": self.clflush_serial,
            "fence": self.fence,
            "fence_per_line": self.fence_per_line,
            "pm_store_extra": self.pm_store_extra,
        }


#: The charge kinds in canonical order.  Both execution engines count
#: into dense per-kind slots indexed by :data:`KIND_INDEX`; the
#: ``counts`` dict view is folded from the slots on demand (once, at the
#: end of a run) instead of paying a dict get+set per executed step.
KIND_ORDER = (
    "load",
    "store",
    "arith",
    "compare",
    "branch",
    "call",
    "ret",
    "alloca",
    "gep",
    "select",
    "cast",
    "intrinsic",
    "flush",
    "fence",
)

#: kind name -> dense slot index.
KIND_INDEX = {kind: index for index, kind in enumerate(KIND_ORDER)}


class CostCounter:
    """Accumulates cost and operation counts during a run.

    Counts live in a dense per-kind list during execution — the flat
    engine bumps ``_dense[i] += 1`` with a local reference, never a dict
    — and :attr:`counts` folds them into the kind-keyed dict the rest of
    the system consumes.  The fold is pure (no state change), so reading
    ``counts`` mid-run is safe and reflects everything charged so far.
    """

    __slots__ = ("model", "cycles", "_dense", "_extra")

    def __init__(self, model: "CostModel" = None, cycles: int = 0):
        self.model = model if model is not None else CostModel()
        self.cycles = cycles
        self._dense = [0] * len(KIND_ORDER)
        #: kinds outside KIND_ORDER (none in-tree; future-proofing)
        self._extra: Dict[str, int] = {}

    def charge(self, kind: str, amount: int) -> None:
        self.cycles += amount
        index = KIND_INDEX.get(kind)
        if index is None:
            self._extra[kind] = self._extra.get(kind, 0) + 1
        else:
            self._dense[index] += 1

    def charge_extra(self, amount: int) -> None:
        self.cycles += amount

    @property
    def counts(self) -> Dict[str, int]:
        """Per-kind charge counts (kinds with zero charges omitted,
        matching the lazily-populated dict this replaced)."""
        folded = {
            kind: count
            for kind, count in zip(KIND_ORDER, self._dense)
            if count
        }
        folded.update(self._extra)
        return folded

    def summary(self) -> Dict[str, int]:
        summary = self.counts
        summary["cycles"] = self.cycles
        return summary
