"""The PM trace container and recorder."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Type, TypeVar

from .events import (
    BoundaryEvent,
    CallStack,
    FenceEvent,
    FlushEvent,
    StoreEvent,
    TraceEvent,
)

E = TypeVar("E", bound=TraceEvent)


class PMTrace:
    """An ordered sequence of PM events from one execution."""

    def __init__(self, events: Optional[List[TraceEvent]] = None):
        self.events: List[TraceEvent] = events or []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self.events[index]

    # -- filtered views -------------------------------------------------------

    def of_kind(self, event_type: Type[E]) -> List[E]:
        return [e for e in self.events if isinstance(e, event_type)]

    def stores(self, pm_only: bool = True) -> List[StoreEvent]:
        stores = self.of_kind(StoreEvent)
        if pm_only:
            stores = [s for s in stores if s.space == "pm"]
        return stores

    def flushes(self) -> List[FlushEvent]:
        return self.of_kind(FlushEvent)

    def fences(self) -> List[FenceEvent]:
        return self.of_kind(FenceEvent)

    def boundaries(self) -> List[BoundaryEvent]:
        return self.of_kind(BoundaryEvent)

    def pm_store_iids(self) -> List[int]:
        """IR instruction ids of every PM-modifying store (Trace-AA input)."""
        return sorted({s.iid for s in self.stores()})


class TraceRecorder:
    """Builds a :class:`PMTrace` during interpretation.

    The interpreter calls the ``record_*`` methods; ``stack_provider``
    supplies the live call stack (outermost first, innermost last).

    :param record_volatile_stores: pmemcheck only traces PM operations;
        set this for tests that want volatile stores too.
    """

    #: Recording subclasses that keep a volatile-operation side channel
    #: set this True; the interpreter then calls :meth:`note_vol_flush`
    #: for flushes of volatile addresses (which record no trace event).
    record_vol_ops = False

    #: the volatile-op side channel itself; recording subclasses shadow
    #: this with a list, so ``len(recorder.vol_ops)`` is uniformly valid
    #: (the callee-span hooks read it on every module call)
    vol_ops: tuple = ()

    def note_vol_flush(self) -> None:  # pragma: no cover - subclass hook
        """Called for a volatile-target flush when ``record_vol_ops``."""

    def __init__(
        self,
        stack_provider: Callable[[], CallStack],
        record_volatile_stores: bool = False,
    ):
        self.trace = PMTrace()
        self._stack_provider = stack_provider
        self.record_volatile_stores = record_volatile_stores
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _base_fields(self) -> dict:
        stack = self._stack_provider()
        own = stack[-1]
        return {
            "seq": self._next_seq(),
            "iid": own.iid,
            "loc": own.loc,
            "function": own.function,
            "stack": stack,
        }

    def record_store(
        self, addr: int, size: int, space: str, nontemporal: bool = False
    ) -> Optional[StoreEvent]:
        if space != "pm" and not self.record_volatile_stores:
            return None
        event = StoreEvent(
            addr=addr,
            size=size,
            space=space,
            nontemporal=nontemporal,
            **self._base_fields(),
        )
        self.trace.append(event)
        return event

    def record_flush(
        self, addr: int, line_addr: int, kind: str, had_work: bool
    ) -> FlushEvent:
        event = FlushEvent(
            addr=addr,
            line_addr=line_addr,
            flush_kind=kind,
            had_work=had_work,
            **self._base_fields(),
        )
        self.trace.append(event)
        return event

    def record_fence(self, kind: str) -> FenceEvent:
        event = FenceEvent(fence_kind=kind, **self._base_fields())
        self.trace.append(event)
        return event

    def record_boundary(self, label: str) -> BoundaryEvent:
        event = BoundaryEvent(label=label, **self._base_fields())
        self.trace.append(event)
        return event
