"""The Hippocrates orchestrator: Steps 1-4 of the paper's Fig. 2.

Given a module and a PM trace (in-memory or pmemcheck text), it:

1. parses the bug-finder output (Step 1),
2. locates each bug's store/flush in the IR (Step 2),
3. computes fixes in three phases — intraprocedural generation, fix
   reduction, heuristic hoisting (Step 3),
4. applies the fixes to the module and verifies it (Step 4).

The result is a :class:`FixReport` with everything the paper's
evaluation tables need: fix counts and kinds, hoist depths, inserted-IR
size, and offline time/memory overhead.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..analysis.aliasing import (
    PMClassification,
    classify_full_aa,
    classify_trace_aa,
)
from ..analysis.andersen import PointsTo
from ..analysis.callgraph import CallGraph
from ..detect.durability import check_trace
from ..detect.reports import DetectionResult
from ..errors import FixError
from ..interp.interpreter import Machine
from ..ir.instructions import Fence, Flush
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..trace.pmemcheck import load_trace
from ..trace.trace import PMTrace
from .fixes import (
    Fix,
    FixPlan,
    HoistedFix,
    InsertFenceAfterFlush,
    InsertFenceAfterStore,
    InsertFlush,
    InsertFlushAndFence,
    insert_covering_flushes,
)
from .heuristic import choose_fix_location
from .intraprocedural import generate_intraprocedural_fixes
from .locate import Locator
from .reduction import reduce_fixes
from .subprogram import SubprogramTransformer

#: heuristic modes: Full-AA, Trace-AA, or disabled (intraprocedural only
#: — the paper's RedisH-intra configuration)
HEURISTICS = ("full", "trace", "off")


@dataclass
class FixReport:
    """What Hippocrates did, in evaluation-table form."""

    plan: FixPlan
    heuristic: str
    bugs_fixed: int = 0
    fixes_applied: int = 0
    intraprocedural_count: int = 0
    interprocedural_count: int = 0
    hoist_depths: List[int] = field(default_factory=list)
    inserted_instructions: int = 0
    functions_created: List[str] = field(default_factory=list)
    ir_size_before: int = 0
    ir_size_after: int = 0
    elapsed_seconds: float = 0.0
    peak_memory_bytes: int = 0

    @property
    def ir_growth_percent(self) -> float:
        if not self.ir_size_before:
            return 0.0
        return 100.0 * (self.ir_size_after - self.ir_size_before) / self.ir_size_before

    def summary(self) -> str:
        return (
            f"fixed {self.bugs_fixed} bug(s) with {self.fixes_applied} fix(es) "
            f"({self.intraprocedural_count} intraprocedural, "
            f"{self.interprocedural_count} interprocedural); "
            f"+{self.inserted_instructions} IR instruction(s) "
            f"({self.ir_growth_percent:.3f}% growth), "
            f"{len(self.functions_created)} persistent clone(s); "
            f"heuristic={self.heuristic}"
        )


class Hippocrates:
    """The automated PM durability-bug fixer.

    :param module: the module to repair (mutated in place by
        :meth:`fix`).
    :param trace: the bug finder's trace — a :class:`PMTrace` or
        pmemcheck-format text.
    :param machine: the machine that produced the trace; required for
        the Trace-AA heuristic (its allocation registry attributes
        dynamic addresses to allocation sites).
    :param heuristic: ``"full"`` (Full-AA), ``"trace"`` (Trace-AA), or
        ``"off"`` (no hoisting; every fix stays intraprocedural).
    :param detection: pre-computed bug reports; found by running the
        pmemcheck-style checker on the trace when omitted.
    """

    def __init__(
        self,
        module: Module,
        trace: Union[PMTrace, str],
        machine: Optional[Machine] = None,
        heuristic: str = "full",
        detection: Optional[DetectionResult] = None,
    ):
        if heuristic not in HEURISTICS:
            raise FixError(f"unknown heuristic {heuristic!r}; use {HEURISTICS}")
        if heuristic == "trace" and machine is None:
            raise FixError("the Trace-AA heuristic requires the tracing machine")
        self.module = module
        self.trace = load_trace(trace) if isinstance(trace, str) else trace
        self.machine = machine
        self.heuristic = heuristic
        self.detection = detection if detection is not None else check_trace(self.trace)
        self.locator = Locator(module)
        self._classifier: Optional[PMClassification] = None

    # -- classifier ---------------------------------------------------------------

    def classifier(self) -> PMClassification:
        """The PM pointer classifier for the selected heuristic."""
        if self._classifier is None:
            points_to = PointsTo(self.module)
            if self.heuristic == "trace":
                assert self.machine is not None
                self._classifier = classify_trace_aa(
                    self.module, self.trace, self.machine, points_to
                )
            else:
                self._classifier = classify_full_aa(self.module, points_to)
        return self._classifier

    # -- Step 3: fix computation -----------------------------------------------------

    def compute_fixes(self) -> FixPlan:
        """Phases 1-3: generate, reduce, hoist."""
        fixes = generate_intraprocedural_fixes(self.detection.bugs, self.locator)
        fixes = reduce_fixes(fixes)
        if self.heuristic != "off":
            fixes = self._hoist(fixes)
            fixes = reduce_fixes(fixes)
        return FixPlan(fixes=fixes)

    def _hoist(self, fixes: List[Fix]) -> List[Fix]:
        """Decide hoisting *per bug*: after reduction one flush fix may
        cover several bugs whose stores coincide but whose call paths —
        and therefore best fix locations — differ (the memcpy shared
        between the key copy and the value copy)."""
        classifier = self.classifier()
        result: List[Fix] = []
        hoisted_by_site: Dict[int, HoistedFix] = {}
        for fix in fixes:
            if not isinstance(fix, (InsertFlush, InsertFlushAndFence)):
                result.append(fix)
                continue
            assert fix.store is not None
            staying = []
            for bug in fix.bugs:
                decision = choose_fix_location(
                    bug, fix.store, self.locator, classifier
                )
                if not decision.hoist:
                    staying.append(bug)
                    continue
                call = decision.chosen.instr
                existing = hoisted_by_site.get(call.iid)
                if existing is not None:
                    existing.bugs.append(bug)
                    continue
                hoisted = HoistedFix(
                    bugs=[bug],
                    call_site=call,  # type: ignore[arg-type]
                    hoist_depth=decision.hoist_depth,
                )
                hoisted_by_site[call.iid] = hoisted
                result.append(hoisted)
            if staying:
                fix.bugs = staying
                result.append(fix)
        return result

    # -- Step 4: application ----------------------------------------------------------

    def apply(self, plan: FixPlan) -> FixReport:
        """Mutate the module according to the plan and verify it."""
        report = FixReport(plan=plan, heuristic=self.heuristic)
        report.ir_size_before = self.module.instruction_count()

        transformer: Optional[SubprogramTransformer] = None
        for fix in plan.fixes:
            if isinstance(fix, HoistedFix):
                if transformer is None:
                    transformer = SubprogramTransformer(
                        self.module, self.classifier()
                    )
                assert fix.call_site is not None
                transformer.transform_call_site(fix.call_site)
                report.interprocedural_count += 1
                report.hoist_depths.append(fix.hoist_depth)
            elif isinstance(fix, InsertFlush):
                assert fix.store is not None
                fix.inserted.extend(
                    insert_covering_flushes(fix.store, fix.flush_kind)
                )
                report.intraprocedural_count += 1
            elif isinstance(fix, InsertFlushAndFence):
                assert fix.store is not None
                flushes = insert_covering_flushes(fix.store, fix.flush_kind)
                fence = Fence(fix.fence_kind)
                fence.loc = fix.store.loc
                flushes[-1].parent.insert_after(flushes[-1], fence)
                fix.inserted.extend(flushes + [fence])
                report.intraprocedural_count += 1
            elif isinstance(fix, InsertFenceAfterFlush):
                assert fix.flush is not None
                fence = Fence(fix.fence_kind)
                fence.loc = fix.flush.loc
                fix.flush.parent.insert_after(fix.flush, fence)
                fix.inserted.append(fence)
                report.intraprocedural_count += 1
            elif isinstance(fix, InsertFenceAfterStore):
                assert fix.store is not None
                fence = Fence(fix.fence_kind)
                fence.loc = fix.store.loc
                fix.store.parent.insert_after(fix.store, fence)
                fix.inserted.append(fence)
                report.intraprocedural_count += 1
            else:  # pragma: no cover - exhaustive
                raise FixError(f"cannot apply fix {fix!r}")

        if transformer is not None:
            report.functions_created = list(transformer.created)

        report.fixes_applied = len(plan.fixes)
        report.bugs_fixed = len(
            {bug.report_id for fix in plan.fixes for bug in fix.bugs}
        )
        report.ir_size_after = self.module.instruction_count()
        # Total new IR: flush/fence insertions plus the cloned function
        # bodies (the paper's "+105 new lines of LLVM IR" counts both).
        report.inserted_instructions = report.ir_size_after - report.ir_size_before
        verify_module(self.module)
        return report

    # -- one-shot ------------------------------------------------------------------------

    def fix(self, measure_overhead: bool = False) -> FixReport:
        """Compute and apply all fixes; optionally measure time/memory.

        The measurement is the paper's Fig. 5 "offline overhead": wall
        time and peak memory of the whole compute+apply pipeline.
        """
        if measure_overhead:
            tracemalloc.start()
        start = time.perf_counter()
        plan = self.compute_fixes()
        report = self.apply(plan)
        report.elapsed_seconds = time.perf_counter() - start
        if measure_overhead:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            report.peak_memory_bytes = peak
        return report


def fix_module(
    module: Module,
    trace: Union[PMTrace, str],
    machine: Optional[Machine] = None,
    heuristic: str = "full",
) -> FixReport:
    """Convenience: run the full Hippocrates pipeline on a module."""
    return Hippocrates(module, trace, machine, heuristic).fix()
