"""Call graph construction over IR modules.

All calls in the IR are direct (by callee name), so the graph is exact.
Intrinsics are represented as leaf nodes with no body.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.instructions import Call
from ..ir.module import Module


class CallGraph:
    """Direct call graph of a module."""

    def __init__(
        self,
        module: Module,
        _edges: Optional[Dict[str, Set[str]]] = None,
    ):
        self.module = module
        #: caller name -> set of callee names (defined functions only)
        self._callees: Dict[str, Set[str]] = {}
        #: callee name -> list of call instructions targeting it
        self._call_sites: Dict[str, List[Call]] = {}
        self._build(edges=_edges)

    def _build(self, edges: Optional[Dict[str, Set[str]]] = None) -> None:
        for fn in self.module.functions.values():
            callees: Set[str] = set()
            for call in fn.calls():
                self._call_sites.setdefault(call.callee, []).append(call)
                if edges is None and self.module.has_function(call.callee):
                    callees.add(call.callee)
            self._callees[fn.name] = (
                set(edges.get(fn.name, set())) if edges is not None else callees
            )

    # -- serialization ---------------------------------------------------------

    def summary(self) -> Dict[str, List[str]]:
        """The JSON-serializable edge summary (caller -> sorted callees).

        Call *instructions* are module-local objects and are not part of
        the summary; :meth:`from_summary` re-collects them with a single
        linear scan while taking the edge set from the summary.
        """
        return {name: sorted(callees) for name, callees in self._callees.items()}

    @classmethod
    def from_summary(
        cls, module: Module, summary: Dict[str, List[str]]
    ) -> "CallGraph":
        """Rebuild a call graph from a stored edge summary."""
        edges = {name: set(callees) for name, callees in summary.items()}
        return cls(module, _edges=edges)

    # -- queries -------------------------------------------------------------

    def callees(self, name: str) -> Set[str]:
        """Defined functions directly called by ``name``."""
        return set(self._callees.get(name, set()))

    def callers(self, name: str) -> Set[str]:
        """Functions containing at least one call to ``name``."""
        return {
            call.function.name
            for call in self._call_sites.get(name, [])
            if call.function is not None
        }

    def call_sites_of(self, name: str) -> List[Call]:
        """Every call instruction (in any function) targeting ``name``."""
        return list(self._call_sites.get(name, []))

    def reachable_from(self, name: str) -> Set[str]:
        """Defined functions transitively reachable from ``name``
        (including itself)."""
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen or current not in self._callees:
                continue
            seen.add(current)
            stack.extend(self._callees[current])
        return seen

    def transitive_predicate(self, predicate) -> Set[str]:
        """Functions for which ``predicate(fn)`` holds directly or in a
        transitively called function.

        Used to decide which callees a persistent-subprogram clone must
        also clone (those that transitively contain PM stores).
        """
        direct = {
            name
            for name, fn in self.module.functions.items()
            if predicate(fn)
        }
        result = set(direct)
        changed = True
        while changed:
            changed = False
            for name, callees in self._callees.items():
                if name not in result and callees & result:
                    result.add(name)
                    changed = True
        return result
