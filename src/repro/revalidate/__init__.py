"""Incremental revalidation: re-check repaired modules without
re-executing the whole workload.

Post-fix revalidation used to re-run the entire workload through the
interpreter — measured at ~90% of per-task time together with the
initial detection (EXPERIMENTS E11).  This package removes that cost
for the common case:

- :mod:`snapshot` — deep-copied machine state memoized at top-level
  call boundaries of the recording run.
- :mod:`recording` — the :class:`~repro.revalidate.recording.RunRecorder`
  the interpreter notifies at call boundaries; owns the segments, their
  executed-iid sets, and snapshot thinning.
- :mod:`replay` — a :class:`~repro.revalidate.replay.ReplayInterpreter`
  that resumes a driver from a materialized snapshot, skipping the
  already-executed calls.
- :mod:`witness` — the mutation witness: plain-data
  :class:`~repro.revalidate.witness.InsertionSpec` /
  :class:`~repro.revalidate.witness.StructuralSpec` descriptions of
  what each committed fix inserted (flush/fence events, or a cloned
  callee retargeted at one call site), built by the fix pipeline.
- :mod:`synthesize` — builds the post-fix trace *without executing
  anything*: inserted flushes/fences change no control flow and no
  data, so their events splice deterministically into the baseline
  trace (``had_work`` bits recomputed by a cache-line simulation);
  structural (clone + retarget) fixes rewrite the recorded callee span
  in place — same instructions on the same values, only iids, function
  names, and stack frames differ.
- :mod:`engine` — the
  :class:`~repro.revalidate.engine.IncrementalRevalidator` tying it to
  the fix pipeline.  Tiering per revalidation: unchanged module →
  baseline verdict; complete witness (flush/fence and/or structural) →
  trace synthesis (no execution); witness without insertion specs →
  snapshot replay from the last unaffected point; degraded witness or
  any failure → full re-record.

The engine's contract is *byte-identity*: detection results, canonical
reports, and do-no-harm verdicts are identical with the engine on or
off (enforced by ``tests/test_revalidate_differential.py`` and the
property suite).
"""

from .engine import IncrementalRevalidator, RevalidationOutcome
from .recording import CalleeSpan, RecordedRun, RunRecorder, VolAnchorOp
from .replay import (
    FlatReplayInterpreter,
    ReplayDivergence,
    ReplayInterpreter,
    replay_class,
)
from .snapshot import MachineSnapshot
from .synthesize import (
    SynthesisResult,
    synthesize_fixed_trace,
    synthesize_structural_trace,
)
from .witness import (
    CloneSpec,
    InsertionSpec,
    StructuralSpec,
    SynthFence,
    SynthFlush,
    spec_for_fix,
)

__all__ = [
    "CalleeSpan",
    "CloneSpec",
    "FlatReplayInterpreter",
    "IncrementalRevalidator",
    "InsertionSpec",
    "MachineSnapshot",
    "RecordedRun",
    "replay_class",
    "ReplayDivergence",
    "ReplayInterpreter",
    "RevalidationOutcome",
    "RunRecorder",
    "StructuralSpec",
    "SynthFence",
    "SynthFlush",
    "SynthesisResult",
    "VolAnchorOp",
    "spec_for_fix",
    "synthesize_fixed_trace",
    "synthesize_structural_trace",
]
