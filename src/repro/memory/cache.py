"""CPU cache model for persistent memory lines.

Implements the durability semantics from the paper's §2.1/§4.2:

- Stores to PM dirty the containing cache line; the data is visible to
  loads immediately but is *not durable*.
- ``clwb``/``clflushopt`` are weakly ordered: they move the line into a
  pending write-back queue which only completes at the next fence.
- ``clflush`` is self-serializing with respect to the flushed line: the
  write-back completes immediately.
- ``sfence``/``mfence`` drain the pending queue, completing durability
  for every line flushed since the last fence.

The model also remembers *which store events* made each line dirty, so
the durability checker can attribute a bug to the precise store (and,
through the trace, to the precise IR instruction) that is not durable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from .layout import AddressSpace, lines_covering
from .persistence import PersistentImage


@dataclass
class LineState:
    """Pending durability bookkeeping for one PM cache line."""

    #: store event sequence numbers that dirtied the line and are not
    #: yet covered by a completed flush+fence
    dirty_stores: Set[int] = field(default_factory=set)
    #: store event sequence numbers covered by an issued (weakly
    #: ordered) flush that has not yet been fenced
    flushing_stores: Set[int] = field(default_factory=set)

    @property
    def is_dirty(self) -> bool:
        return bool(self.dirty_stores)

    @property
    def is_flushing(self) -> bool:
        return bool(self.flushing_stores)

    @property
    def is_pending(self) -> bool:
        return self.is_dirty or self.is_flushing


class CacheModel:
    """Tracks per-line durability state for the PM region."""

    def __init__(self, space: AddressSpace, image: PersistentImage):
        self.space = space
        self.image = image
        self.lines: Dict[int, LineState] = {}
        #: statistics used by benchmarks and the redundant-flush report
        self.flush_count = 0
        self.clean_flush_count = 0
        self.fence_count = 0

    def _line(self, line_addr: int) -> LineState:
        if line_addr not in self.lines:
            self.lines[line_addr] = LineState()
        return self.lines[line_addr]

    # -- events ----------------------------------------------------------------

    def on_store(self, addr: int, size: int, seq: int) -> None:
        """A store of ``size`` bytes at ``addr`` (PM only), event id ``seq``."""
        for line_addr in lines_covering(addr, size):
            self._line(line_addr).dirty_stores.add(seq)

    def on_nt_store(self, addr: int, size: int, seq: int) -> None:
        """A non-temporal store: bypasses the cache into the write-
        combining buffer.  No flush is needed, but the write-back only
        completes at the next fence (weakly ordered) — so the bytes go
        straight to the *flushing* (queued) state."""
        for line_addr in lines_covering(addr, size):
            self._line(line_addr).flushing_stores.add(seq)

    def on_flush(self, addr: int, kind: str) -> str:
        """A flush of the line containing ``addr``.

        Returns the flush's effect, which the cost model prices:

        - ``"writeback"`` — the line was dirty and not yet queued: this
          flush schedules a real media write-back (full cost).
        - ``"coalesced"`` — the line was dirty but already sits in the
          write-pending queue from an earlier flush: the WPQ entry
          absorbs the new bytes (cheap).  This is why flush-per-store
          code (Hippocrates's clones) is not much slower than
          flush-per-line code (``pmem_flush``).
        - ``"redundant"`` — the line was completely clean: the raw
          material of PM *performance* bugs, which the detector reports
          but Hippocrates deliberately never "fixes" (§7).
        """
        self.flush_count += 1
        line_addr = lines_covering(addr, 1)[0]
        state = self.lines.get(line_addr)
        if state is None or not state.is_dirty:
            if state is None or not state.is_flushing:
                self.clean_flush_count += 1
                return "redundant"
            return "coalesced"
        already_queued = state.is_flushing
        if kind == "clflush":
            # Strongly ordered: write-back completes immediately.
            self.image.write_back_line(line_addr)
            state.dirty_stores.clear()
            # clflush also completes anything previously queued.
            state.flushing_stores.clear()
            return "writeback"
        state.flushing_stores |= state.dirty_stores
        state.dirty_stores.clear()
        return "coalesced" if already_queued else "writeback"

    def on_fence(self, kind: str) -> List[int]:
        """A fence: complete all queued write-backs.

        Returns the line addresses whose durability completed.
        """
        self.fence_count += 1
        completed = []
        for line_addr, state in self.lines.items():
            if state.is_flushing:
                self.image.write_back_line(line_addr)
                state.flushing_stores.clear()
                completed.append(line_addr)
        return completed

    # -- queries -----------------------------------------------------------------

    def pending_lines(self) -> List[int]:
        """Lines with un-durable data (dirty or queued)."""
        return sorted(
            line_addr for line_addr, state in self.lines.items() if state.is_pending
        )

    def pending_store_seqs(self) -> Set[int]:
        """Store event ids whose durability has not completed."""
        seqs: Set[int] = set()
        for state in self.lines.values():
            seqs |= state.dirty_stores
            seqs |= state.flushing_stores
        return seqs

    def dirty_store_seqs(self) -> Set[int]:
        """Store event ids not yet covered by any flush."""
        seqs: Set[int] = set()
        for state in self.lines.values():
            seqs |= state.dirty_stores
        return seqs

    def flushing_store_seqs(self) -> Set[int]:
        """Store event ids flushed but not yet fenced."""
        seqs: Set[int] = set()
        for state in self.lines.values():
            seqs |= state.flushing_stores
        return seqs
