"""PM-vs-volatile pointer classification and heuristic scoring.

The hoisting heuristic (paper §4.3) needs, for every candidate fix
location, a score of ``#PM aliases − #non-PM aliases``.  We compute it
over Andersen points-to sets: a pointer's score is the number of its
abstract objects classified persistent minus the number classified
volatile.  (Working the paper's Listing 6: ``addr`` in ``update`` sees
one PM and one volatile object -> 0; the ``modify(pm_addr)`` call site's
argument sees only the PM object -> +1; the heuristic hoists to that
call site, as in the paper.)

Two classifiers are provided, matching the paper's §6.1 comparison:

- **Full-AA**: purely static — objects allocated by ``pm_alloc`` /
  ``pm_root`` / ``global … pm`` are persistent, everything else is
  volatile.
- **Trace-AA**: dynamic — an object is persistent iff some PM store
  event in the bug-finder trace landed in an allocation attributed to
  its allocation site (using the machine's allocation registry);
  everything else is volatile.

The paper reports both produce identical fixes on all targets; our
benchmark E7 reproduces that.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from ..interp.interpreter import Machine
from ..ir.function import Function
from ..ir.instructions import Store
from ..ir.module import Module
from ..ir.values import Value
from ..trace.trace import PMTrace
from .andersen import AllocSite, PointsTo, UNKNOWN_SITE
from .callgraph import CallGraph


class PMClassification:
    """A set of allocation-site keys considered persistent."""

    def __init__(self, points_to: PointsTo, pm_keys: Set[str], name: str):
        self.points_to = points_to
        self.pm_keys = frozenset(pm_keys)
        self.name = name

    # -- per-site -----------------------------------------------------------

    def site_is_pm(self, site: AllocSite) -> bool:
        return site.key in self.pm_keys

    def site_is_volatile(self, site: AllocSite) -> bool:
        return site.key not in self.pm_keys and site.space != "unknown"

    # -- per-pointer -----------------------------------------------------------

    def score(self, pointer: Value) -> int:
        """The heuristic score of one pointer.

        +1 when the pointer is *purely persistent* (all its objects are
        PM), −1 when purely volatile, 0 when mixed or untracked.  A
        mixed pointer is a bad flush target — flushes through it will
        sometimes hit volatile data — which is exactly the paper's
        "#PM aliases − #non-PM aliases" intuition (its Listing 6 scores
        reproduce verbatim: ``addr`` in ``update`` aliases one PM and
        one volatile object → 0; ``pm_addr`` at the ``modify`` call
        site → +1).  Counting raw object *numbers* instead would make a
        widely-shared helper's store score arbitrarily high merely
        because many persistent callers exist.
        """
        has_pm = has_volatile = False
        for site in self.points_to.sites_of(pointer):
            if self.site_is_pm(site):
                has_pm = True
            elif self.site_is_volatile(site):
                has_volatile = True
        if has_pm and not has_volatile:
            return 1
        if has_volatile and not has_pm:
            return -1
        return 0

    def may_be_pm(self, pointer: Value) -> bool:
        """Could this pointer reference persistent memory?

        Conservative: empty/unknown points-to answers True.  Used to
        decide which stores a persistent-subprogram clone must flush.
        """
        sites = self.points_to.sites_of(pointer)
        if not sites:
            return True
        for site in sites:
            if self.site_is_pm(site) or site is UNKNOWN_SITE:
                return True
        return False

    def store_may_be_pm(self, store: Store) -> bool:
        return self.may_be_pm(store.pointer)

    # -- per-function -----------------------------------------------------------

    def functions_with_pm_stores(self, callgraph: CallGraph) -> FrozenSet[str]:
        """Functions that (transitively) may store to PM.

        The persistent-subprogram transformation clones exactly these
        callees; functions that provably never touch PM are shared with
        the original program unmodified.
        """

        def has_direct_pm_store(fn: Function) -> bool:
            return any(self.store_may_be_pm(s) for s in fn.stores())

        return frozenset(callgraph.transitive_predicate(has_direct_pm_store))


def classify_full_aa(module: Module, points_to: Optional[PointsTo] = None) -> PMClassification:
    """Full-AA: static classification by allocator kind."""
    points_to = points_to or PointsTo(module)
    pm_keys = {
        site.key for site in points_to.sites.values() if site.space == "pm"
    }
    # Globals declared persistent might not appear in sites until
    # referenced; include them directly.
    for gv in module.globals.values():
        if gv.space == "pm":
            pm_keys.add(f"global:{gv.name}")
    return PMClassification(points_to, pm_keys, "Full-AA")


def classify_trace_aa(
    module: Module,
    trace: PMTrace,
    machine: Machine,
    points_to: Optional[PointsTo] = None,
) -> PMClassification:
    """Trace-AA: dynamic classification from the traced execution.

    A site is persistent when (a) a traced PM store landed in one of
    its allocations, or (b) any of its allocations was observed to lie
    in the PM region at run time (the machine's allocation registry is
    the dynamic ground truth).  Without (b), an allocation that was
    written through a *different* points-to-merged pointer — e.g. the
    redo log sharing the pool root's field-insensitive heap node with
    the arena — would wrongly count as volatile and skew scores.
    Allocation sites that never executed fall back to their static
    space, which is also what keeps Full-AA and Trace-AA in agreement
    (§6.1 reports they produce identical fixes).
    """
    points_to = points_to or PointsTo(module)
    pm_keys: Set[str] = set()
    for store in trace.stores(pm_only=True):
        site = machine.site_of_addr(store.addr)
        if site is not None:
            pm_keys.add(site)
    for allocation in machine.allocations:
        if machine.space.is_pm(allocation.start):
            pm_keys.add(allocation.site)
    for site in points_to.sites.values():
        if site.space == "pm" and site.key not in pm_keys:
            pm_keys.add(site.key)
    return PMClassification(points_to, pm_keys, "Trace-AA")
