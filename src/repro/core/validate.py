"""Post-fix validation: the executable form of "do no harm".

Two checks, mirroring the paper's §6.1 methodology ("we validate
Hippocrates's fixes by re-running pmemcheck against the repaired
programs"):

- :func:`revalidate` re-runs the workload on the fixed module under the
  bug finder and returns the (expected-empty) detection result.
- :func:`do_no_harm` runs the same workload on the original and fixed
  modules and compares observable behavior (return values and ``emit``
  output).  Fixes only add memory orderings, so behavior must be
  bit-identical.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..detect import Driver, pmemcheck_run
from ..detect.reports import DetectionResult
from ..errors import ValidationError
from ..interp import make_interpreter
from ..interp.interpreter import Interpreter
from ..ir.module import Module


def revalidate(module: Module, driver: Driver) -> DetectionResult:
    """Re-run the bug finder on a (fixed) module."""
    detection, _, _ = pmemcheck_run(module, driver)
    return detection


def assert_fixed(module: Module, driver: Driver) -> None:
    """Raise :class:`ValidationError` if any durability bug remains."""
    detection = revalidate(module, driver)
    if detection.bugs:
        raise ValidationError(
            "fixed module still has durability bugs:\n" + detection.summary()
        )


def observable_behavior(module: Module, driver: Driver) -> List[int]:
    """Execute a workload and return its observable output."""
    interp = make_interpreter(module)
    driver(interp)
    interp.finish()
    return list(interp.output)


def do_no_harm(
    original: Module, fixed: Module, driver: Driver
) -> Tuple[List[int], List[int]]:
    """Check behavioral equivalence of original and fixed modules.

    Returns both outputs; raises :class:`ValidationError` on mismatch.
    """
    before = observable_behavior(original, driver)
    after = observable_behavior(fixed, driver)
    if before != after:
        common = min(len(before), len(after))
        diverge = next(
            (i for i in range(common) if before[i] != after[i]), common
        )
        if diverge < common:
            detail = (
                f"first divergence at index {diverge}: "
                f"{before[diverge]!r} (before) vs {after[diverge]!r} (after)"
            )
        else:
            detail = f"outputs agree on the first {common} value(s) then differ in length"
        raise ValidationError(
            f"fix changed observable behavior: {detail}; "
            f"lengths {len(before)} (before) vs {len(after)} (after)"
        )
    return before, after
