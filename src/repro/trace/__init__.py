"""PM operation traces: events, containers, and pmemcheck-style text I/O."""

from .events import (
    BoundaryEvent,
    CallStack,
    FenceEvent,
    FlushEvent,
    StackFrame,
    StoreEvent,
    TraceEvent,
    innermost,
)
from .pmemcheck import (
    MAX_TRACE_WARNINGS,
    TraceWarning,
    dump_event,
    dump_trace,
    load_trace,
    parse_event,
)
from .trace import PMTrace, TraceRecorder

__all__ = [
    "BoundaryEvent",
    "CallStack",
    "dump_event",
    "dump_trace",
    "FenceEvent",
    "FlushEvent",
    "innermost",
    "load_trace",
    "MAX_TRACE_WARNINGS",
    "parse_event",
    "PMTrace",
    "StackFrame",
    "StoreEvent",
    "TraceEvent",
    "TraceRecorder",
    "TraceWarning",
]
