"""Tests for the command-line front-end (file-to-file workflow)."""

import pytest

from repro.cli import main
from repro.ir import I64, ModuleBuilder, PTR, format_module, parse_module


@pytest.fixture
def buggy_ir(tmp_path):
    mb = ModuleBuilder("cli")
    b = mb.function("main", [], I64, source_file="cli.c")
    p = b.call("pm_alloc", [64], PTR)
    b.store(42, p)
    b.call("emit", [b.load(p)])
    b.ret(0)
    path = tmp_path / "app.ir"
    path.write_text(format_module(mb.module))
    return path


def test_show(buggy_ir, capsys):
    assert main(["show", str(buggy_ir)]) == 0
    out = capsys.readouterr().out
    assert "func @main" in out


def test_run(buggy_ir, capsys):
    assert main(["run", str(buggy_ir)]) == 0
    out = capsys.readouterr().out
    assert "@main() -> 0" in out
    assert "output: 42" in out


def test_detect_reports_bug_and_writes_trace(buggy_ir, tmp_path, capsys):
    trace_path = tmp_path / "app.trace"
    code = main(
        ["detect", str(buggy_ir), "--trace-out", str(trace_path)]
    )
    assert code == 1  # bugs found
    assert "missing-flush&fence" in capsys.readouterr().out
    assert trace_path.exists()
    assert "STORE;" in trace_path.read_text()


def test_detect_fix_detect_roundtrip(buggy_ir, tmp_path, capsys):
    trace_path = tmp_path / "app.trace"
    fixed_path = tmp_path / "app.fixed.ir"
    assert main(["detect", str(buggy_ir), "--trace-out", str(trace_path)]) == 1
    assert (
        main(
            [
                "fix",
                str(buggy_ir),
                "--trace",
                str(trace_path),
                "-o",
                str(fixed_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "fixed 1 bug(s)" in out
    # the fixed module is valid IR containing the inserted flush+fence
    fixed = parse_module(fixed_path.read_text())
    ops = [i.opcode for i in fixed.get_function("main").instructions()]
    assert "flush" in ops and "fence" in ops
    # and is clean on re-detection
    assert main(["detect", str(fixed_path)]) == 0


def test_fix_in_place(buggy_ir, tmp_path):
    trace_path = tmp_path / "app.trace"
    main(["detect", str(buggy_ir), "--trace-out", str(trace_path)])
    main(["fix", str(buggy_ir), "--trace", str(trace_path)])
    assert main(["detect", str(buggy_ir)]) == 0


def test_error_handling_bad_file(tmp_path, capsys):
    missing = tmp_path / "nope.ir"
    assert main(["show", str(missing)]) == 2
    assert "error:" in capsys.readouterr().err


def test_error_handling_bad_ir(tmp_path, capsys):
    bad = tmp_path / "bad.ir"
    bad.write_text("this is not IR")
    assert main(["show", str(bad)]) == 2


def test_run_with_args(tmp_path, capsys):
    mb = ModuleBuilder("cli")
    b = mb.function("main", [("x", I64), ("y", I64)], I64)
    b.ret(b.add(b.function.args[0], b.function.args[1]))
    path = tmp_path / "add.ir"
    path.write_text(format_module(mb.module))
    assert main(["run", str(path), "--args", "2", "0x28"]) == 0
    assert "-> 42" in capsys.readouterr().out
