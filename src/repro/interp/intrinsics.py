"""Interpreter intrinsics: the "system interface" of IR programs.

Functions called by name that are not defined in the module resolve
here.  The set intentionally mirrors what a PM application links
against: a PM-aware allocator (``pm_alloc``/``pm_root``, modelling a
pmemobj pool), a volatile allocator, durability boundaries
(``checkpoint``, the instruction *I* of the paper's formalism),
observable output (``emit``), and a crash trigger for the
crash-consistency demonstrations.

Notably absent: ``memcpy``/``memset``-style helpers.  Those are defined
*in IR* (:mod:`repro.apps.stdlib`) precisely because Hippocrates must be
able to analyze and transform them — the paper's central example is the
``memcpy`` that must not be fixed intraprocedurally.
"""

from __future__ import annotations

from typing import Callable, Dict, List, TYPE_CHECKING

from ..errors import InterpreterError, TrapError

if TYPE_CHECKING:  # pragma: no cover
    from .interpreter import Interpreter


class SimulatedCrash(Exception):
    """Raised by the ``crash_now`` intrinsic: the process dies here.

    The machine (and its durable PM image) survives on the interpreter,
    so tests can inspect what a post-crash recovery would observe.
    """


IntrinsicFn = Callable[["Interpreter", List[int]], int]

_REGISTRY: Dict[str, IntrinsicFn] = {}


def intrinsic(name: str) -> Callable[[IntrinsicFn], IntrinsicFn]:
    def register(fn: IntrinsicFn) -> IntrinsicFn:
        _REGISTRY[name] = fn
        return fn

    return register


def lookup(name: str) -> IntrinsicFn:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InterpreterError(f"call to undefined function @{name}") from None


def is_intrinsic(name: str) -> bool:
    return name in _REGISTRY


def intrinsic_names() -> List[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Allocation
# ---------------------------------------------------------------------------


@intrinsic("pm_alloc")
def _pm_alloc(interp: "Interpreter", args: List[int]) -> int:
    """Allocate persistent memory; returns the PM address."""
    (size,) = args
    addr = interp.machine.space.alloc_pm(size)
    interp.machine.register_allocation(addr, size, f"call:{interp.current_iid()}")
    return addr


@intrinsic("vol_alloc")
def _vol_alloc(interp: "Interpreter", args: List[int]) -> int:
    """Allocate volatile heap memory."""
    (size,) = args
    addr = interp.machine.space.alloc_vol(size)
    interp.machine.register_allocation(addr, size, f"call:{interp.current_iid()}")
    return addr


@intrinsic("pm_root")
def _pm_root(interp: "Interpreter", args: List[int]) -> int:
    """Return the pool's root object, allocating it on first use.

    Models ``pmemobj_root``: a stable, named entry point into the pool
    that recovery code can find again after a crash.
    """
    (size,) = args
    machine = interp.machine
    if machine.pm_root_addr is None:
        machine.pm_root_addr = machine.space.alloc_pm(size, align=64)
        machine.pm_root_size = size
        machine.register_allocation(machine.pm_root_addr, size, "pm_root")
    elif size > machine.pm_root_size:
        raise InterpreterError(
            f"pm_root re-requested with larger size {size} > {machine.pm_root_size}"
        )
    return machine.pm_root_addr


# ---------------------------------------------------------------------------
# Durability boundaries and observability
# ---------------------------------------------------------------------------


@intrinsic("checkpoint")
def _checkpoint(interp: "Interpreter", args: List[int]) -> int:
    """A durability boundary: all prior PM updates must be durable here.

    Models replying to a client, committing a transaction, or any other
    externally visible promise of durability.
    """
    label = f"ckpt{args[0]}" if args else "ckpt"
    interp.machine.recorder.record_boundary(label)
    return 0


@intrinsic("emit")
def _emit(interp: "Interpreter", args: List[int]) -> int:
    """Append a value to the observable output of the execution."""
    interp.output.extend(args)
    return 0


@intrinsic("crash_now")
def _crash_now(interp: "Interpreter", args: List[int]) -> int:
    """Kill the process immediately (power failure)."""
    interp.machine.recorder.record_boundary("crash")
    raise SimulatedCrash()


@intrinsic("require")
def _require(interp: "Interpreter", args: List[int]) -> int:
    """Assertion: trap if the condition is zero."""
    (cond,) = args
    if not cond:
        raise TrapError(f"require() failed at #{interp.current_iid()}")
    return 0


# ---------------------------------------------------------------------------
# PMTest-style testing assertions (consumed by repro.detect.pmtest)
# ---------------------------------------------------------------------------


@intrinsic("pmtest_assert_persisted")
def _pmtest_assert_persisted(interp: "Interpreter", args: List[int]) -> int:
    """Declare that ``[addr, addr+size)`` must be durable at this point.

    The intrinsic itself only records a boundary tagged for the PMTest
    checker; the verdict is computed by :mod:`repro.detect.pmtest`.
    """
    addr, size = args
    interp.machine.recorder.record_boundary(f"pmtest:{addr:#x}:{size}")
    return 0


# ---------------------------------------------------------------------------
# Small host helpers
# ---------------------------------------------------------------------------


@intrinsic("fnv1a64")
def _fnv1a64(interp: "Interpreter", args: List[int]) -> int:
    """FNV-1a hash of a byte range (host-accelerated for speed).

    Hashing shows up on every key-value operation; computing it in the
    host keeps interpreted instruction counts proportional to the
    interesting work (stores/flushes/fences).
    """
    addr, size = args
    data = interp.machine.space.read_bytes(addr, size)
    value = 0xCBF29CE484222325
    for byte in data:
        value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
