"""A Redis-like persistent key-value store, written in IR.

This is the reproduction's Redis-pmem (§6.3): a chained hash table in
persistent memory, built on the mini-PMDK stack (``pmalloc`` for
allocation, ``pmem_persist`` for durability), serving put/get/delete/
scan operations.  Each operation stages the request through volatile
buffers with the shared ``memcpy`` — exactly the volatile/persistent
helper sharing that makes intraprocedural fixes catastrophic and the
hoisting heuristic valuable.

Three durability configurations (the paper's three Redis variants):

- ``mode="manual"`` — developer-placed ``pmem_persist`` calls
  (the Redis-pmem baseline; pmemcheck-clean).
- ``mode="noflush"`` — every app-level persist is replaced by a bare
  ``pmem_drain``: *all flushes removed, fences kept* — the §6.3
  methodology.  Feeding this to Hippocrates with the heuristic off
  yields RedisH-intra; with the heuristic on, RedisH-full.

Persistent layout (offsets from the pool root are in
:mod:`repro.apps.pmdk_mini`; this app adds)::

    kv root (pm_root, shared with objpool; app fields at +80):
      +80  table pointer     +88  bucket count     +96  key count
    entry (pmalloc'd):
      +0 next  +8 hash  +16 klen  +24 vlen  +32 vcap  +40 key  +40+klen val
"""

from __future__ import annotations

from typing import Optional

from ..interp import make_interpreter
from ..interp.interpreter import ExecutionResult, Interpreter, Machine
from ..interp.costs import CostModel
from ..ir.builder import IRBuilder, ModuleBuilder
from ..ir.module import Module
from ..ir.types import I64, PTR
from .pmdk_mini import build_pmdk_module

KV_FILE = "kv.c"

#: app fields live past the objpool header inside the 128-byte root
OFF_TABLE = 80
OFF_NBUCKETS = 88
OFF_NKEYS = 96

ENT_NEXT = 0
ENT_HASH = 8
ENT_KLEN = 16
ENT_VLEN = 24
ENT_VCAP = 32
ENT_KEY = 40

#: volatile staging offsets
SCRATCH_VAL = 256

MODES = ("manual", "noflush")


def _persist(b: IRBuilder, mode: str, ptr, length) -> None:
    """App-level durability point: full persist or (noflush) fence only."""
    if mode == "manual":
        b.call("pmem_persist", [ptr, length])
    else:
        b.call("pmem_drain", [])


def _add_kv_init(mb: ModuleBuilder, mode: str) -> None:
    b = mb.function(
        "kv_init",
        [("nbuckets", I64), ("arena_size", I64)],
        source_file=KV_FILE,
    )
    nbuckets, arena_size = b.function.args
    layout = mb.module.get_global("layout_name")
    b.call("pool_create", [arena_size, layout, 8])
    root = b.call("pm_root", [128], PTR)
    table_bytes = b.mul(nbuckets, 8)
    table = b.call("pm_alloc", [table_bytes], PTR)
    b.call("memset", [table, 0, table_bytes])
    _persist(b, mode, table, table_bytes)
    b.store(table, b.gep(root, OFF_TABLE), PTR)
    b.store(nbuckets, b.gep(root, OFF_NBUCKETS))
    b.store(0, b.gep(root, OFF_NKEYS))
    _persist(b, mode, b.gep(root, OFF_TABLE), 24)
    b.ret()


def _add_find_entry(mb: ModuleBuilder) -> None:
    """Internal chain walk; read-only, shared by all operations."""
    b = mb.function(
        "find_entry",
        [("key", PTR), ("klen", I64), ("h", I64)],
        return_type=PTR,
        source_file=KV_FILE,
    )
    key, klen, h = b.function.args
    root = b.call("pm_root", [128], PTR)
    table = b.load(b.gep(root, OFF_TABLE), PTR)
    nbuckets = b.load(b.gep(root, OFF_NBUCKETS))
    bucket = b.gep(table, b.mul(b.urem(h, nbuckets), 8))
    e_slot = b.alloca(8)
    first = b.load(bucket, PTR)
    b.store(first, e_slot, PTR)

    loop = b.new_block("loop")
    check_hash = b.new_block("check_hash")
    check_klen = b.new_block("check_klen")
    check_key = b.new_block("check_key")
    advance = b.new_block("advance")
    found = b.new_block("found")
    miss = b.new_block("miss")
    b.jmp(loop)

    b.position_at_end(loop)
    e = b.load(e_slot, PTR)
    is_null = b.icmp("eq", e, 0)
    b.br(is_null, miss, check_hash)

    b.position_at_end(check_hash)
    e = b.load(e_slot, PTR)
    eh = b.load(b.gep(e, ENT_HASH))
    hash_eq = b.icmp("eq", eh, h)
    b.br(hash_eq, check_klen, advance)

    b.position_at_end(check_klen)
    e = b.load(e_slot, PTR)
    ekl = b.load(b.gep(e, ENT_KLEN))
    klen_eq = b.icmp("eq", ekl, klen)
    b.br(klen_eq, check_key, advance)

    b.position_at_end(check_key)
    e = b.load(e_slot, PTR)
    diff = b.call("memcmp", [b.gep(e, ENT_KEY), key, klen], I64)
    key_eq = b.icmp("eq", diff, 0)
    b.br(key_eq, found, advance)

    b.position_at_end(advance)
    e = b.load(e_slot, PTR)
    b.store(b.load(b.gep(e, ENT_NEXT), PTR), e_slot, PTR)
    b.jmp(loop)

    b.position_at_end(found)
    e = b.load(e_slot, PTR)
    b.ret(e)
    b.position_at_end(miss)
    b.ret(0)


def _add_kv_put(mb: ModuleBuilder, mode: str) -> None:
    b = mb.function(
        "kv_put",
        [("key", PTR), ("klen", I64), ("val", PTR), ("vlen", I64)],
        return_type=I64,
        source_file=KV_FILE,
    )
    key, klen, val, vlen = b.function.args
    scratch = mb.module.get_global("scratch")
    parse = mb.module.get_global("parse_buf")
    # Request parsing, RESP-style: copy the wire payload into the parse
    # buffer, then extract the key and value arguments into scratch.
    b.call("memcpy", [parse, key, klen])
    parse_val = b.gep(parse, SCRATCH_VAL)
    b.call("memcpy", [parse_val, val, vlen])
    b.call("memcpy", [scratch, parse, klen])
    scratch_val = b.gep(scratch, SCRATCH_VAL)
    b.call("memcpy", [scratch_val, parse_val, vlen])
    reply = mb.module.get_global("reply")
    h = b.call("fnv1a64", [scratch, klen], I64)
    e = b.call("find_entry", [scratch, klen, h], PTR)
    update = b.new_block("update")
    insert = b.new_block("insert")
    hit = b.icmp("ne", e, 0)
    b.br(hit, update, insert)

    # -- update in place ------------------------------------------------------
    b.position_at_end(update)
    ekl = b.load(b.gep(e, ENT_KLEN))
    vcap = b.load(b.gep(e, ENT_VCAP))
    fits = b.icmp("ule", vlen, vcap)
    b.call("require", [b.cast("zext", fits, I64)])
    val_area = b.gep(e, b.add(ekl, ENT_KEY))
    b.call("memcpy", [val_area, scratch_val, vlen])
    _persist(b, mode, val_area, vlen)
    b.store(vlen, b.gep(e, ENT_VLEN))
    _persist(b, mode, b.gep(e, ENT_VLEN), 8)
    b.call("memcpy", [reply, mb.module.get_global("ok_str"), 8])
    b.call("checkpoint", [])
    b.ret(1)

    # -- insert new entry ------------------------------------------------------
    b.position_at_end(insert)
    size = b.add(b.add(klen, vlen), ENT_KEY)
    entry = b.call("pmalloc", [size], PTR)
    b.store(h, b.gep(entry, ENT_HASH))
    b.store(klen, b.gep(entry, ENT_KLEN))
    b.store(vlen, b.gep(entry, ENT_VLEN))
    b.store(vlen, b.gep(entry, ENT_VCAP))
    b.call("memcpy", [b.gep(entry, ENT_KEY), scratch, klen])
    b.call("memcpy", [b.gep(entry, b.add(klen, ENT_KEY)), scratch_val, vlen])
    if mode == "manual":
        # Hand-written code persists the header and the payload as two
        # logical units (two fences); Hippocrates needs only one.
        b.call("pmem_persist", [entry, ENT_KEY])
        b.call("pmem_persist", [b.gep(entry, ENT_KEY), b.add(klen, vlen)])
    else:
        _persist(b, mode, entry, size)

    root = b.call("pm_root", [128], PTR)
    table = b.load(b.gep(root, OFF_TABLE), PTR)
    nbuckets = b.load(b.gep(root, OFF_NBUCKETS))
    bucket = b.gep(table, b.mul(b.urem(h, nbuckets), 8))
    head = b.load(bucket, PTR)
    b.store(head, b.gep(entry, ENT_NEXT), PTR)
    _persist(b, mode, b.gep(entry, ENT_NEXT), 8)
    b.store(entry, bucket, PTR)
    _persist(b, mode, bucket, 8)
    if mode == "manual":
        # Hand-written PM code is defensively conservative: Redis-pmem
        # re-persists the whole object after linking it, even though
        # its lines were already flushed.  Hippocrates's generated
        # flushes cover exactly the modified lines instead — the source
        # of its small win on write-heavy workloads (paper §6.3).
        b.call("pmem_persist", [entry, size])

    nkeys_ptr = b.gep(root, OFF_NKEYS)
    b.store(b.add(b.load(nkeys_ptr), 1), nkeys_ptr)
    _persist(b, mode, nkeys_ptr, 8)
    b.call("memcpy", [reply, mb.module.get_global("ok_str"), 8])
    b.call("checkpoint", [])
    b.ret(0)


def _add_kv_get(mb: ModuleBuilder) -> None:
    b = mb.function(
        "kv_get",
        [("key", PTR), ("klen", I64)],
        return_type=I64,
        source_file=KV_FILE,
    )
    key, klen = b.function.args
    scratch = mb.module.get_global("scratch")
    parse = mb.module.get_global("parse_buf")
    reply = mb.module.get_global("reply")
    b.call("memcpy", [parse, key, klen])
    b.call("memcpy", [scratch, parse, klen])
    h = b.call("fnv1a64", [scratch, klen], I64)
    e = b.call("find_entry", [scratch, klen, h], PTR)
    hit = b.new_block("hit")
    miss = b.new_block("miss")
    found = b.icmp("ne", e, 0)
    b.br(found, hit, miss)

    b.position_at_end(hit)
    ekl = b.load(b.gep(e, ENT_KLEN))
    evl = b.load(b.gep(e, ENT_VLEN))
    b.call("memcpy", [reply, b.gep(e, b.add(ekl, ENT_KEY)), evl])
    b.ret(evl)
    b.position_at_end(miss)
    b.ret(0)


def _add_kv_del(mb: ModuleBuilder, mode: str) -> None:
    b = mb.function(
        "kv_del",
        [("key", PTR), ("klen", I64)],
        return_type=I64,
        source_file=KV_FILE,
    )
    key, klen = b.function.args
    scratch = mb.module.get_global("scratch")
    parse = mb.module.get_global("parse_buf")
    b.call("memcpy", [parse, key, klen])
    b.call("memcpy", [scratch, parse, klen])
    h = b.call("fnv1a64", [scratch, klen], I64)
    root = b.call("pm_root", [128], PTR)
    table = b.load(b.gep(root, OFF_TABLE), PTR)
    nbuckets = b.load(b.gep(root, OFF_NBUCKETS))
    bucket = b.gep(table, b.mul(b.urem(h, nbuckets), 8))
    # prev_slot holds the address of the link to the current entry
    # (the bucket head or the previous entry's next field).
    prev_slot = b.alloca(8)
    b.store(bucket, prev_slot, PTR)

    loop = b.new_block("loop")
    check = b.new_block("check")
    matched = b.new_block("matched")
    advance = b.new_block("advance")
    miss = b.new_block("miss")
    b.jmp(loop)

    b.position_at_end(loop)
    slot = b.load(prev_slot, PTR)
    e = b.load(slot, PTR)
    is_null = b.icmp("eq", e, 0)
    b.br(is_null, miss, check)

    b.position_at_end(check)
    slot = b.load(prev_slot, PTR)
    e = b.load(slot, PTR)
    eh = b.load(b.gep(e, ENT_HASH))
    ekl = b.load(b.gep(e, ENT_KLEN))
    hash_eq = b.icmp("eq", eh, h)
    klen_eq = b.icmp("eq", ekl, klen)
    both = b.and_(
        b.cast("zext", hash_eq, I64), b.cast("zext", klen_eq, I64)
    )
    maybe = b.icmp("ne", both, 0)
    deep = b.new_block("deep")
    b.br(maybe, deep, advance)
    b.position_at_end(deep)
    slot = b.load(prev_slot, PTR)
    e = b.load(slot, PTR)
    diff = b.call("memcmp", [b.gep(e, ENT_KEY), key, klen], I64)
    key_eq = b.icmp("eq", diff, 0)
    b.br(key_eq, matched, advance)

    b.position_at_end(matched)
    slot = b.load(prev_slot, PTR)
    e = b.load(slot, PTR)
    nxt = b.load(b.gep(e, ENT_NEXT), PTR)
    b.store(nxt, slot, PTR)
    _persist(b, mode, slot, 8)
    nkeys_ptr = b.gep(root, OFF_NKEYS)
    b.store(b.sub(b.load(nkeys_ptr), 1), nkeys_ptr)
    _persist(b, mode, nkeys_ptr, 8)
    b.call("checkpoint", [])
    b.ret(1)

    b.position_at_end(advance)
    slot = b.load(prev_slot, PTR)
    e = b.load(slot, PTR)
    b.store(b.gep(e, ENT_NEXT), prev_slot, PTR)
    b.jmp(loop)

    b.position_at_end(miss)
    b.ret(0)


def _add_kv_scan(mb: ModuleBuilder) -> None:
    """Scan ``count`` consecutive buckets, copying each value out
    (read-only; used by the YCSB E workload)."""
    b = mb.function(
        "kv_scan",
        [("h_start", I64), ("count", I64)],
        return_type=I64,
        source_file=KV_FILE,
    )
    h_start, count = b.function.args
    reply = mb.module.get_global("reply")
    root = b.call("pm_root", [128], PTR)
    table = b.load(b.gep(root, OFF_TABLE), PTR)
    nbuckets = b.load(b.gep(root, OFF_NBUCKETS))
    i_slot = b.alloca(8)
    total_slot = b.alloca(8)
    e_slot = b.alloca(8)
    b.store(0, i_slot)
    b.store(0, total_slot)

    bucket_cond = b.new_block("bucket_cond")
    bucket_body = b.new_block("bucket_body")
    chain_cond = b.new_block("chain_cond")
    chain_body = b.new_block("chain_body")
    bucket_next = b.new_block("bucket_next")
    done = b.new_block("done")
    b.jmp(bucket_cond)

    b.position_at_end(bucket_cond)
    i = b.load(i_slot)
    more = b.icmp("ult", i, count)
    b.br(more, bucket_body, done)

    b.position_at_end(bucket_body)
    i = b.load(i_slot)
    idx = b.urem(b.add(h_start, i), nbuckets)
    bucket = b.gep(table, b.mul(idx, 8))
    b.store(b.load(bucket, PTR), e_slot, PTR)
    b.jmp(chain_cond)

    b.position_at_end(chain_cond)
    e = b.load(e_slot, PTR)
    is_null = b.icmp("eq", e, 0)
    b.br(is_null, bucket_next, chain_body)

    b.position_at_end(chain_body)
    e = b.load(e_slot, PTR)
    ekl = b.load(b.gep(e, ENT_KLEN))
    evl = b.load(b.gep(e, ENT_VLEN))
    b.call("memcpy", [reply, b.gep(e, b.add(ekl, ENT_KEY)), evl])
    b.store(b.add(b.load(total_slot), evl), total_slot)
    b.store(b.load(b.gep(e, ENT_NEXT), PTR), e_slot, PTR)
    b.jmp(chain_cond)

    b.position_at_end(bucket_next)
    b.store(b.add(b.load(i_slot), 1), i_slot)
    b.jmp(bucket_cond)

    b.position_at_end(done)
    b.ret(b.load(total_slot))


def _add_kv_count(mb: ModuleBuilder) -> None:
    b = mb.function("kv_count", [], return_type=I64, source_file=KV_FILE)
    root = b.call("pm_root", [128], PTR)
    b.ret(b.load(b.gep(root, OFF_NKEYS)))


def build_kvstore(mode: str = "manual", name: str = "redis") -> Module:
    """Build the complete KV store module in the given durability mode."""
    if mode not in MODES:
        raise ValueError(f"unknown kvstore mode {mode!r}; use {MODES}")
    mb = build_pmdk_module(name=name)
    mb.global_("layout_name", 16, "vol", b"redis-kv".ljust(16, b"\0"))
    mb.global_("req_buf", 512, "vol")
    mb.global_("parse_buf", 512, "vol")
    mb.global_("scratch", 512, "vol")
    mb.global_("ok_str", 8, "vol", b"+OK\r\n\0\0\0")
    mb.global_("reply", 512, "vol")
    _add_kv_init(mb, mode)
    _add_find_entry(mb)
    _add_kv_put(mb, mode)
    _add_kv_get(mb)
    _add_kv_del(mb, mode)
    _add_kv_scan(mb)
    _add_kv_count(mb)
    return mb.module


class KVStore:
    """Host-side driver: writes requests into the volatile request
    buffer and invokes the IR entry points (the "network" front-end)."""

    VAL_OFF = 256

    def __init__(
        self,
        module: Module,
        interp: Optional[Interpreter] = None,
        cost_model: Optional[CostModel] = None,
        fuel: int = 500_000_000,
    ):
        self.module = module
        self.interp = interp or make_interpreter(
            module, cost_model=cost_model, fuel=fuel
        )
        self.req_addr = self.interp.machine.global_addrs["req_buf"]
        self.reply_addr = self.interp.machine.global_addrs["reply"]

    @property
    def machine(self) -> Machine:
        return self.interp.machine

    def init(self, nbuckets: int = 256, arena_size: int = 1 << 20) -> None:
        self.interp.call("kv_init", [nbuckets, arena_size])

    def _write_request(self, key: bytes, val: bytes = b"") -> None:
        space = self.interp.machine.space
        space.write_bytes(self.req_addr, key)
        if val:
            space.write_bytes(self.req_addr + self.VAL_OFF, val)

    def put(self, key: bytes, val: bytes) -> ExecutionResult:
        self._write_request(key, val)
        return self.interp.call(
            "kv_put",
            [self.req_addr, len(key), self.req_addr + self.VAL_OFF, len(val)],
        )

    def get(self, key: bytes) -> Optional[bytes]:
        self._write_request(key)
        result = self.interp.call("kv_get", [self.req_addr, len(key)])
        if result.value == 0:
            return None
        return self.interp.machine.space.read_bytes(self.reply_addr, result.value)

    def delete(self, key: bytes) -> bool:
        self._write_request(key)
        return bool(self.interp.call("kv_del", [self.req_addr, len(key)]).value)

    def scan(self, start_hash: int, count: int) -> int:
        return self.interp.call("kv_scan", [start_hash, count]).value

    def count(self) -> int:
        return self.interp.call("kv_count", []).value

    def finish(self):
        return self.interp.finish()
